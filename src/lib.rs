//! Facade crate re-exporting the Active Bridging workspace.
pub use ab_scenario;
pub use active_bridge;
pub use ether;
pub use hostsim;
pub use netsim;
pub use netstack;
pub use switchlet;
