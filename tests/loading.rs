//! Integration tests for the switchlet loading process (paper Section 5.2):
//! boot loading from "disk", network loading over the four-layer TFTP
//! stack, staged multi-hop loading, and every way the node must *refuse*
//! a switchlet (thinning, tampering, type forgery, runaway code).

use ab_bench::uploader;
use ab_scenario::{self as scenario, bridge_ip, host_ip, host_mac};
use active_bridge::hostmods::handler_ty;
use active_bridge::{BridgeConfig, BridgeNode, DataPlaneSel};
use hostsim::{App, BlastApp, HostConfig, HostCostModel, HostNode, PingApp, UploadApp};
use netsim::{PortId, SegmentConfig, SimDuration, SimTime, World};
use switchlet::{ModuleBuilder, Op, Ty};

fn two_lan_world(boot: &[&str]) -> (World, netsim::NodeId, netsim::NodeId, netsim::NodeId) {
    let mut world = World::new(7);
    let lan0 = world.add_segment(SegmentConfig::named("lan0"));
    let lan1 = world.add_segment(SegmentConfig::named("lan1"));
    let bridge = scenario::bridge(&mut world, 0, &[lan0, lan1], BridgeConfig::default(), boot);
    let a = world.add_node(HostNode::new(
        "hostA",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::pc_1997()),
        vec![],
    ));
    world.attach(a, lan0);
    let b = world.add_node(HostNode::new(
        "hostB",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::pc_1997()),
        vec![],
    ));
    world.attach(b, lan1);
    (world, bridge, a, b)
}

/// Push `image` from a fresh host on lan0 to bridge 0 and return whether
/// the upload completed.
fn upload_image(world: &mut World, lan0: netsim::SegId, image: Vec<u8>) -> netsim::NodeId {
    let up = world.add_node(HostNode::new(
        "uploader",
        HostConfig::simple(host_mac(9), host_ip(9), HostCostModel::pc_1997()),
        vec![uploader(image, "switchlet.swl")],
    ));
    world.attach(up, lan0);
    up
}

#[test]
fn boot_loading_installs_in_order() {
    // The boot loader loads "disk" images in order at start; the last
    // data-plane switchlet wins (learning replaces dumb).
    let (mut world, bridge, _a, _b) = two_lan_world(&["bridge_dumb", "bridge_learning"]);
    world.run_until(SimTime::from_ms(1));
    let node = world.node::<BridgeNode>(bridge);
    assert!(node.plane().is_running("netloader"));
    assert!(node.plane().is_running("bridge_dumb"));
    assert!(node.plane().is_running("bridge_learning"));
    assert!(matches!(
        node.plane().data_plane(),
        DataPlaneSel::Native(ref n) if n == "bridge_learning"
    ));
}

#[test]
fn network_loading_enables_bridging() {
    // Boot: loader only. Ping fails. Upload the learning switchlet over
    // TFTP; ping then succeeds — "dynamically load and evaluate the file".
    let mut world = World::new(7);
    let lan0 = world.add_segment(SegmentConfig::named("lan0"));
    let lan1 = world.add_segment(SegmentConfig::named("lan1"));
    let bridge = scenario::bridge(&mut world, 0, &[lan0, lan1], BridgeConfig::default(), &[]);
    let pinger = world.add_node(HostNode::new(
        "pinger",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::pc_1997()),
        vec![PingApp::new(
            PortId(0),
            host_ip(2),
            3,
            56,
            SimDuration::from_ms(200),
            1,
        )],
    ));
    world.attach(pinger, lan0);
    let replier = world.add_node(HostNode::new(
        "replier",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::pc_1997()),
        vec![],
    ));
    world.attach(replier, lan1);

    // Phase 1: no switching function — pings die at the bridge.
    world.run_until(SimTime::from_secs(2));
    {
        let App::Ping(p) = world.node::<HostNode>(pinger).app(0) else {
            unreachable!()
        };
        assert_eq!(p.received, 0, "no data plane yet");
        assert!(matches!(
            world.node::<BridgeNode>(bridge).plane().data_plane(),
            DataPlaneSel::None
        ));
        assert!(world.node::<BridgeNode>(bridge).plane().stats.no_plane > 0);
    }

    // Phase 2: ship the learning switchlet over the network.
    let image = ModuleBuilder::new("bridge_learning").build().encode();
    let up = upload_image(&mut world, lan0, image);
    let done = ab_bench::upload_and_load(&mut world, up, 0, SimTime::from_secs(20));
    assert!(done, "tftp upload completed");
    // Two images total: the boot-loaded netloader carrier + this upload.
    assert_eq!(
        world.node::<BridgeNode>(bridge).plane().stats.images_loaded,
        2
    );
    assert!(world
        .node::<BridgeNode>(bridge)
        .plane()
        .is_running("bridge_learning"));

    // Phase 3: a fresh ping train gets through.
    let pinger2 = world.add_node(HostNode::new(
        "pinger2",
        HostConfig::simple(host_mac(5), host_ip(5), HostCostModel::pc_1997()),
        vec![PingApp::new(
            PortId(0),
            host_ip(2),
            3,
            56,
            SimDuration::from_ms(200),
            2,
        )],
    ));
    world.attach(pinger2, lan0);
    let horizon = world.now() + SimDuration::from_secs(3);
    world.run_until(horizon);
    let App::Ping(p) = world.node::<HostNode>(pinger2).app(0) else {
        unreachable!()
    };
    assert_eq!(p.received, 3, "bridging works after network load");
}

#[test]
fn staged_loading_reaches_bridges_one_hop_out() {
    // Paper: "we can easily build up an infrastructure in steps by
    // sending the bridge switchlet to all adjacent switches and then
    // waiting for these switches to start bridging" — load bridge1
    // *through* bridge0.
    let mut world = World::new(7);
    let segs = scenario::lans(&mut world, 3);
    // bridge0 bridges already; bridge1 is a bare loader.
    let b0 = scenario::bridge(
        &mut world,
        0,
        &[segs[0], segs[1]],
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    let b1 = scenario::bridge(
        &mut world,
        1,
        &[segs[1], segs[2]],
        BridgeConfig::default(),
        &[],
    );
    let image = ModuleBuilder::new("bridge_learning").build().encode();
    let up = world.add_node(HostNode::new(
        "uploader",
        HostConfig::simple(host_mac(9), host_ip(9), HostCostModel::pc_1997()),
        vec![UploadApp::new(
            PortId(0),
            bridge_ip(1), // one hop away, across bridge0
            1069,
            "learning.swl",
            image,
        )],
    ));
    world.attach(up, segs[0]);
    let done = ab_bench::upload_and_load(&mut world, up, 0, SimTime::from_secs(20));
    assert!(done, "upload crossed bridge0 and loaded into bridge1");
    assert!(world
        .node::<BridgeNode>(b1)
        .plane()
        .is_running("bridge_learning"));
    assert!(
        world.node::<BridgeNode>(b0).plane().stats.directed > 0
            || world.node::<BridgeNode>(b0).plane().stats.flooded > 0
    );
}

#[test]
fn vm_switchlet_loads_and_forwards() {
    // The bytecode dumb bridge, shipped over the network, becomes the
    // switching function and actually forwards frames through the VM.
    let mut world = World::new(7);
    let lan0 = world.add_segment(SegmentConfig::named("lan0"));
    let lan1 = world.add_segment(SegmentConfig::named("lan1"));
    let bridge = scenario::bridge(&mut world, 0, &[lan0, lan1], BridgeConfig::default(), &[]);
    let up = upload_image(
        &mut world,
        lan0,
        active_bridge::switchlets::dumb_vm::build_image(),
    );
    assert!(ab_bench::upload_and_load(
        &mut world,
        up,
        0,
        SimTime::from_secs(20)
    ));
    assert!(matches!(
        world.node::<BridgeNode>(bridge).plane().data_plane(),
        DataPlaneSel::Vm(_)
    ));

    // Blast raw frames across; a sink on lan1 must hear them.
    let sink = world.add_node(HostNode::new(
        "sink",
        HostConfig::simple(host_mac(3), host_ip(3), HostCostModel::FREE),
        vec![],
    ));
    world.attach(sink, lan1);
    let blaster = world.add_node(HostNode::new(
        "blaster",
        HostConfig::simple(host_mac(4), host_ip(4), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(3),
            100,
            20,
            SimDuration::from_ms(5),
        )],
    ));
    world.attach(blaster, lan0);
    world.run_until(world.now() + SimDuration::from_secs(2));
    assert_eq!(world.node::<HostNode>(sink).core.exp_frames_rx, 20);
    assert!(world.node::<BridgeNode>(bridge).vm_instructions > 0);
}

#[test]
fn vm_and_native_dumb_are_equivalent() {
    // Same blast workload through (a) the native dumb switchlet and
    // (b) the bytecode one; receivers on both other LANs must see
    // identical frame counts.
    fn run(native: bool) -> (u64, u64) {
        let mut world = World::new(11);
        let segs = scenario::lans(&mut world, 3);
        let mut node = BridgeNode::new(
            "bridge0",
            scenario::bridge_mac(0),
            bridge_ip(0),
            3,
            BridgeConfig::default(),
        );
        node.boot_load_native(active_bridge::loader::NAME);
        if native {
            node.boot_load_native("bridge_dumb");
        } else {
            node.boot_load(active_bridge::switchlets::dumb_vm::build_image());
        }
        let b = world.add_node(node);
        for &s in &segs {
            world.attach(b, s);
        }
        let blaster = world.add_node(HostNode::new(
            "blaster",
            HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
            vec![BlastApp::new(
                PortId(0),
                ether::MacAddr::BROADCAST, // floods out of every port
                200,
                25,
                SimDuration::from_ms(3),
            )],
        ));
        world.attach(blaster, segs[0]);
        let mut sinks = Vec::new();
        for (i, &s) in segs.iter().enumerate().skip(1) {
            let sink = world.add_node(HostNode::new(
                format!("sink{i}"),
                HostConfig::simple(
                    host_mac(10 + i as u32),
                    host_ip(10 + i as u32),
                    HostCostModel::FREE,
                ),
                vec![],
            ));
            world.attach(sink, s);
            sinks.push(sink);
        }
        world.run_until(SimTime::from_secs(2));
        (
            world.node::<HostNode>(sinks[0]).core.exp_frames_rx,
            world.node::<HostNode>(sinks[1]).core.exp_frames_rx,
        )
    }
    let native = run(true);
    let vm = run(false);
    assert_eq!(native, vm, "native and VM dumb bridges must agree");
    assert_eq!(native, (25, 25));
}

// -------------------------------------------------------------- security

#[test]
fn thinned_import_rejected_at_link_time() {
    // A switchlet compiled against `safeunix.system` — which thinning
    // removed — must be refused: "no way of naming the excluded function".
    let mut mb = ModuleBuilder::new("evil");
    let imp = mb.import("safeunix", "system", Ty::func(vec![Ty::Str], Ty::Int));
    let s = mb.intern_str(b"rm -rf /");
    let mut f = mb.func("init", vec![], Ty::Unit);
    f.op(Op::ConstStr(s));
    f.op(Op::CallImport(imp));
    f.op(Op::Pop);
    f.op(Op::ConstUnit);
    f.op(Op::Return);
    let idx = mb.finish(f);
    mb.set_init(idx);
    let image = mb.build().encode();

    let mut world = World::new(7);
    let lan0 = world.add_segment(SegmentConfig::named("lan0"));
    let lan1 = world.add_segment(SegmentConfig::named("lan1"));
    let bridge = scenario::bridge(&mut world, 0, &[lan0, lan1], BridgeConfig::default(), &[]);
    let up = upload_image(&mut world, lan0, image);
    assert!(ab_bench::upload_and_load(
        &mut world,
        up,
        0,
        SimTime::from_secs(20)
    ));
    let stats = &world.node::<BridgeNode>(bridge).plane().stats;
    assert_eq!(stats.images_rejected, 1, "evil switchlet refused");
    assert!(!world.node::<BridgeNode>(bridge).plane().is_loaded("evil"));
}

#[test]
fn tampered_image_rejected() {
    // Altered byte codes fail the digest check: "If the byte codes are
    // unaltered module thinning works as described."
    let mut image = active_bridge::switchlets::dumb_vm::build_image();
    let mid = image.len() / 2;
    image[mid] ^= 0x40;

    let mut world = World::new(7);
    let lan0 = world.add_segment(SegmentConfig::named("lan0"));
    let lan1 = world.add_segment(SegmentConfig::named("lan1"));
    let bridge = scenario::bridge(&mut world, 0, &[lan0, lan1], BridgeConfig::default(), &[]);
    let up = upload_image(&mut world, lan0, image);
    assert!(ab_bench::upload_and_load(
        &mut world,
        up,
        0,
        SimTime::from_secs(20)
    ));
    let stats = &world.node::<BridgeNode>(bridge).plane().stats;
    assert_eq!(stats.images_rejected, 1);
    assert!(matches!(
        world.node::<BridgeNode>(bridge).plane().data_plane(),
        DataPlaneSel::None
    ));
}

#[test]
fn ill_typed_switchlet_rejected_by_verifier() {
    // Type confusion (int + string) must die at verification, before any
    // instruction runs.
    let mut mb = ModuleBuilder::new("confused");
    let s = mb.intern_str(b"not a number");
    let mut f = mb.func("init", vec![], Ty::Unit);
    f.op(Op::ConstInt(1));
    f.op(Op::ConstStr(s));
    f.op(Op::Add);
    f.op(Op::Pop);
    f.op(Op::ConstUnit);
    f.op(Op::Return);
    let idx = mb.finish(f);
    mb.set_init(idx);
    let image = mb.build().encode();

    let mut world = World::new(7);
    let lan0 = world.add_segment(SegmentConfig::named("lan0"));
    let lan1 = world.add_segment(SegmentConfig::named("lan1"));
    let bridge = scenario::bridge(&mut world, 0, &[lan0, lan1], BridgeConfig::default(), &[]);
    let up = upload_image(&mut world, lan0, image);
    assert!(ab_bench::upload_and_load(
        &mut world,
        up,
        0,
        SimTime::from_secs(20)
    ));
    assert_eq!(
        world
            .node::<BridgeNode>(bridge)
            .plane()
            .stats
            .images_rejected,
        1
    );
}

#[test]
fn runaway_switchlet_contained_and_recoverable() {
    // A switching function that loops forever: every invocation is cut
    // off by fuel, the bridge survives, and a later (good) switchlet
    // restores service — "protect itself from some algorithmic failures
    // in loadable modules".
    let mut mb = ModuleBuilder::new("spinner");
    let i_reg = mb.import(
        "func",
        "register_handler",
        Ty::func(vec![Ty::Str, handler_ty()], Ty::Unit),
    );
    let mut h = mb.func("switching", vec![Ty::Str, Ty::Int], Ty::Unit);
    let head = h.new_label();
    h.place(head);
    h.op(Op::Nop);
    h.jump(head);
    let h_idx = mb.finish(h);
    let key = mb.intern_str(b"switching");
    let mut init = mb.func("init", vec![], Ty::Unit);
    init.op(Op::ConstStr(key));
    init.op(Op::FuncConst(h_idx));
    init.op(Op::CallImport(i_reg));
    init.op(Op::Return);
    let i_idx = mb.finish(init);
    mb.set_init(i_idx);
    let image = mb.build().encode();

    let mut world = World::new(7);
    let lan0 = world.add_segment(SegmentConfig::named("lan0"));
    let lan1 = world.add_segment(SegmentConfig::named("lan1"));
    let bridge = scenario::bridge(&mut world, 0, &[lan0, lan1], BridgeConfig::default(), &[]);
    let up = upload_image(&mut world, lan0, image);
    assert!(ab_bench::upload_and_load(
        &mut world,
        up,
        0,
        SimTime::from_secs(20)
    ));

    // Traffic hits the spinner: each invocation is cut off by fuel and
    // counted, and at the watchdog threshold the module is quarantined
    // (the bridge stays alive throughout).
    let blaster = world.add_node(HostNode::new(
        "blaster",
        HostConfig::simple(host_mac(4), host_ip(4), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(99),
            64,
            5,
            SimDuration::from_ms(5),
        )],
    ));
    world.attach(blaster, lan0);
    world.run_until(world.now() + SimDuration::from_secs(1));
    let threshold = u64::from(BridgeConfig::default().watchdog_traps);
    assert_eq!(world.counters().get("bridge.vm_traps"), threshold);
    assert_eq!(world.counters().get("bridge.quarantines"), 1);
    assert!(world.node::<BridgeNode>(bridge).is_quarantined("spinner"));

    // Recovery: load the learning switchlet; it replaces the data plane.
    let up2 = world.add_node(HostNode::new(
        "uploader2",
        HostConfig::simple(host_mac(8), host_ip(8), HostCostModel::pc_1997()),
        vec![uploader(
            ModuleBuilder::new("bridge_learning").build().encode(),
            "learning.swl",
        )],
    ));
    world.attach(up2, lan0);
    let horizon = world.now() + SimDuration::from_secs(20);
    assert!(ab_bench::upload_and_load(&mut world, up2, 0, horizon));
    assert!(world
        .node::<BridgeNode>(bridge)
        .plane()
        .is_running("bridge_learning"));
    assert!(matches!(
        world.node::<BridgeNode>(bridge).plane().data_plane(),
        DataPlaneSel::Native(ref n) if n == "bridge_learning"
    ));
}

#[test]
fn unknown_native_name_rejected() {
    // A carrier image naming a native switchlet the bridge doesn't have.
    let image = ModuleBuilder::new("no_such_switchlet").build().encode();
    let mut world = World::new(7);
    let lan0 = world.add_segment(SegmentConfig::named("lan0"));
    let lan1 = world.add_segment(SegmentConfig::named("lan1"));
    let bridge = scenario::bridge(&mut world, 0, &[lan0, lan1], BridgeConfig::default(), &[]);
    let up = upload_image(&mut world, lan0, image);
    assert!(ab_bench::upload_and_load(
        &mut world,
        up,
        0,
        SimTime::from_secs(20)
    ));
    // An empty module with an unknown name loads as a VM module with no
    // handlers (harmless), because only *named native carriers* dispatch
    // to factories. It must not become the data plane.
    assert!(matches!(
        world.node::<BridgeNode>(bridge).plane().data_plane(),
        DataPlaneSel::None
    ));
}
