//! Integration tests for the data plane: flooding, learning, filtering,
//! and the loop pathology the paper motivates spanning trees with.

use ab_scenario::{self as scenario, host_ip, host_mac};
use active_bridge::{BridgeConfig, BridgeNode};
use ether::MacAddr;
use hostsim::{BlastApp, HostConfig, HostCostModel, HostNode};
use netsim::{PortId, SimDuration, SimTime, World};

fn host(world: &mut World, n: u32, seg: netsim::SegId, apps: Vec<hostsim::App>) -> netsim::NodeId {
    let h = world.add_node(HostNode::new(
        format!("host{n}"),
        HostConfig::simple(host_mac(n), host_ip(n), HostCostModel::FREE),
        apps,
    ));
    world.attach(h, seg);
    h
}

#[test]
fn dumb_bridge_floods_everything() {
    let mut world = World::new(3);
    let segs = scenario::lans(&mut world, 3);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_dumb"],
    );
    // Hosts 1 and 2 exchange unicast; host 3 is an uninvolved bystander.
    let _h1 = host(
        &mut world,
        1,
        segs[0],
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            100,
            50,
            SimDuration::from_ms(2),
        )],
    );
    let h2 = host(&mut world, 2, segs[1], vec![]);
    let h3 = host(&mut world, 3, segs[2], vec![]);
    world.run_until(SimTime::from_secs(1));
    assert_eq!(world.node::<HostNode>(h2).core.exp_frames_rx, 50);
    // The dumb bridge sprays the bystander LAN with every frame; the
    // bystander's NIC hears them all (it only *accepts* its own, but the
    // segment delivered them).
    assert_eq!(world.segment(segs[2]).counters().deliveries, 50);
    assert_eq!(world.node::<HostNode>(h3).core.exp_frames_rx, 0);
    assert_eq!(world.node::<BridgeNode>(b).plane().stats.flooded, 50);
}

#[test]
fn learning_bridge_stops_flooding_after_reply() {
    let mut world = World::new(3);
    let segs = scenario::lans(&mut world, 3);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    // Host 2 speaks once so the bridge learns it; then host 1 blasts.
    let _h2 = host(
        &mut world,
        2,
        segs[1],
        vec![BlastApp::new(
            PortId(0),
            host_mac(1),
            64,
            1,
            SimDuration::from_ms(1),
        )],
    );
    let _h1 = host(
        &mut world,
        1,
        segs[0],
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            100,
            50,
            SimDuration::from_ms(2),
        )],
    );
    host(&mut world, 3, segs[2], vec![]);
    world.run_until(SimTime::from_secs(1));
    let stats = &world.node::<BridgeNode>(b).plane().stats;
    assert!(
        stats.directed >= 49,
        "after learning, traffic goes to one port (directed={})",
        stats.directed
    );
    // The bystander LAN saw at most the initial flood(s), not the stream.
    assert!(
        world.segment(segs[2]).counters().deliveries <= 3,
        "bystander LAN stayed quiet: {} deliveries",
        world.segment(segs[2]).counters().deliveries
    );
}

#[test]
fn learning_bridge_filters_local_traffic() {
    // Two hosts on the *same* LAN: once learned, their frames must not be
    // forwarded anywhere ("the packet is sent out on the port indicated
    // unless that was the port on which the packet was received").
    let mut world = World::new(3);
    let segs = scenario::lans(&mut world, 2);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    // Both hosts on lan0; they chat with each other.
    let _h1 = host(
        &mut world,
        1,
        segs[0],
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            64,
            30,
            SimDuration::from_ms(2),
        )],
    );
    let _h2 = host(
        &mut world,
        2,
        segs[0],
        vec![BlastApp::new(
            PortId(0),
            host_mac(1),
            64,
            30,
            SimDuration::from_ms(2),
        )],
    );
    world.run_until(SimTime::from_secs(1));
    let stats = &world.node::<BridgeNode>(b).plane().stats;
    assert!(
        stats.filtered >= 55,
        "local frames filtered (filtered={})",
        stats.filtered
    );
    // lan1 heard at most the first unlearned frames.
    assert!(world.segment(segs[1]).counters().deliveries <= 4);
}

#[test]
fn learning_table_ages_entries() {
    let mut world = World::new(3);
    let cfg = BridgeConfig {
        learn_age: SimDuration::from_secs(2),
        ..BridgeConfig::default()
    };
    let segs = scenario::lans(&mut world, 2);
    let b = scenario::bridge(&mut world, 0, &segs, cfg, &["bridge_learning"]);
    let _h1 = host(
        &mut world,
        1,
        segs[0],
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            64,
            1,
            SimDuration::from_ms(1),
        )],
    );
    world.run_until(SimTime::from_secs(1));
    assert_eq!(world.node::<BridgeNode>(b).plane().learn.len(), 1);
    // After the age limit plus a sweep interval the entry is gone.
    world.run_until(SimTime::from_secs(80));
    assert_eq!(world.node::<BridgeNode>(b).plane().learn.len(), 0);
}

/// The parallel-bridges loop, generated parametrically: `Ring` with two
/// bridges is exactly two bridges joining the same two LANs.
fn parallel_bridge_loop(world: &mut World, boot: &[&str]) -> ab_scenario::BuiltTopology {
    let topo = ab_scenario::topo::generate(ab_scenario::TopologyShape::Ring { bridges: 2 }, 3);
    assert!(topo.cyclic());
    ab_scenario::instantiate(world, &topo, &BridgeConfig::default(), boot)
}

#[test]
fn loop_without_stp_circulates_forever() {
    // Two bridges in parallel between two LANs: a loop. A single
    // broadcast circulates indefinitely — "the packet ... fail[s] to make
    // progress and wast[es] network resources".
    let mut world = World::new(3);
    let built = parallel_bridge_loop(&mut world, &["bridge_learning"]);
    let segs = &built.segs;
    host(
        &mut world,
        1,
        segs[0],
        vec![BlastApp::new(
            PortId(0),
            MacAddr::BROADCAST,
            64,
            1,
            SimDuration::from_ms(1),
        )],
    );
    world.run_until(SimTime::from_ms(500));
    let circulated =
        world.segment(segs[0]).counters().tx_frames + world.segment(segs[1]).counters().tx_frames;
    assert!(
        circulated > 500,
        "one broadcast must keep circulating in the loop (saw {circulated} frames)"
    );
}

#[test]
fn stp_kills_the_loop() {
    // Same topology with the spanning-tree switchlet: one bridge blocks a
    // port and a broadcast crosses exactly once.
    let mut world = World::new(3);
    let built = parallel_bridge_loop(&mut world, &["bridge_learning", "stp_ieee"]);
    let (segs, bridges) = (built.segs.clone(), built.bridges.clone());
    // Let the tree converge (two forward-delays plus margin).
    world.run_until(SimTime::from_secs(40));
    let tx_before =
        world.segment(segs[0]).counters().tx_frames + world.segment(segs[1]).counters().tx_frames;

    host(
        &mut world,
        1,
        segs[0],
        vec![BlastApp::new(
            PortId(0),
            MacAddr::BROADCAST,
            64,
            1,
            SimDuration::from_ms(1),
        )],
    );
    world.run_until(SimTime::from_secs(42));
    let tx_after =
        world.segment(segs[0]).counters().tx_frames + world.segment(segs[1]).counters().tx_frames;
    // The broadcast plus its single forwarded copy, plus a few BPDUs
    // (hellos continue every 2 s on both bridges).
    let data_frames = tx_after - tx_before;
    assert!(
        data_frames < 20,
        "broadcast must not circulate once STP blocks the loop (saw {data_frames})"
    );
    // Exactly one of the four bridge ports is blocked.
    let blocked: usize = bridges
        .iter()
        .map(|&b| {
            let plane = world.node::<BridgeNode>(b).plane();
            plane.flags().iter().filter(|f| !f.forward).count()
        })
        .sum();
    assert_eq!(blocked, 1, "exactly one blocked port breaks the loop");
}
