//! The scenario-sweep acceptance suite: many generated
//! `(topology, workload, seed)` triples run end to end, every invariant
//! verdict passes, and reports replay byte-identically from their seeds.

use ab_scenario::runner::{self, Scenario, Verdict};
use ab_scenario::sweep::{run_sweep, SweepSpec};
use ab_scenario::topo::TopologyShape;
use ab_scenario::workload::BatteryKind;

/// Six distinct shapes × three batteries (the default sweep), generated
/// from seeds, run twice: every invariant passes and the two JSON
/// reports are byte-identical.
#[test]
fn default_sweep_passes_and_replays_byte_identically() {
    let spec = SweepSpec::default_sweep(2000);
    assert!(spec.shapes.len() >= 5, "≥ 5 distinct topology shapes");
    assert!(spec.batteries.len() >= 3, "≥ 3 workload batteries");

    let first = run_sweep(&spec);
    assert_eq!(first.runs.len(), spec.shapes.len() * spec.batteries.len());
    for report in &first.runs {
        for inv in &report.invariants {
            assert_ne!(
                inv.verdict,
                Verdict::Fail,
                "{}: invariant {} failed: {}\n{}",
                report.scenario.name,
                inv.name,
                inv.detail,
                report.to_json().render_pretty()
            );
        }
    }
    assert!(first.passed());

    let second = run_sweep(&spec);
    assert_eq!(
        first.to_json().render(),
        second.to_json().render(),
        "same seeds must replay the exact report bytes"
    );
}

/// The churn battery drives the fault script: the scripted drop window
/// must actually drop frames on the wire, and the reliable workloads
/// must still complete.
#[test]
fn churn_battery_injects_and_recovers() {
    // A line is deterministic about placement: every segment carries
    // traffic, so the scripted fault window always bites.
    let mut hit = false;
    for seed in 0..4u64 {
        let sc = Scenario::new(TopologyShape::Line { bridges: 3 }, BatteryKind::Churn, seed);
        let report = runner::run(&sc);
        assert!(report.passed(), "{}", report.to_json().render_pretty());
        hit |= report.world.total_fault_drops() > 0;
    }
    assert!(hit, "at least one churn run must see scripted drops");
}

/// Reports stay structurally sane: the summary agrees with the verdict
/// list, and the world section carries every segment.
#[test]
fn report_json_is_consistent() {
    let sc = Scenario::new(
        TopologyShape::Tree {
            depth: 2,
            fanout: 2,
        },
        BatteryKind::Uploads,
        77,
    );
    let report = runner::run(&sc);
    let json = report.to_json();
    let summary = json.get("summary").expect("summary present");
    let (p, f, w) = report.verdict_counts();
    assert_eq!(summary.get("passed"), Some(&ab_scenario::Json::U64(p)));
    assert_eq!(summary.get("failed"), Some(&ab_scenario::Json::U64(f)));
    assert_eq!(summary.get("waived"), Some(&ab_scenario::Json::U64(w)));
    let world = json.get("world").expect("world present");
    match world.get("segments") {
        Some(ab_scenario::Json::Arr(segs)) => assert_eq!(segs.len(), report.n_segments),
        other => panic!("segments must be an array, got {other:?}"),
    }
}
