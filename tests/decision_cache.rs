//! Forwarding decision cache invalidation (the PR 4 generation invariant).
//!
//! A cached verdict may only be replayed while nothing that could change
//! the switching function's answer has happened. These tests drive the
//! real bridge through the events the invariant names — learn-table
//! churn (a host moving ports mid-flow), switchlet hot-swap mid-flow,
//! and an STP-style port-flag change — and assert both the observable
//! forwarding behaviour and that the cache actually participated
//! (hits/misses counters), so a silently disabled cache cannot pass.

use ab_scenario::{self as scenario, host_ip, host_mac};
use active_bridge::{BridgeCommand, BridgeConfig, BridgeNode, DataPlaneSel, Verdict};
use ether::MacAddr;
use hostsim::{BlastApp, HostConfig, HostCostModel, HostNode};
use netsim::{PortId, SimDuration, SimTime, World};

fn host(world: &mut World, n: u32, seg: netsim::SegId, apps: Vec<hostsim::App>) -> netsim::NodeId {
    let h = world.add_node(HostNode::new(
        format!("host{n}"),
        HostConfig::simple(host_mac(n), host_ip(n), HostCostModel::FREE),
        apps,
    ));
    world.attach(h, seg);
    h
}

fn blast(dst: u32, count: u64, every_ms: u64) -> hostsim::App {
    BlastApp::new(
        PortId(0),
        host_mac(dst),
        100,
        count,
        SimDuration::from_ms(every_ms),
    )
}

/// Steady unicast flows hit the cache, and a hit is behaviourally
/// indistinguishable from re-execution (directed counters, no stray
/// floods).
#[test]
fn repeat_unicast_flow_hits_cache() {
    let mut world = World::new(7);
    let segs = scenario::lans(&mut world, 3);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    // Host 2 announces itself once; host 1 then streams to it.
    host(&mut world, 2, segs[1], vec![blast(1, 1, 1)]);
    host(&mut world, 1, segs[0], vec![blast(2, 200, 2)]);
    host(&mut world, 3, segs[2], vec![]);
    world.run_until(SimTime::from_secs(2));
    let stats = &world.node::<BridgeNode>(b).plane().stats;
    assert!(
        stats.directed >= 199,
        "steady flow is directed (directed={})",
        stats.directed
    );
    assert!(
        stats.cache_hits >= 150,
        "steady flow must be served from the decision cache (hits={})",
        stats.cache_hits
    );
    assert!(
        stats.cache_misses >= 1,
        "first packet of a flow is a miss (misses={})",
        stats.cache_misses
    );
}

/// Learn-table churn: the destination host moves to another LAN mid-flow
/// (its traffic starts arriving on a different bridge port). The learn
/// mutation bumps the generation, so cached `Direct` verdicts die and
/// frames follow the host immediately — no stale deliveries to the old
/// port after the move is learned.
#[test]
fn learn_table_churn_invalidates_cached_direct() {
    let mut world = World::new(7);
    let segs = scenario::lans(&mut world, 3);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    // The streaming source on LAN 0.
    host(&mut world, 1, segs[0], vec![blast(2, 400, 2)]);
    // host2's MAC first appears on LAN 1...
    host(&mut world, 2, segs[1], vec![blast(1, 1, 1)]);
    // ... and later the same MAC speaks from LAN 2 (the "moved host",
    // modelled as a second NIC with the same address that starts late).
    let mover = world.add_node(HostNode::new(
        "host2-moved",
        HostConfig::simple(host_mac(2), host_ip(12), HostCostModel::FREE),
        vec![hostsim::App::delayed(
            SimDuration::from_ms(400),
            blast(1, 1, 1),
        )],
    ));
    world.attach(mover, segs[2]);

    // Let the flow establish toward LAN 1.
    world.run_until(SimTime::from_ms(395));
    let before = world.segment(segs[2]).counters().deliveries;
    let hits_before = world.node::<BridgeNode>(b).plane().stats.cache_hits;
    assert!(hits_before > 50, "flow was cache-served before the move");

    // Move happens at 400 ms; from then on the stream must follow.
    world.run_until(SimTime::from_secs(2));
    let after = world.segment(segs[2]).counters().deliveries;
    assert!(
        after > before + 150,
        "after the move the stream reaches LAN 2 ({before} -> {after})"
    );
    // And LAN 1 stops receiving it (allow a few in-flight frames around
    // the move instant).
    let lan1 = world.segment(segs[1]).counters().deliveries;
    assert!(
        lan1 < 250,
        "LAN 1 must not keep receiving the stream after the move (got {lan1})"
    );
}

/// Switchlet hot-swap mid-flow: suspending the learning switchlet bumps
/// the generation (and drops the data plane); resuming restores service.
/// Cached verdicts from before the suspension must not be replayed while
/// the switchlet is not running.
#[test]
fn hot_swap_mid_flow_invalidates_cache() {
    let mut world = World::new(7);
    let segs = scenario::lans(&mut world, 2);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    host(&mut world, 2, segs[1], vec![blast(1, 1, 1)]);
    host(&mut world, 1, segs[0], vec![blast(2, 400, 2)]);

    world.run_until(SimTime::from_ms(300));
    let forwarded_before = {
        let stats = &world.node::<BridgeNode>(b).plane().stats;
        stats.directed + stats.flooded
    };
    assert!(forwarded_before > 100, "flow established");

    // Suspend the switching function mid-flow.
    world.with_ctx::<BridgeNode, _>(b, |node, ctx| {
        node.administer(ctx, BridgeCommand::Suspend("bridge_learning".into()));
    });
    world.run_until(SimTime::from_ms(500));
    let (no_plane_mid, forwarded_mid) = {
        let stats = &world.node::<BridgeNode>(b).plane().stats;
        (stats.no_plane, stats.directed + stats.flooded)
    };
    assert!(
        no_plane_mid > 50,
        "suspended switching function drops frames (no_plane={no_plane_mid})"
    );

    // Resume: forwarding (and caching) picks back up.
    world.with_ctx::<BridgeNode, _>(b, |node, ctx| {
        node.administer(ctx, BridgeCommand::Resume("bridge_learning".into()));
    });
    world.run_until(SimTime::from_secs(2));
    let stats = &world.node::<BridgeNode>(b).plane().stats;
    assert!(
        stats.directed + stats.flooded > forwarded_mid + 50,
        "forwarding resumed after the hot swap"
    );
    // The suspension window lost frames but never misdelivered: every
    // frame was directed, flooded, filtered, blocked or counted no_plane.
    assert_eq!(
        stats.frames_in,
        stats.directed
            + stats.flooded
            + stats.filtered
            + stats.blocked
            + stats.no_plane
            + stats.registered
            + stats.to_loader
            + stats.queue_drops,
        "bridge accounting is exhaustive"
    );
}

/// A topology change expressed through the spanning tree's access points
/// (a port-flag write): cached `Direct` verdicts through the disabled
/// port must die with the generation bump, and traffic falls back to the
/// remaining ports.
#[test]
fn port_flag_change_invalidates_cached_direct() {
    let mut world = World::new(7);
    let segs = scenario::lans(&mut world, 3);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    host(&mut world, 2, segs[1], vec![blast(1, 1, 1)]);
    host(&mut world, 1, segs[0], vec![blast(2, 400, 2)]);
    host(&mut world, 3, segs[2], vec![]);

    world.run_until(SimTime::from_ms(300));
    let hits_before = world.node::<BridgeNode>(b).plane().stats.cache_hits;
    assert!(hits_before > 50, "flow was cache-served before the change");
    let lan1_before = world.segment(segs[1]).counters().deliveries;

    // STP-style: port 1 stops forwarding (what a Blocking transition does
    // through the plane's access points).
    world.with_ctx::<BridgeNode, _>(b, |node, _ctx| {
        node.plane_mut().set_port_forward(1, false);
        // The learned entry for host 2 now points at a non-forwarding
        // port; the switching function floods instead (stale-entry rule).
    });
    world.run_until(SimTime::from_secs(2));
    let lan1_after = world.segment(segs[1]).counters().deliveries;
    let lan2_after = world.segment(segs[2]).counters().deliveries;
    assert!(
        lan1_after <= lan1_before + 2,
        "no deliveries through the blocked port ({lan1_before} -> {lan1_after})"
    );
    assert!(
        lan2_after > 100,
        "stream falls back to flooding the open port (lan2={lan2_after})"
    );
}

/// The plumbing the invariant rests on, exercised directly: every event
/// class the issue names bumps the decision generation.
#[test]
fn generation_bumps_on_every_decision_input() {
    let mut plane = active_bridge::Plane::new(2, SimDuration::from_secs(300));
    let mut last = plane.generation();
    let mut expect_bump = |plane: &active_bridge::Plane, what: &str| {
        let g = plane.generation();
        assert!(g > last, "{what} must bump the decision generation");
        last = g;
    };

    plane
        .learn
        .learn(MacAddr::local(9), PortId(0), SimTime::ZERO);
    expect_bump(&plane, "learn-table insertion");
    plane.learn.flush();
    expect_bump(&plane, "learn-table flush");
    plane.set_port_forward(1, false);
    expect_bump(&plane, "port-flag change");
    plane.set_status("x", active_bridge::SwitchletStatus::Suspended);
    expect_bump(&plane, "lifecycle transition");
    plane.set_data_plane(DataPlaneSel::Native("y".into()));
    expect_bump(&plane, "data-plane selection");
    plane.bump_generation();
    expect_bump(&plane, "explicit bump (timer delivery)");

    // And a cached verdict recorded under the old generation is dead.
    let (src, dst) = (MacAddr::local(1), MacAddr::local(2));
    plane
        .fwd_cache
        .store(PortId(0), src, dst, last, SimTime::MAX, Verdict::Flood);
    assert_eq!(
        plane
            .fwd_cache
            .probe(PortId(0), src, dst, last, SimTime::ZERO),
        Some(Verdict::Flood)
    );
    plane.bump_generation();
    assert_eq!(
        plane
            .fwd_cache
            .probe(PortId(0), src, dst, plane.generation(), SimTime::ZERO),
        None,
        "generation bump kills cached verdicts"
    );
}
