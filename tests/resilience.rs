//! Resilience tests: spanning-tree re-convergence after a failure, ttcp
//! over a lossy segment (retransmission machinery end to end), VM timer
//! callbacks, and the out-of-band administrative interface.

use ab_bench::{build_path, run_until_done, Forwarder};
use ab_scenario::{self as scenario, host_ip, host_mac};
use active_bridge::hostmods::timer_cb_ty;
use active_bridge::{BridgeCommand, BridgeConfig, BridgeNode, PortRole, StpSwitchlet};
use hostsim::{
    App, BlastApp, HostConfig, HostCostModel, HostNode, TtcpRecvApp, TtcpSendApp, UploadApp,
    UploadConfig,
};
use netsim::{FaultConfig, PortId, SegmentConfig, SimDuration, SimTime, World};
use netstack::tcplite::{ReceiverConfig, SenderConfig};
use netstack::FailureClass;
use switchlet::{ModuleBuilder, Op, Ty};

/// Ring of three bridges: kill the spanning-tree protocol on the root
/// via the administrative interface; the survivors re-elect and restore
/// a loop-free, connected topology.
#[test]
fn stp_reconverges_after_root_protocol_failure() {
    let mut world = World::new(31);
    let topo = scenario::topo::generate(scenario::TopologyShape::Ring { bridges: 3 }, 31);
    let built = scenario::instantiate(
        &mut world,
        &topo,
        &BridgeConfig::default(),
        topo.default_boot(),
    );
    assert_eq!(topo.default_boot(), &["bridge_learning", "stp_ieee"]);
    let (segs, bridges) = (built.segs, built.bridges);
    world.run_until(SimTime::from_secs(40));

    // Bridge 0 has the lowest id: it is the root, and exactly one port
    // in the ring blocks.
    let root_mac = {
        let b0 = world.node::<BridgeNode>(bridges[0]);
        let snap = b0.plane().published.get("stp_ieee").unwrap().clone();
        snap.root_mac
    };
    assert_eq!(root_mac, scenario::bridge_mac(0));

    // The root dies entirely: both its spanning tree and its switching
    // function stop. (Suspending only the STP while leaving forwarding
    // up would be the classic BPDU-filtering pathology that real 802.1D
    // cannot survive either.)
    world.with_ctx::<BridgeNode, _>(bridges[0], |node, ctx| {
        node.administer(ctx, BridgeCommand::Suspend("stp_ieee".into()));
        node.administer(ctx, BridgeCommand::Suspend("bridge_learning".into()));
    });
    // Survivors must notice via max-age expiry (20 s), re-elect, and walk
    // the previously blocked port through listening/learning (30 s).
    world.run_until(SimTime::from_secs(100));
    for &b in &bridges[1..] {
        let node = world.node::<BridgeNode>(b);
        let snap = node.plane().published.get("stp_ieee").unwrap();
        assert_eq!(
            snap.root_mac,
            scenario::bridge_mac(1),
            "{}: next-lowest id becomes root",
            world.node_name(b)
        );
    }
    // The ring degraded to a line: every survivor port must forward
    // again (the pre-failure blocked port has reopened).
    for &b in &bridges[1..] {
        let node = world.node::<BridgeNode>(b);
        assert!(
            node.plane().flags().iter().all(|f| f.forward),
            "{}: line topology needs no blocked ports",
            world.node_name(b)
        );
    }
    // Connectivity around the long way: a blast on the dead root's seg0
    // side still reaches seg1 via bridge2 -> seg2 -> bridge1.
    let sink = world.add_node(HostNode::new(
        "sink",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![],
    ));
    world.attach(sink, segs[1]);
    let blaster = world.add_node(HostNode::new(
        "blaster",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            128,
            10,
            SimDuration::from_ms(2),
        )],
    ));
    world.attach(blaster, segs[0]);
    let horizon = world.now() + SimDuration::from_secs(2);
    world.run_until(horizon);
    assert_eq!(
        world.node::<HostNode>(sink).core.exp_frames_rx,
        10,
        "traffic re-routes around the dead bridge"
    );
}

/// A 1%-loss segment between the hosts: TcpLite's RTO + go-back-N must
/// still deliver every byte through the bridge.
#[test]
fn ttcp_completes_over_lossy_segment() {
    let mut world = World::new(33);
    let lan0 = world.add_segment(SegmentConfig {
        fault: FaultConfig {
            drop_one_in: 100,
            ..Default::default()
        },
        ..SegmentConfig::named("lossy-lan0")
    });
    let lan1 = world.add_segment(SegmentConfig::named("lan1"));
    scenario::bridge(
        &mut world,
        0,
        &[lan0, lan1],
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    let sender = world.add_node(HostNode::new(
        "sender",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::pc_1997()),
        vec![TtcpSendApp::new(
            PortId(0),
            host_ip(2),
            5001,
            5001,
            300_000,
            8192,
            SenderConfig::default(),
        )],
    ));
    world.attach(sender, lan0);
    let receiver = world.add_node(HostNode::new(
        "receiver",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::pc_1997()),
        vec![TtcpRecvApp::new(5001, ReceiverConfig::default())],
    ));
    world.attach(receiver, lan1);

    run_until_done(&mut world, SimTime::from_secs(120), |w| {
        let App::TtcpSend(t) = w.node::<HostNode>(sender).app(0) else {
            unreachable!()
        };
        t.is_done()
    });
    let App::TtcpSend(t) = world.node::<HostNode>(sender).app(0) else {
        unreachable!()
    };
    assert!(t.is_done(), "transfer must survive 1% loss");
    let App::TtcpRecv(r) = world.node::<HostNode>(receiver).app(0) else {
        unreachable!()
    };
    assert_eq!(r.bytes_received(), 300_000);
    assert!(
        world.segment(lan0).counters().fault_drops > 0,
        "the fault injector actually dropped frames"
    );
}

/// A bytecode switchlet that re-arms a timer: exercises the
/// `timer.set_timeout` host path and VM callback dispatch.
#[test]
fn vm_timer_callbacks_fire_repeatedly() {
    // heartbeat: init arms a 100 ms timer; the callback bumps a counter
    // and re-arms itself until token reaches 5.
    let mut mb = ModuleBuilder::new("heartbeat");
    let i_timer = mb.import(
        "timer",
        "set_timeout",
        Ty::func(vec![Ty::Int, Ty::Int, timer_cb_ty()], Ty::Unit),
    );
    let i_bump = mb.import(
        "bridgectl",
        "counter_bump",
        Ty::func(vec![Ty::Str, Ty::Int], Ty::Unit),
    );
    let key = mb.intern_str(b"heartbeat.ticks");

    // tick(token): bump; if token < 5, re-arm with token+1.
    let tick_idx = mb.next_func_index();
    let mut tick = mb.func("tick", vec![Ty::Int], Ty::Unit);
    tick.op(Op::ConstStr(key))
        .op(Op::ConstInt(1))
        .op(Op::CallImport(i_bump))
        .op(Op::Pop);
    let done = tick.new_label();
    tick.op(Op::LocalGet(0)).op(Op::ConstInt(5)).op(Op::Ge);
    tick.br_if(done);
    tick.op(Op::ConstInt(100)); // ms
    tick.op(Op::LocalGet(0)).op(Op::ConstInt(1)).op(Op::Add); // token+1
    tick.op(Op::FuncConst(tick_idx));
    tick.op(Op::CallImport(i_timer)).op(Op::Pop);
    tick.place(done);
    tick.op(Op::ConstUnit).op(Op::Return);
    let tick_fn = mb.finish(tick);
    assert_eq!(tick_fn, tick_idx);
    mb.export("tick", tick_fn);

    let mut init = mb.func("init", vec![], Ty::Unit);
    init.op(Op::ConstInt(100));
    init.op(Op::ConstInt(1));
    init.op(Op::FuncConst(tick_fn));
    init.op(Op::CallImport(i_timer));
    init.op(Op::Return);
    let init_fn = mb.finish(init);
    mb.set_init(init_fn);
    let image = mb.build().encode();

    let mut world = World::new(34);
    let segs = scenario::lans(&mut world, 2);
    let mut node = BridgeNode::new(
        "bridge0",
        scenario::bridge_mac(0),
        scenario::bridge_ip(0),
        2,
        BridgeConfig::default(),
    );
    node.boot_load_native(active_bridge::loader::NAME);
    node.boot_load(image);
    let b = world.add_node(node);
    for &s in &segs {
        world.attach(b, s);
    }
    world.run_until(SimTime::from_secs(2));
    // Ticks at 100,200,300,400,500 ms with tokens 1..=5 — the token-5
    // tick still bumps but does not re-arm.
    assert_eq!(world.counters().get("heartbeat.ticks"), 5);
}

/// A bridge crash blackholes traffic and loses all volatile state; a
/// restart cold-boots from the retained disk images and forwarding
/// resumes.
#[test]
fn bridge_crash_loses_state_and_restart_recovers_forwarding() {
    let mut world = World::new(37);
    let segs = scenario::lans(&mut world, 2);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    let sink = world.add_node(HostNode::new(
        "sink",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![],
    ));
    world.attach(sink, segs[1]);
    let blast = |world: &mut World, n: u32| {
        let blaster = world.add_node(HostNode::new(
            format!("blaster{n}"),
            HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
            vec![BlastApp::new(
                PortId(0),
                host_mac(2),
                128,
                10,
                SimDuration::from_ms(2),
            )],
        ));
        world.attach(blaster, segs[0]);
        let horizon = world.now() + SimDuration::from_ms(100);
        world.run_until(horizon);
    };
    blast(&mut world, 1);
    assert_eq!(world.node::<HostNode>(sink).core.exp_frames_rx, 10);

    // Crash: frames sent while the bridge is down go nowhere, and the
    // crash wipes the loaded switchlets.
    world.crash_node(b);
    assert!(world.is_crashed(b));
    blast(&mut world, 2);
    assert_eq!(
        world.node::<HostNode>(sink).core.exp_frames_rx,
        10,
        "a crashed bridge forwards nothing"
    );
    assert_eq!(
        world
            .node::<BridgeNode>(b)
            .switchlet_status("bridge_learning"),
        None,
        "volatile switchlet state died with the crash"
    );

    // Restart: the boot images replay, the learning bridge re-links,
    // and traffic flows again.
    world.restart_node(b);
    blast(&mut world, 3);
    assert!(world
        .node::<BridgeNode>(b)
        .plane()
        .is_running("bridge_learning"));
    assert_eq!(world.node::<HostNode>(sink).core.exp_frames_rx, 20);
}

/// A repeatedly-trapping VM data path hits the watchdog threshold, is
/// quarantined, and the bridge rolls back to the last-known-good
/// switching function — traffic provably continues.
#[test]
fn watchdog_quarantines_trapping_switchlet_and_rolls_back() {
    let mut world = World::new(38);
    let segs = scenario::lans(&mut world, 2);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    world.run_until(SimTime::from_ms(10));
    // Hot-swap in the faulty data path over the administrative
    // interface (the in-band loading analogue).
    world.with_ctx::<BridgeNode, _>(b, |node, ctx| {
        node.administer(
            ctx,
            BridgeCommand::LoadImage(active_bridge::switchlets::trap_vm::build_image()),
        );
    });
    let sink = world.add_node(HostNode::new(
        "sink",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![],
    ));
    world.attach(sink, segs[1]);
    let blaster = world.add_node(HostNode::new(
        "blaster",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            128,
            10,
            SimDuration::from_ms(2),
        )],
    ));
    world.attach(blaster, segs[0]);
    let horizon = world.now() + SimDuration::from_ms(100);
    world.run_until(horizon);

    let node = world.node::<BridgeNode>(b);
    assert!(node.is_quarantined("vm_trap"));
    assert_eq!(world.counters().get("bridge.quarantines"), 1);
    assert_eq!(
        world.counters().get("bridge.vm_traps"),
        u64::from(BridgeConfig::default().watchdog_traps),
        "quarantine engages exactly at the threshold"
    );
    // The frames that trapped were lost; every frame after the rollback
    // reached the sink through the restored learning plane.
    assert_eq!(
        world.node::<HostNode>(sink).core.exp_frames_rx,
        10 - u64::from(BridgeConfig::default().watchdog_traps)
    );
}

/// With no previously-working switching function to roll back to, the
/// watchdog's final degraded tier is dumb flood forwarding.
#[test]
fn watchdog_falls_back_to_dumb_forwarding_without_a_known_good_plane() {
    let mut world = World::new(39);
    let segs = scenario::lans(&mut world, 2);
    let mut node = BridgeNode::new(
        "bridge0",
        scenario::bridge_mac(0),
        scenario::bridge_ip(0),
        2,
        BridgeConfig::default(),
    );
    node.boot_load_native(active_bridge::loader::NAME);
    node.boot_load(active_bridge::switchlets::trap_vm::build_image());
    let b = world.add_node(node);
    for &s in &segs {
        world.attach(b, s);
    }
    let sink = world.add_node(HostNode::new(
        "sink",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![],
    ));
    world.attach(sink, segs[1]);
    let blaster = world.add_node(HostNode::new(
        "blaster",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            128,
            10,
            SimDuration::from_ms(2),
        )],
    ));
    world.attach(blaster, segs[0]);
    world.run_until(SimTime::from_ms(100));

    let node = world.node::<BridgeNode>(b);
    assert!(node.is_quarantined("vm_trap"));
    assert_eq!(
        node.switchlet_status("bridge_dumb"),
        Some(active_bridge::SwitchletStatus::Running),
        "the degraded tier is the dumb flooder"
    );
    assert_eq!(
        world.node::<HostNode>(sink).core.exp_frames_rx,
        10 - u64::from(BridgeConfig::default().watchdog_traps)
    );
}

/// A bridge crash in the middle of a sealed-image upload: the sender
/// classifies the dead server, opens a *fresh* TFTP session after the
/// restart (no resumed state survives the crash), and the transfer
/// completes — the module's `init` runs exactly once.
#[test]
fn upload_resumes_with_fresh_session_after_bridge_crash() {
    let mut world = World::new(40);
    let segs = scenario::lans(&mut world, 2);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    let uploader = world.add_node(HostNode::new(
        "uploader",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::pc_1997()),
        vec![UploadApp::with_config(
            PortId(0),
            scenario::bridge_ip(0),
            4000,
            "resume.swl",
            scenario::workload::sealed_upload_image(9, 60_000),
            UploadConfig::resilient(),
        )],
    ));
    world.attach(uploader, segs[0]);

    // Let the session open and move a few blocks, then pull the plug:
    // the ballast-padded image spans >100 TFTP blocks, so 5 ms of
    // pc-1997 service time is nowhere near the end of the transfer.
    world.run_until(SimTime::from_ms(5));
    let App::Upload(a) = world.node::<HostNode>(uploader).app(0).unwrapped() else {
        unreachable!()
    };
    assert!(!a.is_done(), "the padded image must still be in flight");
    world.crash_node(b);
    let horizon = world.now() + SimDuration::from_ms(50);
    world.run_until(horizon);
    world.restart_node(b);

    run_until_done(&mut world, SimTime::from_secs(30), |w| {
        let App::Upload(a) = w.node::<HostNode>(uploader).app(0).unwrapped() else {
            unreachable!()
        };
        a.is_done()
    });
    let App::Upload(a) = world.node::<HostNode>(uploader).app(0).unwrapped() else {
        unreachable!()
    };
    assert!(a.is_done(), "the upload must complete after the restart");
    assert!(a.failed.is_none());
    assert!(
        a.restarts >= 1,
        "recovery goes through a fresh WRQ, not a resumed session"
    );
    assert_eq!(
        world
            .counters()
            .get(scenario::workload::UPLOAD_ALIVE_COUNTER),
        1,
        "the module's init ran exactly once, on the restarted bridge"
    );
}

/// One payload bit flipped under an intact envelope header: the
/// loader's integrity gate refuses the image before decode, the sender
/// parks the upload as a classified integrity reject once its budget is
/// spent, and the poisoned module never executes.
#[test]
fn integrity_gate_refuses_corrupted_image_end_to_end() {
    let mut world = World::new(41);
    let segs = scenario::lans(&mut world, 2);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    let uploader = world.add_node(HostNode::new(
        "uploader",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::pc_1997()),
        vec![UploadApp::with_config(
            PortId(0),
            scenario::bridge_ip(0),
            4000,
            "corrupt.swl",
            scenario::workload::corrupt_upload_image(7),
            UploadConfig {
                max_retries: 6,
                ..UploadConfig::resilient()
            },
        )],
    ));
    world.attach(uploader, segs[0]);

    run_until_done(&mut world, SimTime::from_secs(30), |w| {
        let App::Upload(a) = w.node::<HostNode>(uploader).app(0).unwrapped() else {
            unreachable!()
        };
        a.is_done() || a.failed.is_some()
    });
    let App::Upload(a) = world.node::<HostNode>(uploader).app(0).unwrapped() else {
        unreachable!()
    };
    assert!(!a.is_done(), "a corrupted image must never complete");
    assert_eq!(a.failure, Some(FailureClass::IntegrityReject));
    assert!(a.failed.is_some(), "the spent budget parks the upload");
    let node = world.node::<BridgeNode>(b);
    assert!(
        node.plane().stats.images_rejected >= 1,
        "every delivery attempt died at the gate"
    );
    assert!(
        node.plane().is_running("bridge_learning"),
        "the data plane is unharmed"
    );
    assert_eq!(
        world
            .counters()
            .get(scenario::workload::UPLOAD_ALIVE_COUNTER),
        0,
        "the poisoned init never ran"
    );
}

/// The administrative interface can hot-swap the data plane, mirroring
/// the in-band loading path.
#[test]
fn admin_interface_swaps_data_plane() {
    let mut path = build_path(Forwarder::Bridge, 35, vec![], vec![]);
    let bridge = path.middle.unwrap();
    path.world.run_until(SimTime::from_ms(10));
    assert!(path
        .world
        .node::<BridgeNode>(bridge)
        .plane()
        .is_running("bridge_learning"));
    path.world.with_ctx::<BridgeNode, _>(bridge, |node, ctx| {
        node.administer(ctx, BridgeCommand::Suspend("bridge_learning".into()));
    });
    assert!(!path
        .world
        .node::<BridgeNode>(bridge)
        .plane()
        .is_running("bridge_learning"));
    path.world.with_ctx::<BridgeNode, _>(bridge, |node, ctx| {
        node.administer(ctx, BridgeCommand::Resume("bridge_learning".into()));
    });
    assert!(path
        .world
        .node::<BridgeNode>(bridge)
        .plane()
        .is_running("bridge_learning"));
}

/// Suspended spanning tree on a line topology leaves data flowing (ports
/// stay in their last state); blasting still works.
#[test]
fn suspended_stp_does_not_break_forwarding() {
    let mut world = World::new(36);
    let segs = scenario::lans(&mut world, 2);
    let b = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning", "stp_ieee"],
    );
    world.run_until(SimTime::from_secs(35)); // forwarding reached
    world.with_ctx::<BridgeNode, _>(b, |node, ctx| {
        node.administer(ctx, BridgeCommand::Suspend("stp_ieee".into()));
    });
    let sink = world.add_node(HostNode::new(
        "sink",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![],
    ));
    world.attach(sink, segs[1]);
    let blaster = world.add_node(HostNode::new(
        "blaster",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            128,
            10,
            SimDuration::from_ms(2),
        )],
    ));
    world.attach(blaster, segs[0]);
    world.run_until(SimTime::from_secs(36));
    assert_eq!(world.node::<HostNode>(sink).core.exp_frames_rx, 10);
    // And the engine can be resumed cleanly.
    world.with_ctx::<BridgeNode, _>(b, |node, ctx| {
        node.administer(ctx, BridgeCommand::Resume("stp_ieee".into()));
    });
    world.run_until(SimTime::from_secs(70));
    let node = world.node::<BridgeNode>(b);
    let s = node.switchlet::<StpSwitchlet>("stp_ieee").unwrap();
    assert!(s.engine().is_some());
    assert_eq!(s.engine().unwrap().port_role(0), PortRole::Designated);
}
