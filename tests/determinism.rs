//! Reproducibility: every experiment is a pure function of
//! `(topology, seed)` — and the probe's local BPDU codec stays
//! byte-compatible with the bridge's.

use ab_bench::{run_agility, run_ping, run_ttcp, Forwarder};
use active_bridge::switchlets::stp::bpdu as bridge_bpdu;
use ether::MacAddr;
use hostsim::apps::active_bridge_types as probe_bpdu;

#[test]
fn ping_is_deterministic() {
    let a = run_ping(Forwarder::Bridge, 512, 10, 77);
    let b = run_ping(Forwarder::Bridge, 512, 10, 77);
    assert_eq!(a.avg_rtt_ms, b.avg_rtt_ms);
    assert_eq!(a.min_rtt_ms, b.min_rtt_ms);
    assert_eq!(a.max_rtt_ms, b.max_rtt_ms);
}

#[test]
fn ttcp_is_deterministic() {
    let a = run_ttcp(Forwarder::Bridge, 4096, 500_000, 78);
    let b = run_ttcp(Forwarder::Bridge, 4096, 500_000, 78);
    assert_eq!(a.secs, b.secs);
    assert_eq!(a.frames, b.frames);
}

#[test]
fn agility_is_deterministic() {
    let a = run_agility(79);
    let b = run_agility(79);
    assert_eq!(a.to_ieee_s, b.to_ieee_s);
    assert_eq!(a.to_ping_s, b.to_ping_s);
}

#[test]
fn different_seeds_may_differ_but_complete() {
    // Seeds shift fault-free runs only through RNG-dependent choices;
    // everything still completes with the same counts.
    let a = run_ping(Forwarder::Bridge, 512, 10, 1);
    let b = run_ping(Forwarder::Bridge, 512, 10, 2);
    assert_eq!(a.received, 10);
    assert_eq!(b.received, 10);
}

#[test]
fn probe_bpdu_codec_matches_bridge_codec() {
    // hostsim carries a local copy of the IEEE BPDU encoder (it must not
    // depend on the system under test); the bytes must be identical.
    let probe = probe_bpdu::ieee_emit(&probe_bpdu::Bpdu::Config(probe_bpdu::ConfigBpdu {
        root: probe_bpdu::BridgeId::new(0x8000, MacAddr::local(5)),
        root_cost: 200,
        bridge: probe_bpdu::BridgeId::new(0x9000, MacAddr::local(6)),
        port: 2,
        message_age: 1,
        max_age: 20,
        hello_time: 2,
        forward_delay: 15,
        tc: true,
        tca: false,
    }));
    let bridge = bridge_bpdu::ieee::emit(&bridge_bpdu::Bpdu::Config(bridge_bpdu::ConfigBpdu {
        root: bridge_bpdu::BridgeId::new(0x8000, MacAddr::local(5)),
        root_cost: 200,
        bridge: bridge_bpdu::BridgeId::new(0x9000, MacAddr::local(6)),
        port: 2,
        message_age: 1,
        max_age: 20,
        hello_time: 2,
        forward_delay: 15,
        tc: true,
        tca: false,
    }));
    assert_eq!(probe, bridge, "probe and bridge BPDU codecs agree");
    // And the bridge's parser accepts the probe's bytes.
    assert!(matches!(
        bridge_bpdu::ieee::parse(&probe),
        Some(bridge_bpdu::Bpdu::Config(_))
    ));
}

/// Serialize every retained trace entry of one lossy-bridged run into one
/// byte string: `(time, node, message)` per line, oldest first.
fn lossy_run_trace_bytes(seed: u64) -> Vec<u8> {
    use ab_scenario::{host_ip, host_mac};
    use active_bridge::BridgeConfig;
    use hostsim::{BlastApp, HostConfig, HostCostModel, HostNode};
    use netsim::{FaultConfig, PortId, SegmentConfig, SimDuration, SimTime, World};

    let mut world = World::new(seed);
    // Two LANs joined by a learning bridge; the second LAN drops and
    // duplicates frames, so the event sequence depends on the world RNG.
    let lan_a = world.add_segment(SegmentConfig::named("lan_a"));
    let lan_b = world.add_segment(SegmentConfig {
        fault: FaultConfig {
            drop_one_in: 4,
            corrupt_one_in: 7,
            duplicate_one_in: 5,
            ..Default::default()
        },
        ..SegmentConfig::named("lan_b")
    });
    let _bridge = ab_scenario::bridge(
        &mut world,
        0,
        &[lan_a, lan_b],
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    let sender = world.add_node(HostNode::new(
        "sender",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            200,
            120,
            SimDuration::from_ms(1),
        )],
    ));
    world.attach(sender, lan_a);
    let receiver = world.add_node(HostNode::new(
        "receiver",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![],
    ));
    world.attach(receiver, lan_b);

    world.run_until(SimTime::from_secs(2));

    let mut out = Vec::new();
    for e in world.trace().entries() {
        out.extend_from_slice(format!("{:?}\t{:?}\t{}\n", e.at, e.node, e.msg).as_bytes());
    }
    // A run that traced nothing would make the comparison below vacuous.
    assert!(!out.is_empty(), "lossy run produced no trace entries");
    // Fold in the RNG-dependent observable state: per-segment wire
    // counters (fault drops/corruptions vary with the seed) and the
    // run-wide experiment counters.
    for &seg in &[lan_a, lan_b] {
        out.extend_from_slice(format!("{seg:?}\t{:?}\n", world.segment(seg).counters()).as_bytes());
    }
    for (key, value) in world.counters().iter() {
        out.extend_from_slice(format!("{key}\t{value}\n").as_bytes());
    }
    out
}

/// Like [`lossy_run_trace_bytes`], with wire capture enabled on the
/// faulty segment and the captured frames folded into the byte string —
/// the richest observable record of the frame plane (timestamps, sender
/// ports, post-fault wire bytes).
fn lossy_captured_run_bytes(seed: u64) -> Vec<u8> {
    lossy_captured_run_bytes_with_probe(seed, false)
}

/// Same run, optionally with the flight recorder armed — the observable
/// bytes must not depend on `armed` (the non-perturbation invariant).
fn lossy_captured_run_bytes_with_probe(seed: u64, armed: bool) -> Vec<u8> {
    let mut world = netsim::World::new(seed);
    lossy_captured_run_in(&mut world, armed, false)
}

/// The body of the golden-digest run, against a caller-provided world
/// (so reused/reset worlds can be proven equivalent to fresh ones).
/// With `transparent_chaos`, an empty [`netsim::ChaosScript`] is
/// scheduled before the run — it must schedule nothing, draw nothing
/// and leave the digests untouched.
fn lossy_captured_run_in(
    world: &mut netsim::World,
    armed: bool,
    transparent_chaos: bool,
) -> Vec<u8> {
    use ab_scenario::{host_ip, host_mac};
    use active_bridge::BridgeConfig;
    use hostsim::{BlastApp, HostConfig, HostCostModel, HostNode};
    use netsim::{FaultConfig, PortId, ProbeConfig, SegmentConfig, SimDuration, SimTime};

    if armed {
        world.probe_mut().arm(ProbeConfig::default());
    }
    let lan_a = world.add_segment(SegmentConfig::named("lan_a"));
    let lan_b = world.add_segment(SegmentConfig {
        fault: FaultConfig {
            drop_one_in: 4,
            corrupt_one_in: 7,
            duplicate_one_in: 5,
            ..Default::default()
        },
        capture: true,
        ..SegmentConfig::named("lan_b")
    });
    let _bridge = ab_scenario::bridge(
        world,
        0,
        &[lan_a, lan_b],
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    if transparent_chaos {
        netsim::ChaosScript::transparent().schedule(world, SimTime::ZERO, &[lan_a, lan_b], &[]);
    }
    let sender = world.add_node(HostNode::new(
        "sender",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            200,
            120,
            SimDuration::from_ms(1),
        )],
    ));
    world.attach(sender, lan_a);
    let receiver = world.add_node(HostNode::new(
        "receiver",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![],
    ));
    world.attach(receiver, lan_b);
    world.run_until(SimTime::from_secs(2));

    let mut out = Vec::new();
    for e in world.trace().entries() {
        out.extend_from_slice(format!("{:?}\t{:?}\t{}\n", e.at, e.node, e.msg).as_bytes());
    }
    assert!(!out.is_empty(), "lossy run produced no trace entries");
    for &seg in &[lan_a, lan_b] {
        // Dumped field-by-field in the layout the golden digests were
        // recorded with: `SegCounters` has since grown an
        // observability-only field (peak_queue) that postdates the
        // recording and stays outside the equivalence check.
        let c = world.segment(seg).counters();
        out.extend_from_slice(
            format!(
                "{seg:?}\tSegCounters {{ tx_frames: {}, tx_bytes: {}, deliveries: {}, \
                 contended: {}, queue_drops: {}, fault_drops: {}, corrupted: {}, \
                 fault_duplicates: {} }}\n",
                c.tx_frames,
                c.tx_bytes,
                c.deliveries,
                c.contended,
                c.queue_drops,
                c.fault_drops,
                c.corrupted,
                c.fault_duplicates
            )
            .as_bytes(),
        );
    }
    for (key, value) in world.counters().iter() {
        out.extend_from_slice(format!("{key}\t{value}\n").as_bytes());
    }
    for cap in world.segment(lan_b).captured() {
        out.extend_from_slice(
            format!("{:?}\t{:?}\t{:?}\n", cap.at, cap.src, &cap.data[..]).as_bytes(),
        );
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Golden digests recorded from the *pre-refactor* frame plane (commit
/// 867f385, `Vec`-copying representation, unbatched per-listener
/// `Deliver` events). The zero-copy `FrameBuf` representation must
/// produce byte-identical traces, counters and captured wire frames —
/// this is the proof that the representation change (shared buffers,
/// batched delivery, copy-on-write corruption, null-event elision) is
/// unobservable to the simulation.
#[test]
fn traces_are_byte_identical_to_the_pre_refactor_representation() {
    const GOLDEN: [(u64, usize, u64); 4] = [
        (0xAB1D, 77166, 0x09c24dbacd1f12cc),
        (0xF00D, 82508, 0xd8eac9df4145b982),
        (7, 81620, 0x1954233dd7c9cc86),
        (99, 82508, 0x7f358d68a661b39e),
    ];
    for (seed, len, digest) in GOLDEN {
        let bytes = lossy_captured_run_bytes(seed);
        assert_eq!(
            (bytes.len(), fnv1a(&bytes)),
            (len, digest),
            "seed {seed:#x}: trace bytes diverged from the pre-refactor recording"
        );
    }
}

/// The flight recorder's non-perturbation proof: arming the probe on the
/// RNG-dependent lossy run must reproduce the golden digests bit for bit.
/// If any probe hook scheduled an event, drew from the world RNG, or
/// perturbed `(time, seq)` ordering, the fault pattern would shift and
/// these digests would diverge.
#[test]
fn probe_armed_run_reproduces_the_golden_digests() {
    const GOLDEN: [(u64, usize, u64); 4] = [
        (0xAB1D, 77166, 0x09c24dbacd1f12cc),
        (0xF00D, 82508, 0xd8eac9df4145b982),
        (7, 81620, 0x1954233dd7c9cc86),
        (99, 82508, 0x7f358d68a661b39e),
    ];
    for (seed, len, digest) in GOLDEN {
        let bytes = lossy_captured_run_bytes_with_probe(seed, true);
        assert_eq!(
            (bytes.len(), fnv1a(&bytes)),
            (len, digest),
            "seed {seed:#x}: arming the flight recorder perturbed the run"
        );
    }
}

/// The chaos plane's transparency proof: scheduling an **empty**
/// `ChaosScript` into the golden lossy run must reproduce the recorded
/// digests bit for bit. A transparent script schedules no events and
/// draws nothing from the world RNG, so every pre-chaos workload (all
/// of which now carry one) replays exactly as before the chaos plane
/// existed.
#[test]
fn transparent_chaos_script_reproduces_the_golden_digests() {
    const GOLDEN: [(u64, usize, u64); 4] = [
        (0xAB1D, 77166, 0x09c24dbacd1f12cc),
        (0xF00D, 82508, 0xd8eac9df4145b982),
        (7, 81620, 0x1954233dd7c9cc86),
        (99, 82508, 0x7f358d68a661b39e),
    ];
    for (seed, len, digest) in GOLDEN {
        let mut world = netsim::World::new(seed);
        let bytes = lossy_captured_run_in(&mut world, false, true);
        assert_eq!(
            (bytes.len(), fnv1a(&bytes)),
            (len, digest),
            "seed {seed:#x}: a transparent chaos script perturbed the run"
        );
    }
}

/// The reset-regression proof for the chaos plane: a world dirtied by
/// *unhealed* chaos (a downed segment, a crashed node, accumulated
/// `down_drops`) and then `reset` must reproduce the golden digests —
/// the sweep exec pool reuses worlds across scenarios, so any leaked
/// chaos state would make reports depend on which worker ran what.
#[test]
fn chaos_dirtied_then_reset_world_reproduces_the_golden_digests() {
    use hostsim::{HostConfig, HostCostModel, HostNode};
    use netsim::{SegmentConfig, SimTime, World};

    const GOLDEN: [(u64, usize, u64); 4] = [
        (0xAB1D, 77166, 0x09c24dbacd1f12cc),
        (0xF00D, 82508, 0xd8eac9df4145b982),
        (7, 81620, 0x1954233dd7c9cc86),
        (99, 82508, 0x7f358d68a661b39e),
    ];
    for (seed, len, digest) in GOLDEN {
        // Dirty a differently-seeded world and leave its chaos unhealed.
        let mut world = World::new(!seed);
        let lan = world.add_segment(SegmentConfig::named("doomed"));
        let node = world.add_node(HostNode::new(
            "victim",
            HostConfig::simple(
                ab_scenario::host_mac(9),
                ab_scenario::host_ip(9),
                HostCostModel::FREE,
            ),
            vec![],
        ));
        world.attach(node, lan);
        world.set_link_down(lan, true);
        world.crash_node(node);
        world.run_until(SimTime::from_ms(5));
        assert!(world.segment(lan).is_down());
        assert!(world.is_crashed(node));

        world.reset(seed);
        let bytes = lossy_captured_run_in(&mut world, false, false);
        assert_eq!(
            (bytes.len(), fnv1a(&bytes)),
            (len, digest),
            "seed {seed:#x}: chaos state leaked through World::reset"
        );
    }
}

#[test]
fn same_seed_produces_byte_identical_traces() {
    let a = lossy_run_trace_bytes(0xAB1D);
    let b = lossy_run_trace_bytes(0xAB1D);
    assert_eq!(a, b, "same (topology, seed) must replay the exact trace");
}

#[test]
fn different_seeds_produce_different_traces() {
    // With faults drawn from the world RNG, distinct seeds should shift
    // the event sequence — guarding against an RNG that ignores its seed.
    let a = lossy_run_trace_bytes(0xAB1D);
    let b = lossy_run_trace_bytes(0xF00D);
    assert_ne!(a, b, "fault injection must actually consume the seed");
}
