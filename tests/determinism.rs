//! Reproducibility: every experiment is a pure function of
//! `(topology, seed)` — and the probe's local BPDU codec stays
//! byte-compatible with the bridge's.

use ab_bench::{run_agility, run_ping, run_ttcp, Forwarder};
use active_bridge::switchlets::stp::bpdu as bridge_bpdu;
use ether::MacAddr;
use hostsim::apps::active_bridge_types as probe_bpdu;

#[test]
fn ping_is_deterministic() {
    let a = run_ping(Forwarder::Bridge, 512, 10, 77);
    let b = run_ping(Forwarder::Bridge, 512, 10, 77);
    assert_eq!(a.avg_rtt_ms, b.avg_rtt_ms);
    assert_eq!(a.min_rtt_ms, b.min_rtt_ms);
    assert_eq!(a.max_rtt_ms, b.max_rtt_ms);
}

#[test]
fn ttcp_is_deterministic() {
    let a = run_ttcp(Forwarder::Bridge, 4096, 500_000, 78);
    let b = run_ttcp(Forwarder::Bridge, 4096, 500_000, 78);
    assert_eq!(a.secs, b.secs);
    assert_eq!(a.frames, b.frames);
}

#[test]
fn agility_is_deterministic() {
    let a = run_agility(79);
    let b = run_agility(79);
    assert_eq!(a.to_ieee_s, b.to_ieee_s);
    assert_eq!(a.to_ping_s, b.to_ping_s);
}

#[test]
fn different_seeds_may_differ_but_complete() {
    // Seeds shift fault-free runs only through RNG-dependent choices;
    // everything still completes with the same counts.
    let a = run_ping(Forwarder::Bridge, 512, 10, 1);
    let b = run_ping(Forwarder::Bridge, 512, 10, 2);
    assert_eq!(a.received, 10);
    assert_eq!(b.received, 10);
}

#[test]
fn probe_bpdu_codec_matches_bridge_codec() {
    // hostsim carries a local copy of the IEEE BPDU encoder (it must not
    // depend on the system under test); the bytes must be identical.
    let probe = probe_bpdu::ieee_emit(&probe_bpdu::Bpdu::Config(probe_bpdu::ConfigBpdu {
        root: probe_bpdu::BridgeId::new(0x8000, MacAddr::local(5)),
        root_cost: 200,
        bridge: probe_bpdu::BridgeId::new(0x9000, MacAddr::local(6)),
        port: 2,
        message_age: 1,
        max_age: 20,
        hello_time: 2,
        forward_delay: 15,
        tc: true,
        tca: false,
    }));
    let bridge = bridge_bpdu::ieee::emit(&bridge_bpdu::Bpdu::Config(bridge_bpdu::ConfigBpdu {
        root: bridge_bpdu::BridgeId::new(0x8000, MacAddr::local(5)),
        root_cost: 200,
        bridge: bridge_bpdu::BridgeId::new(0x9000, MacAddr::local(6)),
        port: 2,
        message_age: 1,
        max_age: 20,
        hello_time: 2,
        forward_delay: 15,
        tc: true,
        tca: false,
    }));
    assert_eq!(probe, bridge, "probe and bridge BPDU codecs agree");
    // And the bridge's parser accepts the probe's bytes.
    assert!(matches!(
        bridge_bpdu::ieee::parse(&probe),
        Some(bridge_bpdu::Bpdu::Config(_))
    ));
}
