//! The Section 7 performance/agility experiments as pass/fail checks:
//! every relationship the paper reports must hold in the reproduction.

use ab_bench::{fig5_walk, run_agility, run_ping, run_ttcp, Forwarder};

#[test]
fn agility_numbers_match_the_paper_shape() {
    // Paper: "the average start to IEEE time measured was 0.056 seconds,
    // and the average start to received ping time was 30.1 seconds. Thus,
    // the active bridge's reconfiguration was much faster (<0.1 second)
    // than timeouts (accounting for the additional 30 seconds) built into
    // the bridge protocols."
    let a = run_agility(5);
    let to_ieee = a.to_ieee_s.expect("IEEE seen on eth1");
    let to_ping = a.to_ping_s.expect("ping crossed");
    assert!(
        to_ieee < 0.1,
        "switch-over must beat 0.1 s (got {to_ieee:.4} s)"
    );
    assert!(
        (29.0..32.0).contains(&to_ping),
        "re-forwarding is governed by 2 x forward delay (got {to_ping:.2} s)"
    );
    assert!(a.pings_sent >= 29, "one ping per second until success");
}

#[test]
fn ping_latency_ordering_holds() {
    // Figure 9's ordering at every size: direct < repeater < bridge.
    for size in [32usize, 512, 1024] {
        let d = run_ping(Forwarder::Direct, size, 10, 2);
        let r = run_ping(Forwarder::Repeater, size, 10, 2);
        let b = run_ping(Forwarder::Bridge, size, 10, 2);
        assert_eq!(d.received, 10);
        assert_eq!(r.received, 10);
        assert_eq!(b.received, 10);
        assert!(
            d.avg_rtt_ms < r.avg_rtt_ms && r.avg_rtt_ms < b.avg_rtt_ms,
            "size {size}: {:.3} < {:.3} < {:.3}",
            d.avg_rtt_ms,
            r.avg_rtt_ms,
            b.avg_rtt_ms
        );
    }
}

#[test]
fn ping_latency_grows_with_size() {
    let small = run_ping(Forwarder::Bridge, 64, 10, 2);
    let large = run_ping(Forwarder::Bridge, 4096, 10, 2);
    assert_eq!(large.received, 10, "4 KB pings fragment and reassemble");
    assert!(large.avg_rtt_ms > small.avg_rtt_ms * 1.5);
}

#[test]
fn ttcp_headline_numbers() {
    // Paper: 76 Mb/s unbridged, 16 Mb/s bridged (8 KB writes), bridge =
    // ~44% of the C repeater.
    let direct = run_ttcp(Forwarder::Direct, 8192, 2_000_000, 3);
    let rep = run_ttcp(Forwarder::Repeater, 8192, 2_000_000, 3);
    let bridge = run_ttcp(Forwarder::Bridge, 8192, 2_000_000, 3);
    assert!(direct.completed && rep.completed && bridge.completed);
    assert!(
        (60.0..85.0).contains(&direct.mbps),
        "direct {:.1} Mb/s (paper: 76)",
        direct.mbps
    );
    assert!(
        (13.0..19.0).contains(&bridge.mbps),
        "bridged {:.1} Mb/s (paper: 16)",
        bridge.mbps
    );
    let ratio = bridge.mbps / rep.mbps;
    assert!(
        (0.35..0.55).contains(&ratio),
        "bridge/repeater {:.2} (paper: 0.44)",
        ratio
    );
}

#[test]
fn ttcp_frame_rates_match_the_table() {
    // Paper: "about 360 frames per second for small frames (ca. 50
    // bytes) to 1790 frames per second for 1024 byte frames".
    let small = run_ttcp(Forwarder::Bridge, 50, 40_000, 3);
    assert!(small.completed);
    assert!(
        (250.0..500.0).contains(&small.frames_per_sec),
        "small-frame rate {:.0} f/s (paper: ~360)",
        small.frames_per_sec
    );
    let big = run_ttcp(Forwarder::Bridge, 1024, 2_000_000, 3);
    assert!(big.completed);
    assert!(
        (1400.0..2100.0).contains(&big.frames_per_sec),
        "1024-byte rate {:.0} f/s (paper: ~1790)",
        big.frames_per_sec
    );
}

#[test]
fn vm_data_path_also_bridges() {
    // The bytecode data plane carries real traffic end to end.
    let s = run_ping(Forwarder::VmBridge, 256, 10, 4);
    assert_eq!(s.received, 10);
}

#[test]
fn fig5_steps_sum_to_service_time() {
    let steps = fig5_walk(1024);
    assert_eq!(steps.len(), 7);
    let sw: f64 = steps
        .iter()
        .filter(|s| (2..=6).contains(&s.step))
        .map(|s| s.us)
        .sum();
    let model = netsim::CostModel::active_bridge_1997()
        .service_time(1024)
        .as_micros_f64();
    assert!(
        (sw - model).abs() < 1.0,
        "software steps ({sw:.1} us) must sum to the model ({model:.1} us)"
    );
}
