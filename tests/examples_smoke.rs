//! Smoke test: every example binary builds and exits 0.
//!
//! The examples double as executable documentation; a drifted API breaks
//! them silently unless something actually runs them. The list is
//! discovered from `examples/` so an example added later is covered
//! automatically. One test drives them all sequentially (parallel
//! `cargo run` invocations would only serialize on the target-directory
//! lock anyway).

use std::path::Path;
use std::process::Command;

#[test]
fn all_examples_run_cleanly() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut examples: Vec<String> = std::fs::read_dir(manifest_dir.join("examples"))
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            if path.extension().is_some_and(|e| e == "rs") {
                Some(path.file_stem().unwrap().to_string_lossy().into_owned())
            } else {
                None
            }
        })
        .collect();
    examples.sort();
    assert!(
        examples.len() >= 7,
        "expected the six seed examples plus scenario_sweep, found {examples:?}"
    );
    assert!(
        examples.iter().any(|e| e == "scenario_sweep"),
        "the scenario_sweep example must be covered"
    );

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for example in &examples {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", example])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
