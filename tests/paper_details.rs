//! Fine-grained paper behaviours: footnote 3's group-address rules on
//! the live data path, the write-only TFTP server refusing reads over
//! the network, and the first-bind-wins port arbitration surfacing as
//! the paper's `Already_bound` failure.

use ab_scenario::{self as scenario, host_ip, host_mac};
use active_bridge::hostmods::handler_ty;
use active_bridge::{BridgeConfig, BridgeNode};
use ether::MacAddr;
use hostsim::{BlastApp, HostConfig, HostCostModel, HostNode};
use netsim::{PortId, SimDuration, SimTime, World};
use netstack::ipv4::Protocol;
use netstack::TftpPacket;
use switchlet::{ModuleBuilder, Op, Ty};

/// Footnote 3: "if the source address is a multicast or broadcast
/// address, this step [learning] is bypassed" — checked on the live
/// bridge, not just the table.
#[test]
fn group_source_addresses_never_learned_live() {
    let mut world = World::new(51);
    let segs = scenario::lans(&mut world, 2);
    let bridge = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    // A host whose NIC claims a *broadcast* source address (a buggy or
    // hostile station).
    let weird = world.add_node(HostNode::new(
        "weird",
        HostConfig::simple(MacAddr::BROADCAST, host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            64,
            5,
            SimDuration::from_ms(1),
        )],
    ));
    world.attach(weird, segs[0]);
    world.run_until(SimTime::from_ms(100));
    assert_eq!(
        world.node::<BridgeNode>(bridge).plane().learn.len(),
        0,
        "a group source address must never enter the table"
    );
}

/// Footnote 3: group destinations always flood, even when a (bogus)
/// table entry could exist.
#[test]
fn group_destinations_always_flood() {
    let mut world = World::new(52);
    let segs = scenario::lans(&mut world, 3);
    scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_learning"],
    );
    let blaster = world.add_node(HostNode::new(
        "blaster",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            MacAddr::BROADCAST,
            64,
            7,
            SimDuration::from_ms(1),
        )],
    ));
    world.attach(blaster, segs[0]);
    world.run_until(SimTime::from_ms(100));
    // Both other LANs carry all seven frames.
    assert_eq!(world.segment(segs[1]).counters().tx_frames, 7);
    assert_eq!(world.segment(segs[2]).counters().tx_frames, 7);
}

/// "This server only services write requests" — an RRQ over the real
/// network path draws a TFTP ERROR, and nothing is served.
#[test]
fn tftp_read_requests_refused_over_the_network() {
    let mut world = World::new(53);
    let segs = scenario::lans(&mut world, 2);
    let bridge = scenario::bridge(&mut world, 0, &segs, BridgeConfig::default(), &[]);
    let host = world.add_node(HostNode::new(
        "reader",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![],
    ));
    world.attach(host, segs[0]);
    world.run_until(SimTime::from_ms(10));
    // Send the RRQ directly (bypassing ARP by addressing the bridge MAC).
    let rrq = TftpPacket::Rrq {
        filename: "switchlets.bin",
        mode: "octet",
    }
    .emit();
    let frame = active_bridge::loader::wrap_tftp_packet(
        host_mac(1),
        host_ip(1),
        1069,
        scenario::bridge_mac(0),
        scenario::bridge_ip(0),
        1,
        &rrq,
    );
    world.with_ctx::<HostNode, _>(host, |h, ctx| {
        h.core.send_raw(ctx, PortId(0), frame);
    });
    world.run_until(SimTime::from_ms(100));
    let node = world.node::<BridgeNode>(bridge);
    let loader = node
        .switchlet::<active_bridge::loader::NetLoader>("netloader")
        .unwrap();
    assert_eq!(loader.images_received, 0);
    // Only the boot-loaded netloader carrier itself; nothing was served.
    assert_eq!(node.plane().stats.images_loaded, 1);
}

/// "The first switchlet to bind to a given port succeeds and all others
/// fail": two VM switchlets race for the same output port; the second
/// gets the `Already_bound` error and its init is rejected.
#[test]
fn second_binder_gets_already_bound() {
    fn binder_image(name: &str) -> Vec<u8> {
        let mut mb = ModuleBuilder::new(name);
        let i_bind = mb.import(
            "unixnet",
            "bind_out",
            Ty::func(vec![Ty::Int], Ty::named("oport")),
        );
        let i_reg = mb.import(
            "func",
            "register_handler",
            Ty::func(vec![Ty::Str, handler_ty()], Ty::Unit),
        );
        // A trivial handler so the module is a plausible switchlet.
        let mut h = mb.func("handler", vec![Ty::Str, Ty::Int], Ty::Unit);
        h.op(Op::ConstUnit).op(Op::Return);
        let h_idx = mb.finish(h);
        let key = mb.intern_str(b"handler");
        let mut init = mb.func("init", vec![], Ty::Unit);
        init.op(Op::ConstInt(0))
            .op(Op::CallImport(i_bind))
            .op(Op::Pop);
        init.op(Op::ConstStr(key))
            .op(Op::FuncConst(h_idx))
            .op(Op::CallImport(i_reg));
        init.op(Op::Return);
        let i_idx = mb.finish(init);
        mb.set_init(i_idx);
        mb.build().encode()
    }

    let mut world = World::new(54);
    let segs = scenario::lans(&mut world, 2);
    let mut node = BridgeNode::new(
        "bridge0",
        scenario::bridge_mac(0),
        scenario::bridge_ip(0),
        2,
        BridgeConfig::default(),
    );
    node.boot_load_native(active_bridge::loader::NAME);
    node.boot_load(binder_image("first"));
    node.boot_load(binder_image("second"));
    let b = world.add_node(node);
    for &s in &segs {
        world.attach(b, s);
    }
    world.run_until(SimTime::from_ms(10));
    let node = world.node::<BridgeNode>(b);
    assert!(node.plane().is_loaded("first"), "first binder loads");
    assert!(
        !node.plane().is_loaded("second"),
        "second binder's init trapped on Already_bound"
    );
    assert!(
        world.trace().contains("Already_bound"),
        "the paper's exception surfaces in the trace"
    );
}

/// The loader's minimal IP really rejects fragments (hosts fragment,
/// the loader stack must not accept fragmented uploads).
#[test]
fn loader_ignores_fragmented_datagrams() {
    let mut world = World::new(55);
    let segs = scenario::lans(&mut world, 2);
    let bridge = scenario::bridge(&mut world, 0, &segs, BridgeConfig::default(), &[]);
    let host = world.add_node(HostNode::new(
        "fragger",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![],
    ));
    world.attach(host, segs[0]);
    world.run_until(SimTime::from_ms(10));
    // A WRQ inside a deliberately fragmented datagram (two fragments).
    let wrq = TftpPacket::Wrq {
        filename: "x",
        mode: "octet",
    }
    .emit();
    let udp = netstack::udp::emit(host_ip(1), 1069, scenario::bridge_ip(0), 69, &wrq);
    let frags = netstack::ipv4::emit_fragments(
        host_ip(1),
        scenario::bridge_ip(0),
        Protocol::UDP,
        9,
        64,
        &udp,
        // An absurdly small "MTU" forces fragmentation of even this
        // small datagram.
        28,
    );
    assert!(frags.len() >= 2, "setup: datagram must fragment");
    world.with_ctx::<HostNode, _>(host, |h, ctx| {
        for f in &frags {
            let frame = ether::FrameBuilder::new(
                scenario::bridge_mac(0),
                host_mac(1),
                ether::EtherType::IPV4,
            )
            .payload(f)
            .build();
            h.core.send_raw(ctx, PortId(0), frame);
        }
    });
    world.run_until(SimTime::from_ms(100));
    let node = world.node::<BridgeNode>(bridge);
    let loader = node
        .switchlet::<active_bridge::loader::NetLoader>("netloader")
        .unwrap();
    assert_eq!(
        loader.images_received, 0,
        "minimal IP does not implement fragmentation (paper 5.2)"
    );
}
