//! The Table 1 experiments: automatic protocol transition with
//! validation, plus both fallback paths (failed tests; late old-protocol
//! packets). These are the paper's headline "agility" results.

use ab_bench::{run_transition, TransitionMode};
use active_bridge::Phase;

#[test]
fn transition_passes_and_terminates() {
    let r = run_transition(TransitionMode::Pass, 42);
    assert_eq!(r.bridges.len(), 3);
    for b in &r.bridges {
        assert_eq!(
            b.phase,
            Some(Phase::Stable { fallback: false }),
            "{} must pass",
            b.name
        );
        assert!(b.ieee_running, "{}: IEEE keeps running", b.name);
        assert!(!b.dec_running, "{}: DEC stays suspended", b.name);
        // The Table 1 rows, in order.
        let whats: Vec<&str> = b.events.iter().map(|(_, w)| w.as_str()).collect();
        assert!(whats[0].contains("monitoring"), "{whats:?}");
        assert!(whats[1].contains("recv IEEE packet"), "{whats:?}");
        assert!(whats[2].contains("start IEEE"), "{whats:?}");
        assert!(whats[3].contains("30 seconds"), "{whats:?}");
        assert!(whats[4].contains("perform tests"), "{whats:?}");
        assert!(whats[5].contains("pass tests"), "{whats:?}");
    }
    // Timing: the suppression window ends 30 s after the trigger and the
    // tests run 60 s after, per the configuration.
    for b in &r.bridges {
        let t_recv = b.events[1].0;
        let t_30 = b.events[3].0;
        let t_60 = b.events[4].0;
        assert!((t_30 - t_recv - 30.0).abs() < 0.01, "30 s window");
        assert!((t_60 - t_recv - 60.0).abs() < 0.01, "60 s tests");
        assert!(t_recv >= r.injected_at_s, "transition after injection");
        assert!(
            t_recv - r.injected_at_s < 1.0,
            "transition propagates in well under a second"
        );
    }
}

#[test]
fn transition_suppresses_old_protocol_during_window() {
    let r = run_transition(TransitionMode::Pass, 43);
    // At least one bridge should have suppressed straggler DEC hellos
    // (bridges transition a few hundred microseconds apart, and DEC
    // hellos are in flight when the first bridge switches).
    let total: u64 = r.bridges.iter().map(|b| b.dec_suppressed).sum();
    // Suppression counts depend on hello phase; what matters is that no
    // bridge fell back.
    for b in &r.bridges {
        assert_eq!(b.phase, Some(Phase::Stable { fallback: false }));
    }
    let _ = total;
}

#[test]
fn defective_protocol_fails_tests_and_falls_back() {
    // The paper: "If the spanning tree does not converge to the expected
    // values within a predetermined time, the control switchlet will
    // determine that there must be a bug in the new protocol
    // implementation" — and restart the old one.
    let r = run_transition(TransitionMode::FailTests, 44);
    for b in &r.bridges {
        assert_eq!(
            b.phase,
            Some(Phase::Stable { fallback: true }),
            "{} must fall back",
            b.name
        );
        assert!(!b.ieee_running, "{}: defective IEEE stopped", b.name);
        assert!(b.dec_running, "{}: DEC restarted", b.name);
        let whats: Vec<&str> = b.events.iter().map(|(_, w)| w.as_str()).collect();
        assert!(
            whats.iter().any(|w| w.contains("fallback")),
            "{}: {whats:?}",
            b.name
        );
    }
}

#[test]
fn late_dec_packet_forces_fallback() {
    // One bridge never upgrades and keeps speaking DEC; after the
    // 30-second window the upgraded bridges hear it and fall back —
    // "assuming that a failure has occurred elsewhere in the network".
    let r = run_transition(TransitionMode::LateDec, 45);
    let upgraded: Vec<_> = r.bridges.iter().filter(|b| b.phase.is_some()).collect();
    assert_eq!(upgraded.len(), 2, "two bridges ran control switchlets");
    for b in &upgraded {
        assert_eq!(
            b.phase,
            Some(Phase::Stable { fallback: true }),
            "{} must fall back on late DEC traffic",
            b.name
        );
        assert!(b.dec_running, "{}: back on the old protocol", b.name);
        assert!(!b.ieee_running, "{}: new protocol stopped", b.name);
    }
    // The non-upgraded bridge just kept running DEC.
    let legacy = r.bridges.iter().find(|b| b.phase.is_none()).unwrap();
    assert!(legacy.dec_running);
    assert!(!legacy.ieee_running);
}

#[test]
fn fallback_is_stable_no_retrigger() {
    // "Once this fallback has occurred, the network is considered stable
    // and no further transition will occur without human intervention."
    // After a FailTests fallback, IEEE BPDUs keep arriving (none — the
    // defective engines are stopped everywhere), but re-run longer to be
    // sure the phase does not leave Stable.
    let r = run_transition(TransitionMode::FailTests, 46);
    for b in &r.bridges {
        assert!(matches!(b.phase, Some(Phase::Stable { fallback: true })));
    }
}

#[test]
fn transition_is_deterministic() {
    let a = run_transition(TransitionMode::Pass, 99);
    let b = run_transition(TransitionMode::Pass, 99);
    let ev_a: Vec<Vec<(f64, String)>> = a.bridges.iter().map(|x| x.events.clone()).collect();
    let ev_b: Vec<Vec<(f64, String)>> = b.bridges.iter().map(|x| x.events.clone()).collect();
    assert_eq!(ev_a, ev_b, "same seed, same transition timeline");
}
