//! Cross-crate property tests: end-to-end invariants under randomized
//! inputs.

use ab_bench::{run_ping, run_ttcp, Forwarder};
use ab_scenario::{self as scenario, host_ip, host_mac};
use active_bridge::{BridgeConfig, BridgeNode};
use hostsim::{HostConfig, HostCostModel, HostNode};
use netsim::{Ctx, FaultConfig, FrameBuf, Node, PortId, SegmentConfig, SimTime, TimerToken, World};
use proptest::prelude::*;

/// Sends one prebuilt frame per timer tick, retaining its own handle.
struct SharingSender {
    frame: FrameBuf,
    count: u32,
    sent: u32,
}

impl Node for SharingSender {
    fn name(&self) -> &str {
        "sharing-sender"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule(netsim::SimDuration::from_us(10), TimerToken(0));
    }
    fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: FrameBuf) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: TimerToken) {
        if self.sent < self.count {
            ctx.send(PortId(0), self.frame.clone());
            self.sent += 1;
            ctx.schedule(netsim::SimDuration::from_us(500), t);
        }
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// Retains every delivered frame buffer.
#[derive(Default)]
struct SharingKeeper {
    got: Vec<FrameBuf>,
}

impl Node for SharingKeeper {
    fn name(&self) -> &str {
        "sharing-keeper"
    }
    fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, frame: FrameBuf) {
        self.got.push(frame);
    }
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero-copy sharing semantics under arbitrary payloads and fault
    /// mixes: the sender-held buffer is never mutated by the simulator;
    /// every listener of one wire frame observes identical bytes (and
    /// shares storage with the capture log entry); a corrupted delivery
    /// differs from the original by exactly one bit and never aliases the
    /// sender's allocation.
    #[test]
    fn frame_sharing_respects_cow_isolation(
        len in 1usize..600,
        fill in any::<u8>(),
        corrupt_one_in in prop::sample::select(vec![0u64, 1, 3]),
        duplicate_one_in in prop::sample::select(vec![0u64, 1, 4]),
        seed in 0u64..500,
        count in 1u32..6,
    ) {
        let original = FrameBuf::from(vec![fill; len]);
        let mut world = World::new(seed);
        world.trace_mut().set_enabled(false);
        let lan = world.add_segment(SegmentConfig {
            fault: FaultConfig { drop_one_in: 0, corrupt_one_in, duplicate_one_in, ..Default::default() },
            capture: true,
            ..Default::default()
        });
        let s = world.add_node(SharingSender { frame: original.clone(), count, sent: 0 });
        world.attach(s, lan);
        let listeners: Vec<_> = (0..2).map(|_| {
            let id = world.add_node(SharingKeeper::default());
            world.attach(id, lan);
            id
        }).collect();
        world.run_until(SimTime::from_ms(50));

        // The sender-held buffer is pristine no matter what the wire did.
        prop_assert!(world.node::<SharingSender>(s).frame == original);
        prop_assert!(original.iter().all(|&b| b == fill));

        let a = &world.node::<SharingKeeper>(listeners[0]).got;
        let b = &world.node::<SharingKeeper>(listeners[1]).got;
        prop_assert_eq!(a.len(), b.len(), "both listeners hear every copy");
        let cap = world.segment(lan).captured();
        for (fa, fb) in a.iter().zip(b.iter()) {
            prop_assert!(fa.shares_storage(fb), "listeners share one buffer");
            let diff: u32 = original.iter().zip(fa.iter()).map(|(x, y)| (x ^ y).count_ones()).sum();
            if corrupt_one_in == 1 {
                prop_assert_eq!(diff, 1, "always-corrupt flips exactly one bit");
                prop_assert!(!fa.shares_storage(&original), "corruption detaches via CoW");
            } else if corrupt_one_in == 0 {
                prop_assert_eq!(diff, 0, "clean wire delivers identical bytes");
                prop_assert!(fa.shares_storage(&original), "clean delivery never copies");
            } else {
                prop_assert!(diff <= 1, "at most one corrupted bit per frame");
            }
            // Every delivered copy aliases some capture entry (capture
            // records the post-fault wire frame).
            prop_assert!(
                cap.iter().any(|c| fa.shares_storage(&c.data)),
                "delivered frames share storage with the capture log"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every ping of any size (including fragmented ones) gets a reply
    /// through the bridge.
    #[test]
    fn any_size_ping_survives_the_bridge(size in 0usize..4096, seed in 0u64..1000) {
        let s = run_ping(Forwarder::Bridge, size, 3, seed);
        prop_assert_eq!(s.received, 3);
    }

    /// ttcp transfers of any write size complete and deliver every byte.
    #[test]
    fn any_write_size_ttcp_completes(
        write in prop::sample::select(vec![32usize, 100, 512, 700, 1024, 1462, 2048, 8192]),
        total in 20_000u64..200_000,
    ) {
        let s = run_ttcp(Forwarder::Bridge, write, total, 5);
        prop_assert!(s.completed, "write={} total={}", write, total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random bridged topologies, the converged spanning tree is
    /// loop-free and spans every reachable segment: treating segments as
    /// vertices and each bridge's forwarding port-pairs as edges, the
    /// active topology has no cycle and connects everything the physical
    /// topology connects.
    #[test]
    fn stp_converges_to_a_spanning_tree(
        n_segs in 2usize..6,
        extra_links in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let mut world = World::new(seed);
        world.trace_mut().set_enabled(false);
        let segs = scenario::lans(&mut world, n_segs);
        // A connected backbone: bridge i joins segment i and i+1 ...
        let mut edges: Vec<(usize, usize)> = (0..n_segs - 1).map(|i| (i, i + 1)).collect();
        // ... plus random extra links (creating loops).
        let mut rng = netsim::Xoshiro::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..extra_links {
            let a = rng.range(n_segs as u64) as usize;
            let b = rng.range(n_segs as u64) as usize;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        let bridges: Vec<_> = edges
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                scenario::bridge(
                    &mut world,
                    i as u32,
                    &[segs[a], segs[b]],
                    BridgeConfig::default(),
                    &["bridge_learning", "stp_ieee"],
                )
            })
            .collect();
        // Converge: max_age + 2 x forward_delay + margin.
        world.run_until(SimTime::from_secs(60));

        // Build the active-forwarding edge list.
        let mut active: Vec<(usize, usize)> = Vec::new();
        for (i, &b) in bridges.iter().enumerate() {
            let plane = world.node::<BridgeNode>(b).plane();
            let fwd0 = plane.port_flags(0).forward;
            let fwd1 = plane.port_flags(1).forward;
            if fwd0 && fwd1 {
                active.push(edges[i]);
            }
        }
        // Union-find over segments.
        let mut parent: Vec<usize> = (0..n_segs).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        let mut cycle = false;
        for &(a, b) in &active {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra == rb {
                cycle = true;
            } else {
                parent[ra] = rb;
            }
        }
        prop_assert!(!cycle, "active topology has a loop: {:?}", active);
        // Connectivity: physical graph is connected by construction, so
        // the active graph must connect all segments too.
        let root = find(&mut parent, 0);
        for s in 1..n_segs {
            prop_assert_eq!(
                find(&mut parent, s),
                root,
                "segment {} disconnected; active: {:?}",
                s,
                active
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The bridge never crashes on arbitrary garbage frames delivered to
    /// its loader address, and never loads anything from them.
    #[test]
    fn loader_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 14..200)) {
        let mut world = World::new(1);
        let segs = scenario::lans(&mut world, 2);
        let bridge = scenario::bridge(
            &mut world,
            0,
            &segs,
            BridgeConfig::default(),
            &["bridge_learning"],
        );
        let host = world.add_node(HostNode::new(
            "fuzzer",
            HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
            vec![],
        ));
        world.attach(host, segs[0]);
        world.run_until(SimTime::from_ms(10));
        // Hand-craft a frame to the bridge's station address with random
        // contents after the header.
        let mut frame = Vec::new();
        frame.extend_from_slice(&scenario::bridge_mac(0).octets());
        frame.extend_from_slice(&host_mac(1).octets());
        frame.extend_from_slice(&bytes[..2]);
        frame.extend_from_slice(&bytes[2..]);
        frame.resize(frame.len().max(60), 0);
        if frame.len() > 1514 {
            frame.truncate(1514);
        }
        world.with_ctx::<HostNode, _>(host, |h, ctx| {
            h.core.send_raw(ctx, netsim::PortId(0), bytes::Bytes::from(frame));
        });
        world.run_until(SimTime::from_ms(50));
        let stats = &world.node::<BridgeNode>(bridge).plane().stats;
        // Only the two boot images (netloader + learning); the garbage
        // loaded nothing.
        prop_assert_eq!(stats.images_loaded, 2, "only the boot images");
    }
}
