//! The multi-core execution plane acceptance suite: a parallel sweep is
//! byte-identical to the sequential one (reports *and* world trace
//! digests), worker-reused worlds behave exactly like fresh ones, the
//! pool never loses or duplicates a job, and the metro tier actually
//! fields its ≥ 1024 hosts.

use ab_scenario::runner::{self, Scenario};
use ab_scenario::sweep::{run_sweep_jobs, SweepSpec};
use ab_scenario::topo::TopologyShape;
use ab_scenario::workload::BatteryKind;
use proptest::prelude::*;

/// The committed sweep (all committed shapes × batteries) rendered at 1,
/// 2 and 4 jobs: every report must be byte-identical — parallelism is
/// not allowed to be observable in the output.
#[test]
fn parallel_sweep_reports_are_byte_identical() {
    let spec = SweepSpec::default_sweep(2100);
    let serial = run_sweep_jobs(&spec, 1);
    assert!(serial.passed(), "the committed sweep must pass");
    let serial_bytes = serial.to_json().render();
    for jobs in [2, 4] {
        let parallel = run_sweep_jobs(&spec, jobs);
        assert_eq!(
            serial_bytes,
            parallel.to_json().render(),
            "a {jobs}-job sweep must render the exact bytes of the 1-job sweep"
        );
    }
}

/// Determinism below the report layer: every scenario's full world
/// record (trace entries, counters, frame totals — FNV-1a digested)
/// agrees between a sequential run and a 4-worker pool run.
#[test]
fn trace_digests_match_across_worker_counts() {
    // Every committed shape × battery, thinned to every other scenario
    // (digest runs keep the trace on, so they cost more than report
    // runs).
    let specs: Vec<Scenario> = SweepSpec::default_sweep(7001)
        .scenarios()
        .into_iter()
        .step_by(2)
        .collect();
    let serial: Vec<(String, u64)> = specs
        .iter()
        .map(|sc| {
            let (report, digest) = runner::run_traced(sc);
            (report.to_json().render(), digest)
        })
        .collect();
    let parallel = ab_scenario::run_jobs(specs, 4, |sc| {
        let (report, digest) = runner::run_traced(&sc);
        (report.to_json().render(), digest)
    });
    assert_eq!(
        serial, parallel,
        "pooled runs must replay the exact world record"
    );
}

/// `World::reset` is behaviorally invisible: running scenarios through
/// one progressively dirtier world produces the same bytes as fresh
/// worlds.
#[test]
fn reused_world_reports_match_fresh_worlds() {
    let mut world = netsim::World::new(999);
    for (i, sc) in SweepSpec::default_sweep(4200)
        .scenarios()
        .iter()
        .step_by(3)
        .enumerate()
    {
        let fresh = runner::run(sc);
        let reused = runner::run_in(&mut world, sc);
        assert_eq!(
            fresh.to_json().render(),
            reused.to_json().render(),
            "scenario #{i} ({}) diverged in a reused world",
            sc.name
        );
    }
}

/// The metro tier at full scale: ≥ 1024 crowd hosts all hear traffic,
/// every invariant passes, and the flood blast actually fans out to the
/// whole population.
#[test]
fn metro_large_fields_a_thousand_hosts_and_passes() {
    let sc = Scenario::new(TopologyShape::metro_large(), BatteryKind::Metro, 5);
    let report = runner::run(&sc);
    assert!(report.passed(), "{}", report.to_json().render_pretty());
    let crowd_hosts: u64 = report
        .apps
        .iter()
        .filter(|a| a.label == "crowd")
        .map(|a| {
            a.detail
                .iter()
                .find(|(k, _)| *k == "hosts")
                .map(|&(_, v)| v)
                .unwrap_or(0)
        })
        .sum();
    assert!(
        crowd_hosts >= 1024,
        "metro/large must field ≥ 1024 crowd hosts, got {crowd_hosts}"
    );
    // The flood blast's frames reach the whole population: deliveries
    // dwarf wire frames.
    let delivered = report.world.frames_delivered;
    let wire: u64 = report
        .world
        .segments
        .iter()
        .map(|s| s.counters.tx_frames)
        .sum();
    assert!(
        delivered > 10 * wire,
        "high-degree fan-out expected: {delivered} deliveries over {wire} wire frames"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pool drains arbitrary job sets without loss, duplication or
    /// reordering, at any worker count (including oversubscription).
    #[test]
    fn pool_drains_arbitrary_job_sets(
        jobs in 1usize..9,
        specs in proptest::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let expect: Vec<u64> = specs.iter().map(|x| x.wrapping_mul(2654435761) ^ 0xABCD).collect();
        let out = ab_scenario::run_jobs(specs, jobs, |x| x.wrapping_mul(2654435761) ^ 0xABCD);
        prop_assert_eq!(out, expect);
    }
}
