//! Quickstart: build an extended LAN, watch the bridge come alive as
//! switchlets load, and ping across it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ab_bench::{run_until_done, uploader};
use ab_scenario::{self as scenario, host_ip, host_mac};
use active_bridge::{BridgeConfig, BridgeNode};
use hostsim::{App, HostConfig, HostCostModel, HostNode, PingApp};
use netsim::{PortId, SimDuration, SimTime, World};
use switchlet::ModuleBuilder;

fn main() {
    // Two LANs joined by an active bridge that boots with *only* its
    // network loader — it cannot forward anything yet.
    let mut world = World::new(42);
    let segs = scenario::lans(&mut world, 2);
    let bridge = scenario::bridge(&mut world, 0, &segs, BridgeConfig::default(), &[]);

    let pinger = world.add_node(HostNode::new(
        "hostA",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::pc_1997()),
        vec![PingApp::new(
            PortId(0),
            host_ip(2),
            5,
            56,
            SimDuration::from_ms(250),
            7,
        )],
    ));
    world.attach(pinger, segs[0]);
    let replier = world.add_node(HostNode::new(
        "hostB",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::pc_1997()),
        vec![],
    ));
    world.attach(replier, segs[1]);

    world.run_until(SimTime::from_secs(2));
    {
        let hp = world.node::<HostNode>(pinger);
        let App::Ping(p) = hp.app(0) else {
            unreachable!()
        };
        println!(
            "t={:>6}: bare loader — {} of {} pings answered (no switching function)",
            world.now(),
            p.received,
            p.sent
        );
    }

    // Ship the self-learning bridge switchlet over TFTP, through the
    // same LAN the pings are dying on.
    println!(
        "t={:>6}: uploading bridge_learning switchlet over TFTP ...",
        world.now()
    );
    let image = ModuleBuilder::new("bridge_learning").build().encode();
    let up = world.add_node(HostNode::new(
        "uploader",
        HostConfig::simple(host_mac(9), host_ip(9), HostCostModel::pc_1997()),
        vec![uploader(image, "learning.swl")],
    ));
    world.attach(up, segs[0]);
    let ok = ab_bench::upload_and_load(&mut world, up, 0, SimTime::from_secs(20));
    println!(
        "t={:>6}: upload {}; bridge runs: {:?}",
        world.now(),
        if ok { "complete" } else { "FAILED" },
        ["netloader", "bridge_learning"]
            .iter()
            .filter(|n| world.node::<BridgeNode>(bridge).plane().is_running(n))
            .collect::<Vec<_>>()
    );

    // Fresh ping train: the extended LAN now works.
    let pinger2 = world.add_node(HostNode::new(
        "hostC",
        HostConfig::simple(host_mac(3), host_ip(3), HostCostModel::pc_1997()),
        vec![PingApp::new(
            PortId(0),
            host_ip(2),
            5,
            56,
            SimDuration::from_ms(250),
            8,
        )],
    ));
    world.attach(pinger2, segs[0]);
    let horizon = world.now() + SimDuration::from_secs(5);
    run_until_done(&mut world, horizon, |w| {
        let App::Ping(p) = w.node::<HostNode>(pinger2).app(0) else {
            unreachable!()
        };
        p.done_at.is_some()
    });
    let hp = world.node::<HostNode>(pinger2);
    let App::Ping(p) = hp.app(0) else {
        unreachable!()
    };
    println!(
        "t={:>6}: after loading — {} of {} pings answered, avg RTT {:.3} ms",
        world.now(),
        p.received,
        p.sent,
        p.avg_rtt().map(|d| d.as_millis_f64()).unwrap_or(f64::NAN)
    );
    let plane = world.node::<BridgeNode>(bridge).plane();
    println!(
        "bridge learned {} stations; stats: directed={} flooded={} to_loader={}",
        plane.learn.len(),
        plane.stats.directed,
        plane.stats.flooded,
        plane.stats.to_loader
    );
}
