//! The self-learning extended LAN: three LANs on one bridge; watch the
//! learning table cut flooding to the bystander segment.
//!
//! ```sh
//! cargo run --example learning_elan
//! ```

use ab_scenario::{self as scenario, host_ip, host_mac};
use active_bridge::{BridgeConfig, BridgeNode};
use hostsim::{BlastApp, HostConfig, HostCostModel, HostNode};
use netsim::{PortId, SimDuration, SimTime, World};

fn main() {
    let mut world = World::new(7);
    let segs = scenario::lans(&mut world, 3);
    let bridge = scenario::bridge(
        &mut world,
        0,
        &segs,
        BridgeConfig::default(),
        &["bridge_dumb", "bridge_learning"],
    );

    // Host 2 announces itself once, then host 1 streams to it.
    let h2 = world.add_node(HostNode::new(
        "host2",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(1),
            64,
            1,
            SimDuration::from_ms(1),
        )],
    ));
    world.attach(h2, segs[1]);
    let h1 = world.add_node(HostNode::new(
        "host1",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(2),
            512,
            200,
            SimDuration::from_ms(2),
        )],
    ));
    world.attach(h1, segs[0]);
    let bystander = world.add_node(HostNode::new(
        "bystander",
        HostConfig::simple(host_mac(3), host_ip(3), HostCostModel::FREE),
        vec![],
    ));
    world.attach(bystander, segs[2]);

    world.run_until(SimTime::from_secs(2));

    let plane = world.node::<BridgeNode>(bridge).plane();
    println!("switching function: {:?}", plane.data_plane());
    println!("learning table ({} entries):", plane.learn.len());
    let mut entries: Vec<String> = plane
        .learn
        .entries()
        .map(|(mac, (port, seen))| format!("  {mac} -> {port} (last seen {seen})"))
        .collect();
    entries.sort();
    for e in entries {
        println!("{e}");
    }
    println!(
        "forwarding: directed={} flooded={} filtered={}",
        plane.stats.directed, plane.stats.flooded, plane.stats.filtered
    );
    println!(
        "bystander LAN heard {} frames (of {} sent) — learning keeps it quiet",
        world.segment(segs[2]).counters().deliveries,
        200
    );
    println!(
        "host2 received {} frames",
        world.node::<HostNode>(h2).core.exp_frames_rx
    );
    let _ = h1;
}
