//! Run the default scenario sweep — six parametric topology shapes ×
//! three workload batteries — and print the machine-readable JSON
//! report (per-segment wire counters, per-bridge forwarding counters,
//! app results, invariant verdicts, summary score).
//!
//! ```sh
//! cargo run --example scenario_sweep              # full JSON on stdout
//! cargo run --example scenario_sweep -- --summary # verdict lines only
//! ```
//!
//! CI runs this and uploads the JSON as a workflow artifact.

use ab_scenario::sweep::{run_sweep, SweepSpec};

fn main() {
    let summary_only = std::env::args().any(|a| a == "--summary");
    let report = run_sweep(&SweepSpec::default_sweep(42));
    if summary_only {
        for r in &report.runs {
            let (p, f, w) = r.verdict_counts();
            eprintln!(
                "{:<26} pass={} ({p} pass / {f} fail / {w} waived)",
                r.scenario.name,
                r.passed()
            );
        }
        println!(
            "{}",
            report.to_json().get("summary").unwrap().render_pretty()
        );
    } else {
        print!("{}", report.to_json().render_pretty());
    }
    assert!(
        report.passed(),
        "the default sweep must pass every invariant"
    );
}
