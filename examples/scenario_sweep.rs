//! Run the default scenario sweep — seven parametric topology shapes ×
//! four workload batteries — and print the machine-readable JSON
//! report (per-segment wire counters, per-bridge forwarding counters,
//! app results, invariant verdicts, summary score).
//!
//! ```sh
//! cargo run --example scenario_sweep              # full JSON on stdout
//! cargo run --example scenario_sweep -- --summary # verdict lines only
//! cargo run --example scenario_sweep -- --jobs 4  # 4 worker threads
//! ```
//!
//! `--jobs N` runs the sweep through the `ab_scenario::exec` worker pool
//! (default: available parallelism; `auto`/`0` mean the same, `1` uses
//! no thread machinery at all). The report bytes are identical for
//! every job count — CI renders the sweep at `--jobs 1,2,4`, diffs the
//! three outputs, and uploads one as the workflow artifact.

use ab_scenario::sweep::{run_sweep_jobs, SweepSpec};

fn main() {
    let mut summary_only = false;
    let mut jobs = ab_scenario::default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--summary" => summary_only = true,
            "--jobs" => {
                let v = args.next().expect("--jobs needs a count");
                jobs =
                    ab_scenario::parse_jobs(&v).expect("--jobs needs a positive integer or 'auto'");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let report = run_sweep_jobs(&SweepSpec::default_sweep(42), jobs);
    if summary_only {
        for r in &report.runs {
            let (p, f, w) = r.verdict_counts();
            eprintln!(
                "{:<26} pass={} ({p} pass / {f} fail / {w} waived)",
                r.scenario.name,
                r.passed()
            );
        }
        println!(
            "{}",
            report.to_json().get("summary").unwrap().render_pretty()
        );
    } else {
        print!("{}", report.to_json().render_pretty());
    }
    assert!(
        report.passed(),
        "the default sweep must pass every invariant"
    );
}
