//! The paper's headline demonstration (Section 5.4, Table 1): upgrade a
//! running network from the "old" DEC-style spanning tree to the "new"
//! IEEE 802.1D on the fly — then show both automatic fallbacks.
//!
//! ```sh
//! cargo run --example protocol_upgrade
//! ```

use ab_bench::{run_transition, TransitionMode};

fn show(title: &str, mode: TransitionMode) {
    println!("=== {title} ===");
    let report = run_transition(mode, 42);
    println!("(IEEE BPDU injected at t={:.1}s)", report.injected_at_s);
    for b in &report.bridges {
        println!("{}:", b.name);
        if b.events.is_empty() {
            println!("  (no control switchlet — never upgraded)");
        }
        for (t, what) in &b.events {
            println!("  t={t:>10.4}s  {what}");
        }
        println!(
            "  final: IEEE {}, DEC {}{}",
            if b.ieee_running { "running" } else { "stopped" },
            if b.dec_running { "running" } else { "stopped" },
            match &b.phase {
                Some(p) => format!(", control {p:?}"),
                None => String::new(),
            }
        );
    }
    println!();
}

fn main() {
    show(
        "Upgrade succeeds: tests pass, control terminates",
        TransitionMode::Pass,
    );
    show(
        "New protocol is buggy (inverted election): tests fail, fall back",
        TransitionMode::FailTests,
    );
    show(
        "One bridge never upgrades: late DEC packets force fallback",
        TransitionMode::LateDec,
    );
}
