//! Why bridges need spanning trees (paper Section 4): build a loop, drop
//! in one broadcast frame, and watch it circulate forever — then load the
//! spanning-tree switchlet and watch the loop die.
//!
//! ```sh
//! cargo run --example broadcast_storm
//! ```

use ab_scenario::{self as scenario, host_ip, host_mac};
use active_bridge::{BridgeConfig, BridgeNode};
use ether::MacAddr;
use hostsim::{BlastApp, HostConfig, HostCostModel, HostNode};
use netsim::{PortId, SimDuration, SimTime, World};

fn run(with_stp: bool) -> (u64, usize) {
    let mut world = World::new(5);
    let segs = scenario::lans(&mut world, 2);
    let boot: &[&str] = if with_stp {
        &["bridge_learning", "stp_ieee"]
    } else {
        &["bridge_learning"]
    };
    // Two bridges in parallel between the same two LANs: a loop.
    let bridges: Vec<_> = (0..2)
        .map(|i| scenario::bridge(&mut world, i, &segs, BridgeConfig::default(), boot))
        .collect();
    // Give STP time to converge (or not, without it).
    world.run_until(SimTime::from_secs(35));
    let baseline =
        world.segment(segs[0]).counters().tx_frames + world.segment(segs[1]).counters().tx_frames;

    // One single broadcast frame.
    let h = world.add_node(HostNode::new(
        "host",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            MacAddr::BROADCAST,
            64,
            1,
            SimDuration::from_ms(1),
        )],
    ));
    world.attach(h, segs[0]);
    world.run_until(SimTime::from_secs(36));
    let after =
        world.segment(segs[0]).counters().tx_frames + world.segment(segs[1]).counters().tx_frames;

    let blocked: usize = bridges
        .iter()
        .map(|&b| {
            world
                .node::<BridgeNode>(b)
                .plane()
                .flags()
                .iter()
                .filter(|f| !f.forward)
                .count()
        })
        .sum();
    (after - baseline, blocked)
}

fn main() {
    println!("two bridges in parallel between two LANs = a forwarding loop\n");
    let (frames, blocked) = run(false);
    println!(
        "without STP: ONE broadcast became {frames} wire frames in 1 s \
         (still circulating; {blocked} ports blocked)"
    );
    let (frames, blocked) = run(true);
    println!(
        "with STP:    the same broadcast produced {frames} wire frames \
         ({blocked} port blocked — loop broken)"
    );
    println!(
        "\nThe paper: \"a loop can cause unbounded growth in the number of\n\
         packets on the network leading to network collapse\" — hence the\n\
         spanning-tree switchlet."
    );
}
