//! The Section 7.5 agility measurement: a probe with two NICs injects an
//! 802.1D BPDU on eth0 and measures (a) how long until the new protocol
//! reaches eth1 and (b) how long until data flows again.
//!
//! Paper: "the average start to IEEE time measured was 0.056 seconds, and
//! the average start to received ping time was 30.1 seconds."
//!
//! ```sh
//! cargo run --example ring_agility
//! ```

use ab_bench::run_agility;

fn main() {
    println!("ring of 3 active bridges between probe eth0 and eth1");
    println!("protocol: DEC-style running, 802.1D dormant, control armed\n");
    for seed in [1u64, 2, 3] {
        let a = run_agility(seed);
        println!(
            "run {}: start->IEEE {:>8.4} s   start->ping {:>7.3} s   ({} pings sent)",
            seed,
            a.to_ieee_s.unwrap_or(f64::NAN),
            a.to_ping_s.unwrap_or(f64::NAN),
            a.pings_sent
        );
    }
    println!(
        "\npaper:       start->IEEE   0.056 s   start->ping  30.1   s\n\
         The switch-over is far faster than the protocol's own forward-delay\n\
         timers (2 x 15 s), which govern when frames forward again."
    );
}
