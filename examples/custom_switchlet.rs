//! Author a brand-new switchlet in bytecode, ship it over the network
//! into a *running* bridge, and watch it take effect — plus what happens
//! when a switchlet tries to name a thinned-away host function.
//!
//! The custom switchlet is a MAC filter: it drops every frame from one
//! blocked source address and floods the rest (a tiny "firewall"
//! extension the original bridge authors never anticipated — the point
//! of active networking).
//!
//! ```sh
//! cargo run --example custom_switchlet
//! ```

use ab_bench::{upload_and_load, uploader};
use ab_scenario::{self as scenario, host_ip, host_mac};
use active_bridge::hostmods::handler_ty;
use active_bridge::{BridgeConfig, BridgeNode};
use hostsim::{BlastApp, HostConfig, HostCostModel, HostNode};
use netsim::{PortId, SimDuration, SimTime, World};
use switchlet::{ModuleBuilder, Op, Ty};

/// Build the MAC-filter switchlet: drop frames whose 6-byte source
/// address (frame bytes 6..12) equals `blocked`, flood everything else.
fn build_filter(blocked: ether::MacAddr) -> Vec<u8> {
    let mut mb = ModuleBuilder::new("mac_filter");
    let oport = Ty::named("oport");
    let i_num = mb.import("unixnet", "num_ports", Ty::func(vec![], Ty::Int));
    let i_bind = mb.import(
        "unixnet",
        "bind_out",
        Ty::func(vec![Ty::Int], oport.clone()),
    );
    let i_send = mb.import(
        "unixnet",
        "send_pkt_out",
        Ty::func(vec![oport, Ty::Str], Ty::Int),
    );
    let i_reg = mb.import(
        "func",
        "register_handler",
        Ty::func(vec![Ty::Str, handler_ty()], Ty::Unit),
    );
    let i_bump = mb.import(
        "bridgectl",
        "counter_bump",
        Ty::func(vec![Ty::Str, Ty::Int], Ty::Unit),
    );
    let i_log = mb.import("log", "msg", Ty::func(vec![Ty::Str], Ty::Unit));

    let blocked_str = mb.intern_str(&blocked.octets());
    let drop_counter = mb.intern_str(b"mac_filter.dropped");

    // switching(frame, inport)
    let mut f = mb.func("switching", vec![Ty::Str, Ty::Int], Ty::Unit);
    let n = f.local(Ty::Int);
    let p = f.local(Ty::Int);
    // if frame[6..12] == blocked { counter++; return }
    f.op(Op::LocalGet(0))
        .op(Op::ConstInt(6))
        .op(Op::ConstInt(6))
        .op(Op::StrSlice);
    f.op(Op::ConstStr(blocked_str)).op(Op::Eq);
    let pass = f.new_label();
    f.br_if_not(pass);
    f.op(Op::ConstStr(drop_counter))
        .op(Op::ConstInt(1))
        .op(Op::CallImport(i_bump))
        .op(Op::Pop);
    f.op(Op::ConstUnit).op(Op::Return);
    // flood loop
    f.place(pass);
    f.op(Op::CallImport(i_num)).op(Op::LocalSet(n));
    f.op(Op::ConstInt(0)).op(Op::LocalSet(p));
    let head = f.new_label();
    let next = f.new_label();
    let exit = f.new_label();
    f.place(head);
    f.op(Op::LocalGet(p)).op(Op::LocalGet(n)).op(Op::Ge);
    f.br_if(exit);
    f.op(Op::LocalGet(p)).op(Op::LocalGet(1)).op(Op::Eq);
    f.br_if(next);
    f.op(Op::LocalGet(p)).op(Op::CallImport(i_bind));
    f.op(Op::LocalGet(0));
    f.op(Op::CallImport(i_send)).op(Op::Pop);
    f.place(next);
    f.op(Op::LocalGet(p))
        .op(Op::ConstInt(1))
        .op(Op::Add)
        .op(Op::LocalSet(p));
    f.jump(head);
    f.place(exit);
    f.op(Op::ConstUnit).op(Op::Return);
    let h = mb.finish(f);
    mb.export("switching", h);

    let banner = mb.intern_str(b"mac filter installed");
    let key = mb.intern_str(b"switching");
    let mut init = mb.func("init", vec![], Ty::Unit);
    init.op(Op::ConstStr(banner))
        .op(Op::CallImport(i_log))
        .op(Op::Pop);
    init.op(Op::ConstStr(key))
        .op(Op::FuncConst(h))
        .op(Op::CallImport(i_reg));
    init.op(Op::Return);
    let i = mb.finish(init);
    mb.set_init(i);
    mb.build().encode()
}

/// A switchlet that tries to call `safeunix.system` — thinned away.
fn build_evil() -> Vec<u8> {
    let mut mb = ModuleBuilder::new("evil");
    let i_sys = mb.import("safeunix", "system", Ty::func(vec![Ty::Str], Ty::Int));
    let cmd = mb.intern_str(b"cat /etc/passwd");
    let mut init = mb.func("init", vec![], Ty::Unit);
    init.op(Op::ConstStr(cmd))
        .op(Op::CallImport(i_sys))
        .op(Op::Pop);
    init.op(Op::ConstUnit).op(Op::Return);
    let i = mb.finish(init);
    mb.set_init(i);
    mb.build().encode()
}

fn main() {
    let mut world = World::new(9);
    let segs = scenario::lans(&mut world, 2);
    let bridge = scenario::bridge(&mut world, 0, &segs, BridgeConfig::default(), &[]);

    // 1. Load our filter switchlet over TFTP.
    let image = build_filter(host_mac(66));
    println!(
        "filter switchlet image: {} bytes (verified bytecode)",
        image.len()
    );
    let up = world.add_node(HostNode::new(
        "uploader",
        HostConfig::simple(host_mac(9), host_ip(9), HostCostModel::pc_1997()),
        vec![uploader(image, "mac_filter.swl")],
    ));
    world.attach(up, segs[0]);
    assert!(upload_and_load(&mut world, up, 0, SimTime::from_secs(20)));
    println!(
        "loaded; data plane: {:?}",
        world.node::<BridgeNode>(bridge).plane().data_plane()
    );

    // 2. Traffic: a good host and a blocked host, plus a sink.
    let sink = world.add_node(HostNode::new(
        "sink",
        HostConfig::simple(host_mac(5), host_ip(5), HostCostModel::FREE),
        vec![],
    ));
    world.attach(sink, segs[1]);
    let good = world.add_node(HostNode::new(
        "good",
        HostConfig::simple(host_mac(4), host_ip(4), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(5),
            100,
            20,
            SimDuration::from_ms(3),
        )],
    ));
    world.attach(good, segs[0]);
    let blocked = world.add_node(HostNode::new(
        "blocked",
        HostConfig::simple(host_mac(66), host_ip(66), HostCostModel::FREE),
        vec![BlastApp::new(
            PortId(0),
            host_mac(5),
            100,
            20,
            SimDuration::from_ms(3),
        )],
    ));
    world.attach(blocked, segs[0]);

    let horizon = world.now() + SimDuration::from_secs(2);
    world.run_until(horizon);
    println!(
        "sink received {} frames (good sent 20, blocked sent 20)",
        world.node::<HostNode>(sink).core.exp_frames_rx
    );
    println!(
        "filter dropped {} frames (counter set by the switchlet itself)",
        world.counters().get("mac_filter.dropped")
    );
    println!(
        "VM executed {} instructions on the data path",
        world.node::<BridgeNode>(bridge).vm_instructions
    );

    // 3. Now the attack: a switchlet importing a thinned-away function.
    println!("\nuploading a switchlet that imports safeunix.system ...");
    let up2 = world.add_node(HostNode::new(
        "attacker",
        HostConfig::simple(host_mac(13), host_ip(13), HostCostModel::pc_1997()),
        vec![uploader(build_evil(), "evil.swl")],
    ));
    world.attach(up2, segs[0]);
    let horizon = world.now() + SimDuration::from_secs(20);
    assert!(upload_and_load(&mut world, up2, 0, horizon));
    let plane = world.node::<BridgeNode>(bridge).plane();
    println!(
        "bridge rejected it at link time (images_rejected={}); `evil` loaded: {}",
        plane.stats.images_rejected,
        plane.is_loaded("evil")
    );
    for entry in world.trace().find("rejected") {
        println!("  trace: {}", entry.msg);
    }
}
