//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build container has no crates.io access, so this crate implements the
//! subset of the `bytes` API the workspace uses: [`Bytes`] (a cheaply
//! clonable, immutable byte buffer) and [`BytesMut`] (a growable buffer that
//! freezes into `Bytes`). Semantics match the real crate for this subset,
//! including zero-copy [`Bytes::slice`] (a subrange shares the parent's
//! allocation); the split/advance machinery is intentionally absent.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
// The workspace simulator is single-threaded, so the shared buffer uses a
// non-atomic refcount. The real `bytes` crate (atomic, `Send + Sync`) is a
// drop-in superset; swapping it back in only widens the contract.
use std::rc::Rc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    /// A view (`off..off + len`) into a refcounted allocation. Clones and
    /// subslices bump the refcount; nothing is ever copied. Backing store
    /// is the `Vec` the caller built, wrapped as-is — freezing a built
    /// buffer into `Bytes` is zero-copy.
    Shared {
        buf: Rc<Vec<u8>>,
        off: usize,
        len: usize,
    },
}

impl Bytes {
    /// An empty `Bytes`.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_shared(Rc::new(data.to_vec()))
    }

    fn from_shared(buf: Rc<Vec<u8>>) -> Self {
        let len = buf.len();
        Bytes(Repr::Shared { buf, off: 0, len })
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns a `Bytes` for the given subrange, sharing the allocation
    /// with `self` (zero-copy, like the real crate).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of bounds for Bytes of length {}",
            self.len()
        );
        match &self.0 {
            Repr::Static(s) => Bytes(Repr::Static(&s[start..end])),
            Repr::Shared { buf, off, .. } => Bytes(Repr::Shared {
                buf: Rc::clone(buf),
                off: off + start,
                len: end - start,
            }),
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Convert into a [`BytesMut`] without copying if this is the only
    /// reference to the full backing storage; otherwise returns `self`
    /// unchanged. Matches `bytes::Bytes::try_into_mut` (1.4+) — the hook
    /// buffer-recycling paths use to reclaim a dead frame's allocation.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        match self.0 {
            Repr::Shared { buf, off, len } if off == 0 && len == buf.len() => {
                match Rc::try_unwrap(buf) {
                    Ok(v) => Ok(BytesMut(v)),
                    Err(buf) => Err(Bytes(Repr::Shared { buf, off, len })),
                }
            }
            repr => Err(Bytes(repr)),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared { buf, off, len } => &buf[*off..off + len],
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // Zero-copy: the vector becomes the shared backing store.
        Bytes::from_shared(Rc::new(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from_shared(Rc::new(b.into_vec()))
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self.as_slice(), f)
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.0.extend_from_slice(extend)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.0.resize(new_len, value)
    }

    pub fn clear(&mut self) {
        self.0.clear()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut(s.to_vec())
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(m: BytesMut) -> Self {
        m.0
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.0.extend(iter)
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(&self.0, f)
    }
}

/// Shared `Debug` body: render as `b"..."` like the real crate.
fn debug_bytes(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        match b {
            b'"' => write!(f, "\\\"")?,
            b'\\' => write!(f, "\\\\")?,
            b'\n' => write!(f, "\\n")?,
            b'\r' => write!(f, "\\r")?,
            b'\t' => write!(f, "\\t")?,
            0x20..=0x7e => write!(f, "{}", b as char)?,
            _ => write!(f, "\\x{b:02x}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.slice(1..), Bytes::from(vec![2, 3]));
    }

    #[test]
    fn slice_shares_the_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        // Zero-copy: the subrange points into the parent's storage.
        assert!(std::ptr::eq(&b[1], &s[0]));
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
        assert!(std::ptr::eq(&b[2], &ss[0]));
        // Static slices subslice without copying too.
        let st = Bytes::from_static(b"hello");
        let sub = st.slice(1..3);
        assert!(std::ptr::eq(&st[1], &sub[0]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let _ = b.slice(1..9);
    }

    #[test]
    fn freeze() {
        let mut m = BytesMut::from(&b"abc"[..]);
        m.extend_from_slice(b"def");
        assert_eq!(&m.freeze()[..], b"abcdef");
    }
}
