//! `proptest::sample` subset: [`select`].

use crate::{Strategy, TestRng};

/// Strategy choosing uniformly from a fixed list.
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}
