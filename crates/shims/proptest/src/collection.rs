//! `proptest::collection` subset: [`vec`].

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's size.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_incl: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_incl: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_incl: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_incl - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
