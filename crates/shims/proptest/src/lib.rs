//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container has no crates.io access, so this crate implements the
//! subset of the proptest API this workspace's property tests use: the
//! [`Strategy`] trait (ranges, `any::<T>()`, `Just`, `prop_map`,
//! `prop::collection::vec`, `prop::sample::select`, `prop_oneof!`), the
//! [`proptest!`]/[`prop_assert*!`] macros, and [`ProptestConfig`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (every
//!   test failure prints the case number and seed) but is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible across machines — in the
//!   spirit of this repo's "pure function of `(topology, seed)`" rule.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;

/// Module alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping is fine at test scale.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a, used to derive a per-test seed from the test function's name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Subset of `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the simulator-heavy suites here
        // want something brisker while still exercising the space.
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Unlike the real crate there is no value tree: `new_value` draws a fresh
/// value directly (no shrinking).
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Uniform choice between boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// String literals act as regex strategies, like the real crate. This shim
/// supports the subset the workspace's tests use: literal characters,
/// character classes (`[a-z0-9_.]`, with ranges), and the repetitions
/// `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8).
/// Regex syntax outside that subset (alternation, groups, wildcards,
/// negated classes, anchors) panics instead of silently generating from
/// the wrong input space.
impl Strategy for str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal.
            let atom: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in regex strategy {self:?}"))
                    + i;
                assert!(
                    chars.get(i + 1) != Some(&'^'),
                    "negated character class in regex strategy {self:?} is not supported by the \
                     proptest shim (crates/shims/proptest); extend it or avoid [^...]"
                );
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).unwrap());
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                assert!(
                    !matches!(chars[i], '.' | '|' | '(' | ')' | '^' | '$'),
                    "regex metacharacter {:?} in strategy {self:?} is not supported by the \
                     proptest shim (crates/shims/proptest); escape it or extend the shim",
                    chars[i]
                );
                i += 1;
                vec![chars[i - 1]]
            };
            assert!(
                !atom.is_empty(),
                "empty character class in regex strategy {self:?}"
            );
            // Parse an optional repetition suffix.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {self:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repetition"),
                        n.trim().parse::<usize>().expect("bad repetition"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repetition");
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let suffix = chars[i];
                i += 1;
                match suffix {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom[rng.below(atom.len() as u64) as usize]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        self.as_str().new_value(rng)
    }
}

// ---------------------------------------------------------------------------
// Arbitrary + any
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy producing any value of `T` (uniform over the representation).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Test failure plumbing
// ---------------------------------------------------------------------------

/// Matches `proptest::test_runner::TestCaseError` closely enough for the
/// macros below.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Discards the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The property-test entry point. Supports the same surface syntax as the
/// real crate for plain `arg in strategy` parameter lists and an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::seed_from_u64(seed);
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while passed < config.cases {
                case += 1;
                if rejected > config.cases.saturating_mul(16) {
                    panic!(
                        "proptest {}: too many rejected cases ({} rejects for {} passes)",
                        stringify!($name), rejected, passed
                    );
                }
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                let result: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match result {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed at case {} (seed {:#x}):\n{}",
                        stringify!($name), case, seed, msg
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 3u8..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((3..=5).contains(&y));
        }

        #[test]
        fn map_and_vec(v in prop::collection::vec(any::<u8>(), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }

        #[test]
        fn oneof_and_select(
            k in prop_oneof![Just(1usize), (5usize..7).prop_map(|v| v)],
            s in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!(k == 1 || k == 5 || k == 6);
            prop_assert!(s == "a" || s == "b");
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::seed_from_u64(7);
        let mut b = crate::TestRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
