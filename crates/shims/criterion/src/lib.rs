//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build container has no crates.io access, so this crate implements the
//! subset of the Criterion API the `ab_bench` benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. It measures a simple
//! mean over a fixed sample count and prints one line per benchmark — no
//! statistics, plots, or HTML reports.
//!
//! Like the real crate under `cargo test`/`--test`, each benchmark runs a
//! single iteration in test mode so suites stay fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: false,
            filters: Vec::new(),
        }
    }
}

impl Criterion {
    /// Mirror of the real crate's CLI handling: `--test` (passed by
    /// `cargo test --benches`) switches to one-iteration smoke mode, and
    /// positional arguments act as substring filters on benchmark ids
    /// (`cargo bench -- fig09` runs only matching benchmarks). Other
    /// flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.test_mode = true;
            } else if !arg.starts_with('-') {
                self.filters.push(arg);
            }
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.matches(&id) {
            run_bench(&id, self.sample_size, self.test_mode, f);
        }
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let id = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&id) {
            run_bench(&id, samples, self.criterion.test_mode, f);
        }
        self
    }

    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, samples: usize, test_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {id} ... ok (1 iteration, test mode)");
        return;
    }
    // Warm-up: one untimed iteration.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean = total / samples as u32;
    println!("{id:<50} mean {mean:>12.3?}  best {best:>12.3?}  ({samples} samples)");
}

/// Expands to a function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs() {
        let mut c = Criterion::default();
        c.sample_size(2)
            .bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }
}
