//! Property tests for the protocol codecs and the TcpLite state
//! machines.

use std::net::Ipv4Addr;

use netstack::tcplite::{
    pattern_byte, ReceiverConfig, RecvAction, SenderConfig, TcpReceiver, TcpSender,
};
use netstack::{checksum, Echo, EchoKind, TftpPacket, UdpDatagram};
use proptest::prelude::*;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

proptest! {
    /// UDP emit→parse is the identity; verification is tied to the
    /// pseudo-header.
    #[test]
    fn udp_roundtrip(
        src in arb_ip(),
        dst in arb_ip(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let wire = netstack::udp::emit(src, sp, dst, dp, &payload);
        let parsed = UdpDatagram::parse(&wire, src, dst).unwrap();
        prop_assert_eq!(parsed.src_port(), sp);
        prop_assert_eq!(parsed.dst_port(), dp);
        prop_assert_eq!(parsed.payload(), &payload[..]);
    }

    /// IPv4 emit→parse is the identity for datagrams within the MTU.
    #[test]
    fn ipv4_roundtrip(
        src in arb_ip(),
        dst in arb_ip(),
        proto in any::<u8>(),
        ident in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..1400),
    ) {
        let wire = netstack::ipv4::emit(
            src, dst, netstack::ipv4::Protocol(proto), ident, 64, &payload, 1500,
        ).unwrap();
        let parsed = netstack::Ipv4Packet::parse(&wire).unwrap();
        prop_assert_eq!(parsed.src(), src);
        prop_assert_eq!(parsed.dst(), dst);
        prop_assert_eq!(parsed.protocol().0, proto);
        prop_assert_eq!(parsed.payload(), &payload[..]);
    }

    /// Fragmentation → reassembly is the identity for any payload size.
    #[test]
    fn fragmentation_roundtrip(
        src in arb_ip(),
        dst in arb_ip(),
        payload in prop::collection::vec(any::<u8>(), 0..6000),
    ) {
        let frags = netstack::ipv4::emit_fragments(
            src, dst, netstack::ipv4::Protocol::ICMP, 7, 64, &payload, 1500,
        );
        let mut r = netstack::ipv4::Reassembler::new();
        let mut out = None;
        for f in &frags {
            prop_assert!(f.len() <= 1500);
            let p = netstack::ipv4::FragPacket::parse(f).unwrap();
            if let Some(done) = r.push(&p) {
                out = Some(done);
            }
        }
        prop_assert_eq!(out.unwrap(), payload);
    }

    /// ICMP echo emit→parse→reply preserves ident/seq/payload.
    #[test]
    fn icmp_roundtrip(
        ident in any::<u16>(),
        seq in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let req = Echo::emit(EchoKind::Request, ident, seq, &payload);
        let parsed = Echo::parse(&req).unwrap();
        prop_assert_eq!(parsed.ident, ident);
        prop_assert_eq!(parsed.seq, seq);
        let rep = parsed.reply();
        let parsed_rep = Echo::parse(&rep).unwrap();
        prop_assert_eq!(parsed_rep.kind, EchoKind::Reply);
        prop_assert_eq!(parsed_rep.payload, &payload[..]);
    }

    /// TFTP packet emit→parse is the identity (NUL-free names).
    #[test]
    fn tftp_roundtrip(
        name in "[a-zA-Z0-9_.]{1,32}",
        block in any::<u16>(),
        data in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let pkts = vec![
            TftpPacket::Wrq { filename: &name, mode: "octet" },
            TftpPacket::Data { block, data: &data },
            TftpPacket::Ack { block },
        ];
        for p in &pkts {
            let wire = p.emit();
            let parsed = TftpPacket::parse(&wire);
            prop_assert_eq!(parsed.as_ref(), Some(p));
        }
    }

    /// Checksum: any single-bit flip is detected. (The checksum field
    /// must be 16-bit aligned, as in every real header, so the covered
    /// region is padded to even length.)
    #[test]
    fn checksum_detects_bit_flips(
        data in prop::collection::vec(any::<u8>(), 2..256),
        bit in 0usize..2048,
    ) {
        let mut pkt = data.clone();
        if pkt.len() % 2 != 0 {
            pkt.push(0);
        }
        pkt.extend_from_slice(&[0, 0]);
        let c = checksum(&pkt);
        let n = pkt.len();
        pkt[n - 2..].copy_from_slice(&c.to_be_bytes());
        prop_assert!(netstack::checksum::verify(&pkt));
        let idx = (bit / 8) % (n - 2);
        pkt[idx] ^= 1 << (bit % 8);
        // Ones'-complement arithmetic: a flip is detected unless it turns
        // 0x0000 into 0xFFFF (both zero representations) in one word;
        // single-bit flips never do that.
        prop_assert!(!netstack::checksum::verify(&pkt));
    }

    /// Parsers never panic on garbage.
    #[test]
    fn parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let a = Ipv4Addr::new(1, 2, 3, 4);
        let b = Ipv4Addr::new(5, 6, 7, 8);
        let _ = netstack::Ipv4Packet::parse(&bytes);
        let _ = netstack::ipv4::FragPacket::parse(&bytes);
        let _ = UdpDatagram::parse(&bytes, a, b);
        let _ = Echo::parse(&bytes);
        let _ = TftpPacket::parse(&bytes);
        let _ = netstack::ArpPacket::parse(&bytes);
        let _ = netstack::TcpLiteSegment::parse(&bytes, a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// TcpLite delivers every byte, in order, under random loss applied
    /// to both directions.
    #[test]
    fn tcplite_survives_random_loss(
        total in 1_000u64..50_000,
        drop_pattern in any::<u64>(),
        mss in prop::sample::select(vec![100usize, 536, 1462]),
    ) {
        let mut tx = TcpSender::new(SenderConfig {
            mss,
            window: 8 * 1024,
            nagle: true,
            nagle_threshold: 256,
            init_rto_ns: 1_000_000,
        });
        let mut rx = TcpReceiver::new(ReceiverConfig::default());
        tx.write(total);
        let mut now = 0u64;
        let mut lfsr = drop_pattern | 1;
        let mut drop = move || {
            // xorshift; ~6% loss.
            lfsr ^= lfsr << 13;
            lfsr ^= lfsr >> 7;
            lfsr ^= lfsr << 17;
            lfsr.is_multiple_of(16)
        };
        let mut guard = 0;
        while !tx.all_acked() {
            guard += 1;
            prop_assert!(guard < 100_000, "did not converge");
            now += 50_000; // 50 us per step
            let mut progressed = false;
            while let Some(seg) = tx.poll(now) {
                progressed = true;
                if drop() {
                    continue; // lost data segment
                }
                match rx.on_segment(seg.seq, seg.payload.len(), now) {
                    RecvAction::AckNow(a) => {
                        if !drop() {
                            tx.on_ack(a, now);
                        }
                    }
                    RecvAction::AckAt(_) | RecvAction::None => {}
                }
            }
            if let Some(a) = rx.on_timer(now) {
                if !drop() {
                    tx.on_ack(a, now);
                }
            }
            if !progressed {
                if let Some(deadline) = tx.next_timeout() {
                    if deadline <= now {
                        tx.on_timeout(now);
                    }
                }
            }
        }
        prop_assert_eq!(rx.bytes_received, total);
    }

    /// The stream pattern is position-determined: whatever segments
    /// arrive, their content matches the stream offset.
    #[test]
    fn tcplite_segments_carry_pattern(total in 100u64..10_000) {
        let mut tx = TcpSender::new(SenderConfig::default());
        tx.write(total);
        while let Some(seg) = tx.poll(0) {
            for (i, &b) in seg.payload.iter().enumerate() {
                prop_assert_eq!(b, pattern_byte(seg.seq as u64 + i as u64));
            }
        }
    }
}
