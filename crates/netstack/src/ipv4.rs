//! Minimal IPv4, after the paper's network loader: "The next layer
//! implements a minimal IP sufficient for our purposes. (It does not, for
//! example, implement fragmentation.)" Headers are always 20 bytes (no
//! options); fragments are rejected on receive and oversized datagrams are
//! refused on send.

use core::fmt;
use std::net::Ipv4Addr;

use crate::checksum::{checksum, verify};

/// Fixed header length (no options).
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers used in this reproduction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Protocol(pub u8);

impl Protocol {
    /// ICMP.
    pub const ICMP: Protocol = Protocol(1);
    /// UDP.
    pub const UDP: Protocol = Protocol(17);
    /// TcpLite (an experimental number; the real ttcp used TCP, protocol
    /// 6 — we keep a distinct number to make clear this is not full TCP).
    pub const TCPLITE: Protocol = Protocol(253);
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Protocol::ICMP => write!(f, "icmp"),
            Protocol::UDP => write!(f, "udp"),
            Protocol::TCPLITE => write!(f, "tcplite"),
            Protocol(p) => write!(f, "proto{p}"),
        }
    }
}

/// Parse/emit errors.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IpError {
    /// Too short for a header, or shorter than its own total-length field.
    Truncated,
    /// Not version 4 or has options (IHL != 5).
    BadHeader,
    /// Header checksum failed.
    BadChecksum,
    /// A fragment arrived (MF set or offset nonzero) — unsupported.
    Fragmented,
    /// Payload too large to emit without fragmentation.
    TooLarge,
}

impl fmt::Display for IpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpError::Truncated => write!(f, "truncated IP datagram"),
            IpError::BadHeader => write!(f, "unsupported IP header"),
            IpError::BadChecksum => write!(f, "IP header checksum mismatch"),
            IpError::Fragmented => write!(f, "fragmentation not implemented"),
            IpError::TooLarge => write!(f, "datagram exceeds MTU"),
        }
    }
}

impl std::error::Error for IpError {}

/// A parsed IPv4 datagram view.
#[derive(Copy, Clone, Debug)]
pub struct Packet<'a> {
    buf: &'a [u8],
}

impl<'a> Packet<'a> {
    /// Parse and validate a datagram.
    pub fn parse(buf: &'a [u8]) -> Result<Packet<'a>, IpError> {
        if buf.len() < HEADER_LEN {
            return Err(IpError::Truncated);
        }
        if buf[0] != 0x45 {
            // version 4, IHL 5 — anything else is out of scope.
            return Err(IpError::BadHeader);
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total_len < HEADER_LEN || buf.len() < total_len {
            return Err(IpError::Truncated);
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        let mf = flags_frag & 0x2000 != 0;
        let offset = flags_frag & 0x1FFF;
        if mf || offset != 0 {
            return Err(IpError::Fragmented);
        }
        if !verify(&buf[..HEADER_LEN]) {
            return Err(IpError::BadChecksum);
        }
        Ok(Packet {
            buf: &buf[..total_len],
        })
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[12], self.buf[13], self.buf[14], self.buf[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[16], self.buf[17], self.buf[18], self.buf[19])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// Payload protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol(self.buf[9])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// The payload.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[HEADER_LEN..]
    }
}

/// Append a 20-byte IPv4 header for a payload of `payload_len` bytes
/// (which the caller appends right behind it). The header checksum is
/// complete — it covers only the header, so the payload may be generated
/// in place afterwards. Hot-path building block; no validation (callers
/// check the MTU).
#[allow(clippy::too_many_arguments)]
pub fn emit_header_append(
    buf: &mut Vec<u8>,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: Protocol,
    ident: u16,
    ttl: u8,
    payload_len: usize,
    more_fragments: bool,
    offset_bytes: usize,
) {
    let total = HEADER_LEN + payload_len;
    debug_assert!(total <= u16::MAX as usize);
    debug_assert_eq!(offset_bytes % 8, 0);
    // Compose on the stack and append once (one bounds check, and the
    // checksum pass reads cache-hot bytes).
    let mut h = [0u8; HEADER_LEN];
    h[0] = 0x45;
    // h[1]: TOS = 0
    h[2..4].copy_from_slice(&(total as u16).to_be_bytes());
    h[4..6].copy_from_slice(&ident.to_be_bytes());
    let mut flags_frag = (offset_bytes / 8) as u16;
    if more_fragments {
        flags_frag |= 0x2000;
    }
    h[6..8].copy_from_slice(&flags_frag.to_be_bytes());
    h[8] = ttl;
    h[9] = protocol.0;
    // h[10..12]: checksum placeholder
    h[12..16].copy_from_slice(&src.octets());
    h[16..20].copy_from_slice(&dst.octets());
    let c = checksum(&h);
    h[10..12].copy_from_slice(&c.to_be_bytes());
    buf.reserve(total);
    buf.extend_from_slice(&h);
}

#[allow(clippy::too_many_arguments)]
fn emit_raw_into(
    buf: &mut Vec<u8>,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: Protocol,
    ident: u16,
    ttl: u8,
    payload: &[u8],
    more_fragments: bool,
    offset_bytes: usize,
) {
    emit_header_append(
        buf,
        src,
        dst,
        protocol,
        ident,
        ttl,
        payload.len(),
        more_fragments,
        offset_bytes,
    );
    buf.extend_from_slice(payload);
}

#[allow(clippy::too_many_arguments)]
fn emit_raw(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: Protocol,
    ident: u16,
    ttl: u8,
    payload: &[u8],
    more_fragments: bool,
    offset_bytes: usize,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    emit_raw_into(
        &mut buf,
        src,
        dst,
        protocol,
        ident,
        ttl,
        payload,
        more_fragments,
        offset_bytes,
    );
    buf
}

/// Append an unfragmented datagram to `buf` (the hot-path form: callers
/// composing a whole Ethernet frame in one buffer append the IP layer in
/// place instead of allocating an intermediate datagram). `mtu` as in
/// [`emit`].
#[allow(clippy::too_many_arguments)]
pub fn emit_append(
    buf: &mut Vec<u8>,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: Protocol,
    ident: u16,
    ttl: u8,
    payload: &[u8],
    mtu: usize,
) -> Result<(), IpError> {
    let total = HEADER_LEN + payload.len();
    if total > mtu || total > u16::MAX as usize {
        return Err(IpError::TooLarge);
    }
    emit_raw_into(buf, src, dst, protocol, ident, ttl, payload, false, 0);
    Ok(())
}

/// Assemble a datagram. `mtu` is the link MTU the caller must respect;
/// exceeding it errors (no fragmentation — the loader stack's rule).
pub fn emit(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: Protocol,
    ident: u16,
    ttl: u8,
    payload: &[u8],
    mtu: usize,
) -> Result<Vec<u8>, IpError> {
    let total = HEADER_LEN + payload.len();
    if total > mtu || total > u16::MAX as usize {
        return Err(IpError::TooLarge);
    }
    Ok(emit_raw(src, dst, protocol, ident, ttl, payload, false, 0))
}

/// Assemble a datagram, fragmenting if it exceeds `mtu` — what the
/// *hosts* (full Linux IP in the paper's testbed) do; bridges forward
/// fragments like any other frame, and the loader stack never sees them.
pub fn emit_fragments(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: Protocol,
    ident: u16,
    ttl: u8,
    payload: &[u8],
    mtu: usize,
) -> Vec<Vec<u8>> {
    if HEADER_LEN + payload.len() <= mtu {
        return vec![emit_raw(src, dst, protocol, ident, ttl, payload, false, 0)];
    }
    // Fragment payload size: MTU minus header, rounded down to 8 bytes.
    let chunk = (mtu - HEADER_LEN) & !7;
    assert!(chunk > 0, "mtu too small to fragment");
    let mut out = Vec::new();
    let mut offset = 0;
    while offset < payload.len() {
        let end = (offset + chunk).min(payload.len());
        let mf = end < payload.len();
        out.push(emit_raw(
            src,
            dst,
            protocol,
            ident,
            ttl,
            &payload[offset..end],
            mf,
            offset,
        ));
        offset = end;
    }
    out
}

/// A fragment-tolerant datagram view (hosts only; the strict [`Packet`]
/// stays fragment-free for the loader).
#[derive(Copy, Clone, Debug)]
pub struct FragPacket<'a> {
    buf: &'a [u8],
}

impl<'a> FragPacket<'a> {
    /// Parse, accepting fragments.
    pub fn parse(buf: &'a [u8]) -> Result<FragPacket<'a>, IpError> {
        if buf.len() < HEADER_LEN {
            return Err(IpError::Truncated);
        }
        if buf[0] != 0x45 {
            return Err(IpError::BadHeader);
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total_len < HEADER_LEN || buf.len() < total_len {
            return Err(IpError::Truncated);
        }
        if !verify(&buf[..HEADER_LEN]) {
            return Err(IpError::BadChecksum);
        }
        Ok(FragPacket {
            buf: &buf[..total_len],
        })
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[12], self.buf[13], self.buf[14], self.buf[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[16], self.buf[17], self.buf[18], self.buf[19])
    }

    /// Payload protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol(self.buf[9])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.buf[4], self.buf[5]])
    }

    /// More-fragments flag.
    pub fn more_fragments(&self) -> bool {
        u16::from_be_bytes([self.buf[6], self.buf[7]]) & 0x2000 != 0
    }

    /// Fragment offset in bytes.
    pub fn offset_bytes(&self) -> usize {
        ((u16::from_be_bytes([self.buf[6], self.buf[7]]) & 0x1FFF) as usize) * 8
    }

    /// True if this datagram is one fragment of a larger one.
    pub fn is_fragment(&self) -> bool {
        self.more_fragments() || self.offset_bytes() != 0
    }

    /// The (fragment) payload.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[HEADER_LEN..]
    }
}

/// Host-side fragment reassembly (in-order, hole-free — which is what a
/// deterministic simulated LAN delivers; anything else is dropped when a
/// new datagram with the same key starts).
#[derive(Default)]
pub struct Reassembler {
    pending: std::collections::HashMap<(Ipv4Addr, u16, u8), PendingFrag>,
}

struct PendingFrag {
    data: Vec<u8>,
    /// Bytes received so far (contiguity enforced).
    received: usize,
    /// Total length once the final fragment arrives.
    total: Option<usize>,
}

impl Reassembler {
    /// Fresh reassembler.
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Feed one fragment; returns the whole payload when complete.
    pub fn push(&mut self, pkt: &FragPacket<'_>) -> Option<Vec<u8>> {
        let key = (pkt.src(), pkt.ident(), pkt.protocol().0);
        let entry = self.pending.entry(key).or_insert(PendingFrag {
            data: Vec::new(),
            received: 0,
            total: None,
        });
        if pkt.offset_bytes() != entry.received {
            // Out of order / retransmitted datagram: restart if this is a
            // first fragment, else drop.
            if pkt.offset_bytes() == 0 {
                entry.data.clear();
                entry.received = 0;
                entry.total = None;
            } else {
                return None;
            }
        }
        entry.data.extend_from_slice(pkt.payload());
        entry.received += pkt.payload().len();
        if !pkt.more_fragments() {
            entry.total = Some(entry.received);
        }
        if entry.total == Some(entry.received) {
            let done = self.pending.remove(&key).unwrap();
            Some(done.data)
        } else {
            None
        }
    }

    /// Incomplete datagrams currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn emit_parse_roundtrip() {
        let pkt = emit(A, B, Protocol::UDP, 7, 64, b"payload!", 1500).unwrap();
        let p = Packet::parse(&pkt).unwrap();
        assert_eq!(p.src(), A);
        assert_eq!(p.dst(), B);
        assert_eq!(p.protocol(), Protocol::UDP);
        assert_eq!(p.ident(), 7);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.payload(), b"payload!");
    }

    #[test]
    fn trailing_padding_trimmed_by_total_len() {
        // Ethernet pads short frames; the IP total-length field recovers
        // the real datagram.
        let mut pkt = emit(A, B, Protocol::ICMP, 1, 64, b"xy", 1500).unwrap();
        pkt.resize(60, 0); // simulated Ethernet padding
        let p = Packet::parse(&pkt).unwrap();
        assert_eq!(p.payload(), b"xy");
    }

    #[test]
    fn corrupted_header_rejected() {
        let mut pkt = emit(A, B, Protocol::UDP, 7, 64, b"data", 1500).unwrap();
        pkt[14] ^= 0x40; // flip a source-address bit
        assert!(matches!(Packet::parse(&pkt), Err(IpError::BadChecksum)));
    }

    #[test]
    fn fragments_rejected() {
        let mut pkt = emit(A, B, Protocol::UDP, 7, 64, b"data", 1500).unwrap();
        pkt[6] = 0x20; // MF
                       // refresh checksum so only the fragment check fires
        pkt[10] = 0;
        pkt[11] = 0;
        let c = checksum(&pkt[..HEADER_LEN]);
        pkt[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(matches!(Packet::parse(&pkt), Err(IpError::Fragmented)));
    }

    #[test]
    fn oversized_send_refused() {
        let big = vec![0u8; 1481];
        assert!(matches!(
            emit(A, B, Protocol::UDP, 0, 64, &big, 1500),
            Err(IpError::TooLarge)
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            Packet::parse(&[0x45; 10]),
            Err(IpError::Truncated)
        ));
    }

    #[test]
    fn fragmentation_roundtrip() {
        let payload: Vec<u8> = (0..4000u32).map(|i| (i % 253) as u8).collect();
        let frags = emit_fragments(A, B, Protocol::ICMP, 9, 64, &payload, 1500);
        assert!(frags.len() >= 3, "4000 bytes over 1500 MTU needs 3 frames");
        // Every fragment fits the MTU and is a valid FragPacket.
        let mut r = Reassembler::new();
        let mut out = None;
        for f in &frags {
            assert!(f.len() <= 1500);
            let p = FragPacket::parse(f).unwrap();
            assert!(p.is_fragment());
            if let Some(done) = r.push(&p) {
                out = Some(done);
            }
        }
        assert_eq!(out.unwrap(), payload);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn small_payload_not_fragmented() {
        let frags = emit_fragments(A, B, Protocol::UDP, 9, 64, b"tiny", 1500);
        assert_eq!(frags.len(), 1);
        let p = FragPacket::parse(&frags[0]).unwrap();
        assert!(!p.is_fragment());
        // And the strict parser accepts it too.
        assert!(Packet::parse(&frags[0]).is_ok());
    }

    #[test]
    fn strict_parser_still_rejects_fragments() {
        let payload = vec![0u8; 3000];
        let frags = emit_fragments(A, B, Protocol::ICMP, 9, 64, &payload, 1500);
        for f in &frags {
            assert!(matches!(Packet::parse(f), Err(IpError::Fragmented)));
        }
    }

    #[test]
    fn reassembler_restarts_on_duplicate_first_fragment() {
        let payload: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        let frags = emit_fragments(A, B, Protocol::ICMP, 5, 64, &payload, 1500);
        let mut r = Reassembler::new();
        // First fragment twice (retransmission): restart, then complete.
        let p0 = FragPacket::parse(&frags[0]).unwrap();
        assert!(r.push(&p0).is_none());
        assert!(r.push(&p0).is_none());
        let mut out = None;
        for f in &frags[1..] {
            out = r.push(&FragPacket::parse(f).unwrap());
        }
        assert_eq!(out.unwrap(), payload);
    }
}
