//! Minimal ARP (RFC 826) for Ethernet/IPv4 — the simulated hosts need to
//! resolve each other's MAC addresses; bridges forward ARP like any other
//! frame (they are transparent).

use std::net::Ipv4Addr;

use ether::MacAddr;

/// ARP packet length for Ethernet/IPv4.
pub const PACKET_LEN: usize = 28;

/// Request or reply.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has.
    Request,
    /// Is-at.
    Reply,
}

/// A parsed ARP packet (Ethernet/IPv4 only).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sha: MacAddr,
    /// Sender protocol address.
    pub spa: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub tha: MacAddr,
    /// Target protocol address.
    pub tpa: Ipv4Addr,
}

/// Errors from [`ArpPacket::parse`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ArpError {
    /// Too short.
    Truncated,
    /// Not Ethernet/IPv4 ARP.
    Unsupported,
}

impl core::fmt::Display for ArpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArpError::Truncated => write!(f, "truncated ARP packet"),
            ArpError::Unsupported => write!(f, "unsupported ARP packet"),
        }
    }
}

impl std::error::Error for ArpError {}

impl ArpPacket {
    /// Parse an ARP packet.
    pub fn parse(buf: &[u8]) -> Result<ArpPacket, ArpError> {
        if buf.len() < PACKET_LEN {
            return Err(ArpError::Truncated);
        }
        // htype=1 (Ethernet), ptype=0x0800 (IPv4), hlen=6, plen=4.
        if buf[0..6] != [0, 1, 8, 0, 6, 4] {
            return Err(ArpError::Unsupported);
        }
        let op = match u16::from_be_bytes([buf[6], buf[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return Err(ArpError::Unsupported),
        };
        Ok(ArpPacket {
            op,
            sha: MacAddr::from_slice(&buf[8..14]).unwrap(),
            spa: Ipv4Addr::new(buf[14], buf[15], buf[16], buf[17]),
            tha: MacAddr::from_slice(&buf[18..24]).unwrap(),
            tpa: Ipv4Addr::new(buf[24], buf[25], buf[26], buf[27]),
        })
    }

    /// Assemble this packet.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(PACKET_LEN);
        buf.extend_from_slice(&[0, 1, 8, 0, 6, 4]);
        buf.extend_from_slice(
            &match self.op {
                ArpOp::Request => 1u16,
                ArpOp::Reply => 2u16,
            }
            .to_be_bytes(),
        );
        buf.extend_from_slice(&self.sha.octets());
        buf.extend_from_slice(&self.spa.octets());
        buf.extend_from_slice(&self.tha.octets());
        buf.extend_from_slice(&self.tpa.octets());
        buf
    }

    /// A who-has request.
    pub fn request(sha: MacAddr, spa: Ipv4Addr, tpa: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sha,
            spa,
            tha: MacAddr::ZERO,
            tpa,
        }
    }

    /// The is-at reply to this request.
    pub fn reply_with(&self, my_mac: MacAddr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sha: my_mac,
            spa: self.tpa,
            tha: self.sha,
            tpa: self.spa,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn request_reply_roundtrip() {
        let mac_a = MacAddr::local(1);
        let mac_b = MacAddr::local(2);
        let req = ArpPacket::request(mac_a, IP_A, IP_B);
        let parsed = ArpPacket::parse(&req.emit()).unwrap();
        assert_eq!(parsed, req);
        let rep = parsed.reply_with(mac_b);
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sha, mac_b);
        assert_eq!(rep.spa, IP_B);
        assert_eq!(rep.tha, mac_a);
        assert_eq!(rep.tpa, IP_A);
        let parsed_rep = ArpPacket::parse(&rep.emit()).unwrap();
        assert_eq!(parsed_rep, rep);
    }

    #[test]
    fn padding_tolerated() {
        let req = ArpPacket::request(MacAddr::local(1), IP_A, IP_B);
        let mut bytes = req.emit();
        bytes.resize(46, 0); // Ethernet minimum padding
        assert_eq!(ArpPacket::parse(&bytes).unwrap(), req);
    }

    #[test]
    fn non_ethernet_rejected() {
        let req = ArpPacket::request(MacAddr::local(1), IP_A, IP_B);
        let mut bytes = req.emit();
        bytes[1] = 6; // htype = IEEE 802? unsupported
        assert_eq!(ArpPacket::parse(&bytes).unwrap_err(), ArpError::Unsupported);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(ArpPacket::parse(&[0; 27]).unwrap_err(), ArpError::Truncated);
    }
}
