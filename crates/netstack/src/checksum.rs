//! The Internet checksum (RFC 1071): 16-bit ones'-complement sum.
//!
//! The accumulator is 64 bits wide and consumes aligned input eight bytes
//! at a time (RFC 1071 §2(C): "the sum may be computed in a larger
//! register ... on machines with a wide addition unit" — ones'-complement
//! addition is associative under end-around carry, so any word grouping
//! folds to the same 16-bit sum). This is the per-frame TCP/ICMP payload
//! pass on the ttcp path, ~4× faster than the previous 16-bit-at-a-time
//! loop on 1.4 KB segments; the produced checksums are bit-identical.

/// Accumulates a ones'-complement sum.
#[derive(Default, Clone, Copy, Debug)]
pub struct Checksum {
    sum: u64,
    /// True when an odd byte is pending (data fed in odd-sized chunks).
    odd: Option<u8>,
}

impl Checksum {
    /// Fresh accumulator.
    pub fn new() -> Checksum {
        Checksum::default()
    }

    /// Add with end-around carry (keeps the accumulator congruent to the
    /// true sum modulo 2^16 − 1, which is all the final fold needs).
    #[inline]
    fn accum(&mut self, w: u64) {
        let (s, carry) = self.sum.overflowing_add(w);
        self.sum = s + carry as u64;
    }

    /// Feed bytes.
    pub fn add(&mut self, data: &[u8]) {
        let mut data = data;
        if let Some(hi) = self.odd.take() {
            if let Some((&lo, rest)) = data.split_first() {
                self.accum(u64::from(u16::from_be_bytes([hi, lo])));
                data = rest;
            } else {
                self.odd = Some(hi);
                return;
            }
        }
        // Wide path: sum big-endian u32 words (two 16-bit words each at
        // their correct significance modulo 2^16 − 1) into four
        // *independent* u64 lanes — no carry chain between iterations, so
        // the adds pipeline. A u64 lane absorbs 2^32 u32-words without
        // overflowing, far beyond any frame size.
        let mut lanes = [0u64; 4];
        let mut wide = data.chunks_exact(16);
        for c in &mut wide {
            lanes[0] += u64::from(u32::from_be_bytes(c[0..4].try_into().unwrap()));
            lanes[1] += u64::from(u32::from_be_bytes(c[4..8].try_into().unwrap()));
            lanes[2] += u64::from(u32::from_be_bytes(c[8..12].try_into().unwrap()));
            lanes[3] += u64::from(u32::from_be_bytes(c[12..16].try_into().unwrap()));
        }
        self.accum(lanes[0]);
        self.accum(lanes[1]);
        self.accum(lanes[2]);
        self.accum(lanes[3]);
        data = wide.remainder();
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.accum(u64::from(u16::from_be_bytes([c[0], c[1]])));
        }
        if let [last] = chunks.remainder() {
            self.odd = Some(*last);
        }
    }

    /// Feed a 16-bit word.
    pub fn add_u16(&mut self, v: u16) {
        self.add(&v.to_be_bytes());
    }

    /// Fold another accumulator's state into this one, as if the bytes it
    /// consumed had been fed here instead. Valid only while `self` sits at
    /// an even byte offset (no pending odd byte) — the caller is composing
    /// `[even-length prefix] ++ [suffix summed elsewhere]`. This is how
    /// hot paths reuse a precomputed payload sum instead of re-walking an
    /// unchanged payload per packet.
    pub fn add_partial(&mut self, other: Checksum) {
        debug_assert!(
            self.odd.is_none(),
            "add_partial requires an even-offset accumulator"
        );
        self.accum(other.sum);
        self.odd = other.odd;
    }

    /// Finish: fold carries and complement.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.odd.take() {
            self.accum(u64::from(u16::from_be_bytes([hi, 0])));
        }
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum of a buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add(data);
    c.finish()
}

/// Verify a buffer whose checksum field is already in place: the total
/// must come out zero.
pub fn verify(data: &[u8]) -> bool {
    let mut c = Checksum::new();
    c.add(data);
    c.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2 -> cksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn chunked_equals_one_shot() {
        let data: Vec<u8> = (0..37u8).collect();
        let one = checksum(&data);
        for cut in 1..data.len() {
            let mut c = Checksum::new();
            c.add(&data[..cut]);
            c.add(&data[cut..]);
            assert_eq!(c.finish(), one, "split at {cut}");
        }
    }

    #[test]
    fn wide_accumulation_matches_16bit_reference() {
        // 4 KB of pseudo-random bytes at an odd length: the widened
        // accumulator must agree with a plain 16-bit ones'-complement sum.
        let data: Vec<u8> = (0..4097u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        for len in [0, 1, 2, 7, 8, 9, 1462, 4096, 4097] {
            let d = &data[..len];
            let mut sum: u32 = 0;
            for c in d.chunks(2) {
                let w = if c.len() == 2 {
                    u16::from_be_bytes([c[0], c[1]])
                } else {
                    u16::from_be_bytes([c[0], 0])
                };
                sum += u32::from(w);
            }
            while sum >> 16 != 0 {
                sum = (sum & 0xFFFF) + (sum >> 16);
            }
            assert_eq!(checksum(d), !(sum as u16), "len {len}");
        }
    }

    #[test]
    fn verify_roundtrip() {
        // Build a pseudo-header-free packet with checksum at offset 2.
        let mut pkt = vec![0x45, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78];
        let c = checksum(&pkt);
        pkt[2..4].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&pkt));
        pkt[5] ^= 1;
        assert!(!verify(&pkt));
    }
}
