//! The Internet checksum (RFC 1071): 16-bit ones'-complement sum.

/// Accumulates a ones'-complement sum.
#[derive(Default, Clone, Copy, Debug)]
pub struct Checksum {
    sum: u32,
    /// True when an odd byte is pending (data fed in odd-sized chunks).
    odd: Option<u8>,
}

impl Checksum {
    /// Fresh accumulator.
    pub fn new() -> Checksum {
        Checksum::default()
    }

    /// Feed bytes.
    pub fn add(&mut self, data: &[u8]) {
        let mut data = data;
        if let Some(hi) = self.odd.take() {
            if let Some((&lo, rest)) = data.split_first() {
                self.sum += u32::from(u16::from_be_bytes([hi, lo]));
                data = rest;
            } else {
                self.odd = Some(hi);
                return;
            }
        }
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.odd = Some(*last);
        }
    }

    /// Feed a 16-bit word.
    pub fn add_u16(&mut self, v: u16) {
        self.add(&v.to_be_bytes());
    }

    /// Finish: fold carries and complement.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.odd.take() {
            self.sum += u32::from(u16::from_be_bytes([hi, 0]));
        }
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum of a buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add(data);
    c.finish()
}

/// Verify a buffer whose checksum field is already in place: the total
/// must come out zero.
pub fn verify(data: &[u8]) -> bool {
    let mut c = Checksum::new();
    c.add(data);
    c.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2 -> cksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn chunked_equals_one_shot() {
        let data: Vec<u8> = (0..37u8).collect();
        let one = checksum(&data);
        for cut in 1..data.len() {
            let mut c = Checksum::new();
            c.add(&data[..cut]);
            c.add(&data[cut..]);
            assert_eq!(c.finish(), one, "split at {cut}");
        }
    }

    #[test]
    fn verify_roundtrip() {
        // Build a pseudo-header-free packet with checksum at offset 2.
        let mut pkt = vec![0x45, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78];
        let c = checksum(&pkt);
        pkt[2..4].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&pkt));
        pkt[5] ^= 1;
        assert!(!verify(&pkt));
    }
}
