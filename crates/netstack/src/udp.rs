//! Minimal UDP (RFC 768), the third layer of the paper's network loader.

use std::net::Ipv4Addr;

use crate::checksum::Checksum;
use crate::ipv4::Protocol;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Errors from [`Datagram::parse`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum UdpError {
    /// Shorter than the header or its own length field.
    Truncated,
    /// The (optional) checksum failed.
    BadChecksum,
}

impl core::fmt::Display for UdpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UdpError::Truncated => write!(f, "truncated UDP datagram"),
            UdpError::BadChecksum => write!(f, "UDP checksum mismatch"),
        }
    }
}

impl std::error::Error for UdpError {}

/// A parsed UDP datagram.
#[derive(Copy, Clone, Debug)]
pub struct Datagram<'a> {
    buf: &'a [u8],
}

fn pseudo_header(c: &mut Checksum, src: Ipv4Addr, dst: Ipv4Addr, len: u16) {
    c.add(&src.octets());
    c.add(&dst.octets());
    c.add_u16(Protocol::UDP.0 as u16);
    c.add_u16(len);
}

impl<'a> Datagram<'a> {
    /// Parse; `src`/`dst` are needed for the pseudo-header checksum.
    pub fn parse(buf: &'a [u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Datagram<'a>, UdpError> {
        if buf.len() < HEADER_LEN {
            return Err(UdpError::Truncated);
        }
        let len = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        if len < HEADER_LEN || buf.len() < len {
            return Err(UdpError::Truncated);
        }
        let buf = &buf[..len];
        let cksum = u16::from_be_bytes([buf[6], buf[7]]);
        if cksum != 0 {
            let mut c = Checksum::new();
            pseudo_header(&mut c, src, dst, len as u16);
            c.add(buf);
            if c.finish() != 0 {
                return Err(UdpError::BadChecksum);
            }
        }
        Ok(Datagram { buf })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// The payload.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[HEADER_LEN..]
    }
}

/// Assemble a UDP datagram (checksum always generated).
pub fn emit(src: Ipv4Addr, src_port: u16, dst: Ipv4Addr, dst_port: u16, payload: &[u8]) -> Vec<u8> {
    let len = (HEADER_LEN + payload.len()) as u16;
    let mut buf = Vec::with_capacity(len as usize);
    buf.extend_from_slice(&src_port.to_be_bytes());
    buf.extend_from_slice(&dst_port.to_be_bytes());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&[0, 0]);
    buf.extend_from_slice(payload);
    let mut c = Checksum::new();
    pseudo_header(&mut c, src, dst, len);
    c.add(&buf);
    let mut cksum = c.finish();
    if cksum == 0 {
        cksum = 0xFFFF; // 0 means "no checksum" on the wire
    }
    buf[6..8].copy_from_slice(&cksum.to_be_bytes());
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);
    const B: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);

    #[test]
    fn emit_parse_roundtrip() {
        let d = emit(A, 1069, B, 69, b"tftp write request");
        let p = Datagram::parse(&d, A, B).unwrap();
        assert_eq!(p.src_port(), 1069);
        assert_eq!(p.dst_port(), 69);
        assert_eq!(p.payload(), b"tftp write request");
    }

    #[test]
    fn corruption_detected() {
        let mut d = emit(A, 1, B, 2, b"hello");
        let last = d.len() - 1;
        d[last] ^= 0xFF;
        assert_eq!(
            Datagram::parse(&d, A, B).unwrap_err(),
            UdpError::BadChecksum
        );
    }

    #[test]
    fn wrong_pseudo_header_detected() {
        let d = emit(A, 1, B, 2, b"hello");
        // Same bytes claimed to come from a different source address.
        let c = Ipv4Addr::new(192, 168, 1, 9);
        assert_eq!(
            Datagram::parse(&d, c, B).unwrap_err(),
            UdpError::BadChecksum
        );
    }

    #[test]
    fn padding_trimmed_by_length_field() {
        let mut d = emit(A, 1, B, 2, b"x");
        d.resize(46, 0);
        let p = Datagram::parse(&d, A, B).unwrap();
        assert_eq!(p.payload(), b"x");
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Datagram::parse(&[0; 4], A, B).unwrap_err(),
            UdpError::Truncated
        );
    }
}
