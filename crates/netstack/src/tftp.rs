//! TFTP (RFC 1350), restricted exactly as the paper restricts it: "this
//! server only services write requests in binary format. Any such file is
//! taken to be a Caml byte code file and, upon successful receipt, an
//! attempt is made to dynamically load and evaluate the file."
//!
//! Both ends are pure state machines — the embedding node supplies packet
//! transport and retransmission timers.

use std::collections::HashMap;
use std::net::Ipv4Addr;

/// TFTP data block size.
pub const BLOCK_SIZE: usize = 512;

/// A parsed TFTP packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TftpPacket<'a> {
    /// Read request (always refused by our server).
    Rrq {
        /// Requested file name.
        filename: &'a str,
        /// Transfer mode.
        mode: &'a str,
    },
    /// Write request.
    Wrq {
        /// Target file name.
        filename: &'a str,
        /// Transfer mode; only "octet" (binary) is served.
        mode: &'a str,
    },
    /// A data block.
    Data {
        /// Block number (1-based).
        block: u16,
        /// Up to 512 octets; fewer ends the transfer.
        data: &'a [u8],
    },
    /// Acknowledgement of a block (0 acknowledges the WRQ).
    Ack {
        /// Acknowledged block number.
        block: u16,
    },
    /// Error.
    Error {
        /// Error code.
        code: u16,
        /// Human-readable message.
        msg: &'a str,
    },
}

fn read_cstr(buf: &[u8]) -> Option<(&str, &[u8])> {
    let nul = buf.iter().position(|&b| b == 0)?;
    let s = core::str::from_utf8(&buf[..nul]).ok()?;
    Some((s, &buf[nul + 1..]))
}

impl<'a> TftpPacket<'a> {
    /// Parse a TFTP packet; `None` on malformed input.
    pub fn parse(buf: &'a [u8]) -> Option<TftpPacket<'a>> {
        if buf.len() < 2 {
            return None;
        }
        let op = u16::from_be_bytes([buf[0], buf[1]]);
        let rest = &buf[2..];
        match op {
            1 | 2 => {
                let (filename, rest) = read_cstr(rest)?;
                let (mode, _) = read_cstr(rest)?;
                Some(if op == 1 {
                    TftpPacket::Rrq { filename, mode }
                } else {
                    TftpPacket::Wrq { filename, mode }
                })
            }
            3 => {
                if rest.len() < 2 || rest.len() > 2 + BLOCK_SIZE {
                    return None;
                }
                Some(TftpPacket::Data {
                    block: u16::from_be_bytes([rest[0], rest[1]]),
                    data: &rest[2..],
                })
            }
            4 => {
                if rest.len() < 2 {
                    return None;
                }
                Some(TftpPacket::Ack {
                    block: u16::from_be_bytes([rest[0], rest[1]]),
                })
            }
            5 => {
                if rest.len() < 2 {
                    return None;
                }
                let (msg, _) = read_cstr(&rest[2..])?;
                Some(TftpPacket::Error {
                    code: u16::from_be_bytes([rest[0], rest[1]]),
                    msg,
                })
            }
            _ => None,
        }
    }

    /// Assemble this packet.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            TftpPacket::Rrq { filename, mode } | TftpPacket::Wrq { filename, mode } => {
                let op: u16 = if matches!(self, TftpPacket::Rrq { .. }) {
                    1
                } else {
                    2
                };
                buf.extend_from_slice(&op.to_be_bytes());
                buf.extend_from_slice(filename.as_bytes());
                buf.push(0);
                buf.extend_from_slice(mode.as_bytes());
                buf.push(0);
            }
            TftpPacket::Data { block, data } => {
                assert!(data.len() <= BLOCK_SIZE);
                buf.extend_from_slice(&3u16.to_be_bytes());
                buf.extend_from_slice(&block.to_be_bytes());
                buf.extend_from_slice(data);
            }
            TftpPacket::Ack { block } => {
                buf.extend_from_slice(&4u16.to_be_bytes());
                buf.extend_from_slice(&block.to_be_bytes());
            }
            TftpPacket::Error { code, msg } => {
                buf.extend_from_slice(&5u16.to_be_bytes());
                buf.extend_from_slice(&code.to_be_bytes());
                buf.extend_from_slice(msg.as_bytes());
                buf.push(0);
            }
        }
        buf
    }
}

/// A completed upload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceivedFile {
    /// The name from the WRQ.
    pub filename: String,
    /// Reassembled contents.
    pub data: Vec<u8>,
}

struct Transfer {
    filename: String,
    next_block: u16,
    data: Vec<u8>,
}

/// The write-only, binary-only TFTP server.
#[derive(Default)]
pub struct TftpServer {
    transfers: HashMap<(Ipv4Addr, u16), Transfer>,
    /// Completed uploads served so far.
    pub completed: u64,
    /// Requests refused (RRQ, bad mode, bad sequence).
    pub refused: u64,
}

impl TftpServer {
    /// Fresh server.
    pub fn new() -> TftpServer {
        TftpServer::default()
    }

    /// Handle one packet from `peer`. Returns the reply to send (if any)
    /// and the completed file (if this packet finished an upload).
    pub fn on_packet(
        &mut self,
        peer: (Ipv4Addr, u16),
        packet: &[u8],
    ) -> (Option<Vec<u8>>, Option<ReceivedFile>) {
        let Some(pkt) = TftpPacket::parse(packet) else {
            return (None, None); // malformed: silently dropped
        };
        match pkt {
            TftpPacket::Rrq { .. } => {
                self.refused += 1;
                (
                    Some(
                        TftpPacket::Error {
                            code: 2,
                            msg: "write-only server",
                        }
                        .emit(),
                    ),
                    None,
                )
            }
            TftpPacket::Wrq { filename, mode } => {
                if !mode.eq_ignore_ascii_case("octet") {
                    self.refused += 1;
                    return (
                        Some(
                            TftpPacket::Error {
                                code: 0,
                                msg: "binary (octet) mode only",
                            }
                            .emit(),
                        ),
                        None,
                    );
                }
                self.transfers.insert(
                    peer,
                    Transfer {
                        filename: filename.to_owned(),
                        next_block: 1,
                        data: Vec::new(),
                    },
                );
                (Some(TftpPacket::Ack { block: 0 }.emit()), None)
            }
            TftpPacket::Data { block, data } => {
                let Some(t) = self.transfers.get_mut(&peer) else {
                    self.refused += 1;
                    return (
                        Some(
                            TftpPacket::Error {
                                code: 5,
                                msg: "no transfer in progress",
                            }
                            .emit(),
                        ),
                        None,
                    );
                };
                if block + 1 == t.next_block {
                    // Duplicate of the previous block: re-ack.
                    return (Some(TftpPacket::Ack { block }.emit()), None);
                }
                if block != t.next_block {
                    self.refused += 1;
                    self.transfers.remove(&peer);
                    return (
                        Some(
                            TftpPacket::Error {
                                code: 4,
                                msg: "block out of sequence",
                            }
                            .emit(),
                        ),
                        None,
                    );
                }
                t.data.extend_from_slice(data);
                t.next_block = t.next_block.wrapping_add(1);
                let ack = TftpPacket::Ack { block }.emit();
                if data.len() < BLOCK_SIZE {
                    let t = self.transfers.remove(&peer).unwrap();
                    self.completed += 1;
                    (
                        Some(ack),
                        Some(ReceivedFile {
                            filename: t.filename,
                            data: t.data,
                        }),
                    )
                } else {
                    (Some(ack), None)
                }
            }
            TftpPacket::Ack { .. } | TftpPacket::Error { .. } => {
                // A pure write server never expects these; drop.
                (None, None)
            }
        }
    }
}

/// What the sender should do next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SenderStep {
    /// Transmit these bytes.
    Send(Vec<u8>),
    /// Transfer complete.
    Done,
    /// The server refused the transfer.
    Failed(String),
    /// Ignore this packet (duplicate/foreign).
    Ignore,
}

/// The uploading client: sends a WRQ then data blocks, advancing on ACKs.
pub struct TftpSender {
    filename: String,
    data: Vec<u8>,
    /// Next block to send (0 = WRQ outstanding).
    acked_through: Option<u16>,
    done: bool,
}

impl TftpSender {
    /// Prepare an upload.
    pub fn new(filename: impl Into<String>, data: Vec<u8>) -> TftpSender {
        TftpSender {
            filename: filename.into(),
            data,
            acked_through: None,
            done: false,
        }
    }

    /// The first packet (WRQ). Also what to retransmit if no ACK arrives.
    pub fn start(&self) -> Vec<u8> {
        TftpPacket::Wrq {
            filename: &self.filename,
            mode: "octet",
        }
        .emit()
    }

    fn block_payload(&self, block: u16) -> &[u8] {
        let start = (block as usize - 1) * BLOCK_SIZE;
        let end = (start + BLOCK_SIZE).min(self.data.len());
        &self.data[start.min(self.data.len())..end]
    }

    fn total_blocks(&self) -> u16 {
        (self.data.len() / BLOCK_SIZE + 1) as u16
    }

    /// The packet currently outstanding (for retransmission).
    pub fn current(&self) -> Option<Vec<u8>> {
        if self.done {
            return None;
        }
        match self.acked_through {
            None => Some(self.start()),
            Some(b) => {
                let next = b + 1;
                Some(
                    TftpPacket::Data {
                        block: next,
                        data: self.block_payload(next),
                    }
                    .emit(),
                )
            }
        }
    }

    /// Handle a packet from the server.
    pub fn on_packet(&mut self, packet: &[u8]) -> SenderStep {
        if self.done {
            return SenderStep::Ignore;
        }
        match TftpPacket::parse(packet) {
            Some(TftpPacket::Ack { block }) => {
                let expected = match self.acked_through {
                    None => 0,
                    Some(b) => b + 1,
                };
                if block != expected {
                    return SenderStep::Ignore;
                }
                if block >= self.total_blocks() {
                    self.done = true;
                    return SenderStep::Done;
                }
                self.acked_through = Some(block);
                let next = block + 1;
                SenderStep::Send(
                    TftpPacket::Data {
                        block: next,
                        data: self.block_payload(next),
                    }
                    .emit(),
                )
            }
            Some(TftpPacket::Error { code, msg }) => {
                self.done = true;
                SenderStep::Failed(format!("tftp error {code}: {msg}"))
            }
            _ => SenderStep::Ignore,
        }
    }

    /// True once the final block has been acknowledged.
    pub fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEER: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 5), 1069);

    /// Run a full lossless transfer through both state machines.
    fn transfer(data: Vec<u8>) -> ReceivedFile {
        let mut server = TftpServer::new();
        let mut sender = TftpSender::new("switchlet.swl", data);
        let mut wire = sender.start();
        loop {
            let (reply, file) = server.on_packet(PEER, &wire);
            if let Some(f) = file {
                // Sender still needs the final ack.
                let step = sender.on_packet(&reply.unwrap());
                assert_eq!(step, SenderStep::Done);
                assert!(sender.is_done());
                return f;
            }
            match sender.on_packet(&reply.expect("server always replies here")) {
                SenderStep::Send(next) => wire = next,
                SenderStep::Done => unreachable!("file completion seen above"),
                other => panic!("unexpected step {other:?}"),
            }
        }
    }

    #[test]
    fn packet_roundtrips() {
        let pkts = [
            TftpPacket::Wrq {
                filename: "f.swl",
                mode: "octet",
            },
            TftpPacket::Rrq {
                filename: "x",
                mode: "netascii",
            },
            TftpPacket::Data {
                block: 7,
                data: b"abc",
            },
            TftpPacket::Ack { block: 9 },
            TftpPacket::Error {
                code: 2,
                msg: "nope",
            },
        ];
        for p in &pkts {
            let bytes = p.emit();
            assert_eq!(TftpPacket::parse(&bytes).as_ref(), Some(p));
        }
    }

    #[test]
    fn short_transfer() {
        let f = transfer(b"tiny module".to_vec());
        assert_eq!(f.filename, "switchlet.swl");
        assert_eq!(f.data, b"tiny module");
    }

    #[test]
    fn multi_block_transfer() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 256) as u8).collect();
        assert_eq!(transfer(data.clone()).data, data);
    }

    #[test]
    fn exact_multiple_of_block_size() {
        // 1024 bytes = 2 full blocks + required empty terminator.
        let data = vec![0xAA; 1024];
        assert_eq!(transfer(data.clone()).data, data);
    }

    #[test]
    fn empty_file() {
        assert_eq!(transfer(Vec::new()).data, Vec::<u8>::new());
    }

    #[test]
    fn rrq_refused() {
        let mut server = TftpServer::new();
        let rrq = TftpPacket::Rrq {
            filename: "secrets",
            mode: "octet",
        }
        .emit();
        let (reply, file) = server.on_packet(PEER, &rrq);
        assert!(file.is_none());
        assert!(matches!(
            TftpPacket::parse(&reply.unwrap()),
            Some(TftpPacket::Error { code: 2, .. })
        ));
        assert_eq!(server.refused, 1);
    }

    #[test]
    fn netascii_mode_refused() {
        let mut server = TftpServer::new();
        let wrq = TftpPacket::Wrq {
            filename: "f",
            mode: "netascii",
        }
        .emit();
        let (reply, _) = server.on_packet(PEER, &wrq);
        assert!(matches!(
            TftpPacket::parse(&reply.unwrap()),
            Some(TftpPacket::Error { .. })
        ));
    }

    #[test]
    fn duplicate_data_block_reacked() {
        let mut server = TftpServer::new();
        let wrq = TftpPacket::Wrq {
            filename: "f",
            mode: "octet",
        }
        .emit();
        server.on_packet(PEER, &wrq);
        let d1 = TftpPacket::Data {
            block: 1,
            data: &[1u8; BLOCK_SIZE],
        }
        .emit();
        let (r1, _) = server.on_packet(PEER, &d1);
        assert!(matches!(
            TftpPacket::parse(&r1.unwrap()),
            Some(TftpPacket::Ack { block: 1 })
        ));
        // Retransmitted duplicate: re-acked, data not appended twice.
        let (r2, f) = server.on_packet(PEER, &d1);
        assert!(f.is_none());
        assert!(matches!(
            TftpPacket::parse(&r2.unwrap()),
            Some(TftpPacket::Ack { block: 1 })
        ));
        let d2 = TftpPacket::Data {
            block: 2,
            data: b"end",
        }
        .emit();
        let (_, f) = server.on_packet(PEER, &d2);
        assert_eq!(f.unwrap().data.len(), BLOCK_SIZE + 3);
    }

    #[test]
    fn out_of_sequence_aborts() {
        let mut server = TftpServer::new();
        server.on_packet(
            PEER,
            &TftpPacket::Wrq {
                filename: "f",
                mode: "octet",
            }
            .emit(),
        );
        let d9 = TftpPacket::Data {
            block: 9,
            data: b"x",
        }
        .emit();
        let (reply, _) = server.on_packet(PEER, &d9);
        assert!(matches!(
            TftpPacket::parse(&reply.unwrap()),
            Some(TftpPacket::Error { code: 4, .. })
        ));
    }

    #[test]
    fn sender_retransmits_current() {
        let sender = TftpSender::new("f", vec![1, 2, 3]);
        // Before any ack, current() is the WRQ.
        assert_eq!(sender.current().unwrap(), sender.start());
    }
}
