//! TFTP (RFC 1350), restricted exactly as the paper restricts it: "this
//! server only services write requests in binary format. Any such file is
//! taken to be a Caml byte code file and, upon successful receipt, an
//! attempt is made to dynamically load and evaluate the file."
//!
//! Both ends are pure state machines — the embedding node supplies packet
//! transport and retransmission timers.

use std::collections::HashMap;
use std::net::Ipv4Addr;

/// TFTP data block size.
pub const BLOCK_SIZE: usize = 512;

/// A parsed TFTP packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TftpPacket<'a> {
    /// Read request (always refused by our server).
    Rrq {
        /// Requested file name.
        filename: &'a str,
        /// Transfer mode.
        mode: &'a str,
    },
    /// Write request.
    Wrq {
        /// Target file name.
        filename: &'a str,
        /// Transfer mode; only "octet" (binary) is served.
        mode: &'a str,
    },
    /// A data block.
    Data {
        /// Block number (1-based).
        block: u16,
        /// Up to 512 octets; fewer ends the transfer.
        data: &'a [u8],
    },
    /// Acknowledgement of a block (0 acknowledges the WRQ).
    Ack {
        /// Acknowledged block number.
        block: u16,
    },
    /// Error.
    Error {
        /// Error code.
        code: u16,
        /// Human-readable message.
        msg: &'a str,
    },
}

fn read_cstr(buf: &[u8]) -> Option<(&str, &[u8])> {
    let nul = buf.iter().position(|&b| b == 0)?;
    let s = core::str::from_utf8(&buf[..nul]).ok()?;
    Some((s, &buf[nul + 1..]))
}

impl<'a> TftpPacket<'a> {
    /// Parse a TFTP packet; `None` on malformed input.
    pub fn parse(buf: &'a [u8]) -> Option<TftpPacket<'a>> {
        if buf.len() < 2 {
            return None;
        }
        let op = u16::from_be_bytes([buf[0], buf[1]]);
        let rest = &buf[2..];
        match op {
            1 | 2 => {
                let (filename, rest) = read_cstr(rest)?;
                let (mode, _) = read_cstr(rest)?;
                Some(if op == 1 {
                    TftpPacket::Rrq { filename, mode }
                } else {
                    TftpPacket::Wrq { filename, mode }
                })
            }
            3 => {
                if rest.len() < 2 || rest.len() > 2 + BLOCK_SIZE {
                    return None;
                }
                Some(TftpPacket::Data {
                    block: u16::from_be_bytes([rest[0], rest[1]]),
                    data: &rest[2..],
                })
            }
            4 => {
                if rest.len() < 2 {
                    return None;
                }
                Some(TftpPacket::Ack {
                    block: u16::from_be_bytes([rest[0], rest[1]]),
                })
            }
            5 => {
                if rest.len() < 2 {
                    return None;
                }
                let (msg, _) = read_cstr(&rest[2..])?;
                Some(TftpPacket::Error {
                    code: u16::from_be_bytes([rest[0], rest[1]]),
                    msg,
                })
            }
            _ => None,
        }
    }

    /// Assemble this packet.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            TftpPacket::Rrq { filename, mode } | TftpPacket::Wrq { filename, mode } => {
                let op: u16 = if matches!(self, TftpPacket::Rrq { .. }) {
                    1
                } else {
                    2
                };
                buf.extend_from_slice(&op.to_be_bytes());
                buf.extend_from_slice(filename.as_bytes());
                buf.push(0);
                buf.extend_from_slice(mode.as_bytes());
                buf.push(0);
            }
            TftpPacket::Data { block, data } => {
                assert!(data.len() <= BLOCK_SIZE);
                buf.extend_from_slice(&3u16.to_be_bytes());
                buf.extend_from_slice(&block.to_be_bytes());
                buf.extend_from_slice(data);
            }
            TftpPacket::Ack { block } => {
                buf.extend_from_slice(&4u16.to_be_bytes());
                buf.extend_from_slice(&block.to_be_bytes());
            }
            TftpPacket::Error { code, msg } => {
                buf.extend_from_slice(&5u16.to_be_bytes());
                buf.extend_from_slice(&code.to_be_bytes());
                buf.extend_from_slice(msg.as_bytes());
                buf.push(0);
            }
        }
        buf
    }
}

/// A completed upload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceivedFile {
    /// The name from the WRQ.
    pub filename: String,
    /// Reassembled contents.
    pub data: Vec<u8>,
}

struct Transfer {
    filename: String,
    next_block: u16,
    data: Vec<u8>,
    /// Timestamp of the last packet seen on this session (whatever clock
    /// the embedding node passes to [`TftpServer::on_packet_at`]; 0 when
    /// driven through the clockless [`TftpServer::on_packet`]).
    last_activity_ns: u64,
}

/// Sessions idle longer than this are expired (lazily, on the next
/// packet): a sender stranded by a server crash must not pin state
/// forever, and a fresh WRQ after the stall starts clean.
pub const IDLE_SESSION_NS: u64 = 30_000_000_000; // 30 s

/// The write-only, binary-only TFTP server.
#[derive(Default)]
pub struct TftpServer {
    transfers: HashMap<(Ipv4Addr, u16), Transfer>,
    /// Completed uploads served so far.
    pub completed: u64,
    /// Requests refused (RRQ, bad mode, bad sequence).
    pub refused: u64,
    /// Sessions dropped by idle expiry.
    pub expired: u64,
}

impl TftpServer {
    /// Fresh server.
    pub fn new() -> TftpServer {
        TftpServer::default()
    }

    /// In-progress upload sessions.
    pub fn active_transfers(&self) -> usize {
        self.transfers.len()
    }

    /// Handle one packet from `peer` with no notion of time (no idle
    /// expiry). Equivalent to [`TftpServer::on_packet_at`] at a frozen
    /// clock.
    pub fn on_packet(
        &mut self,
        peer: (Ipv4Addr, u16),
        packet: &[u8],
    ) -> (Option<Vec<u8>>, Option<ReceivedFile>) {
        self.on_packet_at(peer, packet, 0)
    }

    /// Handle one packet from `peer` at `now_ns` on the embedding node's
    /// clock. Returns the reply to send (if any) and the completed file
    /// (if this packet finished an upload). Sessions idle longer than
    /// [`IDLE_SESSION_NS`] are expired before the packet is processed,
    /// so a stale half-transfer cannot shadow a fresh WRQ or accept a
    /// wildly late DATA block.
    pub fn on_packet_at(
        &mut self,
        peer: (Ipv4Addr, u16),
        packet: &[u8],
        now_ns: u64,
    ) -> (Option<Vec<u8>>, Option<ReceivedFile>) {
        let before = self.transfers.len();
        self.transfers
            .retain(|_, t| now_ns.saturating_sub(t.last_activity_ns) < IDLE_SESSION_NS);
        self.expired += (before - self.transfers.len()) as u64;
        let Some(pkt) = TftpPacket::parse(packet) else {
            return (None, None); // malformed: silently dropped
        };
        match pkt {
            TftpPacket::Rrq { .. } => {
                self.refused += 1;
                (
                    Some(
                        TftpPacket::Error {
                            code: 2,
                            msg: "write-only server",
                        }
                        .emit(),
                    ),
                    None,
                )
            }
            TftpPacket::Wrq { filename, mode } => {
                if !mode.eq_ignore_ascii_case("octet") {
                    self.refused += 1;
                    return (
                        Some(
                            TftpPacket::Error {
                                code: 0,
                                msg: "binary (octet) mode only",
                            }
                            .emit(),
                        ),
                        None,
                    );
                }
                self.transfers.insert(
                    peer,
                    Transfer {
                        filename: filename.to_owned(),
                        next_block: 1,
                        data: Vec::new(),
                        last_activity_ns: now_ns,
                    },
                );
                (Some(TftpPacket::Ack { block: 0 }.emit()), None)
            }
            TftpPacket::Data { block, data } => {
                let Some(t) = self.transfers.get_mut(&peer) else {
                    self.refused += 1;
                    return (
                        Some(
                            TftpPacket::Error {
                                code: 5,
                                msg: "no transfer in progress",
                            }
                            .emit(),
                        ),
                        None,
                    );
                };
                t.last_activity_ns = now_ns;
                if block < t.next_block {
                    // Duplicate of an already-received block (a lost ACK
                    // made the sender retransmit): re-ack, never
                    // re-append. Only a *future* block is a protocol
                    // violation.
                    return (Some(TftpPacket::Ack { block }.emit()), None);
                }
                if block != t.next_block {
                    self.refused += 1;
                    self.transfers.remove(&peer);
                    return (
                        Some(
                            TftpPacket::Error {
                                code: 4,
                                msg: "block out of sequence",
                            }
                            .emit(),
                        ),
                        None,
                    );
                }
                t.data.extend_from_slice(data);
                t.next_block = t.next_block.wrapping_add(1);
                let ack = TftpPacket::Ack { block }.emit();
                if data.len() < BLOCK_SIZE {
                    let t = self.transfers.remove(&peer).unwrap();
                    self.completed += 1;
                    (
                        Some(ack),
                        Some(ReceivedFile {
                            filename: t.filename,
                            data: t.data,
                        }),
                    )
                } else {
                    (Some(ack), None)
                }
            }
            TftpPacket::Ack { .. } | TftpPacket::Error { .. } => {
                // A pure write server never expects these; drop.
                (None, None)
            }
        }
    }
}

/// Why an upload attempt failed — the adaptive-retransmission layer
/// keys its recovery policy off this.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// The retry budget ran out with no server response (assigned by the
    /// embedding transport, never by the state machine itself).
    Timeout,
    /// The server refused or lost the session (write-only violation,
    /// out-of-sequence, "no transfer in progress" after a crash, ...).
    /// A fresh WRQ may well succeed — restart and re-send.
    ServerError,
    /// The receiver's integrity gate rejected the completed image: the
    /// bits that arrived did not match the sealed digest. Re-sending
    /// gives the payload another chance through the lossy medium.
    IntegrityReject,
}

impl FailureClass {
    /// Stable lowercase label (report/probe rendering).
    pub fn label(&self) -> &'static str {
        match self {
            FailureClass::Timeout => "timeout",
            FailureClass::ServerError => "server_error",
            FailureClass::IntegrityReject => "integrity_reject",
        }
    }
}

/// What the sender should do next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SenderStep {
    /// Transmit these bytes.
    Send(Vec<u8>),
    /// Transfer complete.
    Done,
    /// The server refused the transfer. The sender is parked until
    /// [`TftpSender::restart`]; the class says whether re-sending is
    /// worth it.
    Failed(FailureClass, String),
    /// Ignore this packet (duplicate/foreign).
    Ignore,
}

/// The uploading client: sends a WRQ then data blocks, advancing on ACKs.
pub struct TftpSender {
    filename: String,
    data: Vec<u8>,
    /// Next block to send (0 = WRQ outstanding).
    acked_through: Option<u16>,
    done: bool,
}

impl TftpSender {
    /// Prepare an upload.
    pub fn new(filename: impl Into<String>, data: Vec<u8>) -> TftpSender {
        TftpSender {
            filename: filename.into(),
            data,
            acked_through: None,
            done: false,
        }
    }

    /// The first packet (WRQ). Also what to retransmit if no ACK arrives.
    pub fn start(&self) -> Vec<u8> {
        TftpPacket::Wrq {
            filename: &self.filename,
            mode: "octet",
        }
        .emit()
    }

    fn block_payload(&self, block: u16) -> &[u8] {
        let start = (block as usize - 1) * BLOCK_SIZE;
        let end = (start + BLOCK_SIZE).min(self.data.len());
        &self.data[start.min(self.data.len())..end]
    }

    fn total_blocks(&self) -> u16 {
        (self.data.len() / BLOCK_SIZE + 1) as u16
    }

    /// The packet currently outstanding (for retransmission).
    pub fn current(&self) -> Option<Vec<u8>> {
        if self.done {
            return None;
        }
        match self.acked_through {
            None => Some(self.start()),
            Some(b) => {
                let next = b + 1;
                Some(
                    TftpPacket::Data {
                        block: next,
                        data: self.block_payload(next),
                    }
                    .emit(),
                )
            }
        }
    }

    /// Handle a packet from the server.
    pub fn on_packet(&mut self, packet: &[u8]) -> SenderStep {
        if self.done {
            return SenderStep::Ignore;
        }
        match TftpPacket::parse(packet) {
            Some(TftpPacket::Ack { block }) => {
                let expected = match self.acked_through {
                    None => 0,
                    Some(b) => b + 1,
                };
                if block != expected {
                    return SenderStep::Ignore;
                }
                if block >= self.total_blocks() {
                    self.done = true;
                    return SenderStep::Done;
                }
                self.acked_through = Some(block);
                let next = block + 1;
                SenderStep::Send(
                    TftpPacket::Data {
                        block: next,
                        data: self.block_payload(next),
                    }
                    .emit(),
                )
            }
            Some(TftpPacket::Error { code, msg }) => {
                self.done = true;
                // The loader's integrity gate rejects with a message the
                // sender can recognize; everything else is a generic
                // server-side refusal.
                let class = if msg.contains("integrity") {
                    FailureClass::IntegrityReject
                } else {
                    FailureClass::ServerError
                };
                SenderStep::Failed(class, format!("tftp error {code}: {msg}"))
            }
            _ => SenderStep::Ignore,
        }
    }

    /// True once the final block has been acknowledged.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Rewind to a fresh session: the next [`TftpSender::start`] /
    /// [`TftpSender::current`] is a new WRQ for the same payload. This
    /// is the crash-resume path — after a server restart (or an
    /// integrity reject) the old session is gone, and RFC 1350 has no
    /// mid-transfer resume, so the upload begins again from block 1.
    pub fn restart(&mut self) {
        self.acked_through = None;
        self.done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEER: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 5), 1069);

    /// Run a full lossless transfer through both state machines.
    fn transfer(data: Vec<u8>) -> ReceivedFile {
        let mut server = TftpServer::new();
        let mut sender = TftpSender::new("switchlet.swl", data);
        let mut wire = sender.start();
        loop {
            let (reply, file) = server.on_packet(PEER, &wire);
            if let Some(f) = file {
                // Sender still needs the final ack.
                let step = sender.on_packet(&reply.unwrap());
                assert_eq!(step, SenderStep::Done);
                assert!(sender.is_done());
                return f;
            }
            match sender.on_packet(&reply.expect("server always replies here")) {
                SenderStep::Send(next) => wire = next,
                SenderStep::Done => unreachable!("file completion seen above"),
                other => panic!("unexpected step {other:?}"),
            }
        }
    }

    #[test]
    fn packet_roundtrips() {
        let pkts = [
            TftpPacket::Wrq {
                filename: "f.swl",
                mode: "octet",
            },
            TftpPacket::Rrq {
                filename: "x",
                mode: "netascii",
            },
            TftpPacket::Data {
                block: 7,
                data: b"abc",
            },
            TftpPacket::Ack { block: 9 },
            TftpPacket::Error {
                code: 2,
                msg: "nope",
            },
        ];
        for p in &pkts {
            let bytes = p.emit();
            assert_eq!(TftpPacket::parse(&bytes).as_ref(), Some(p));
        }
    }

    #[test]
    fn short_transfer() {
        let f = transfer(b"tiny module".to_vec());
        assert_eq!(f.filename, "switchlet.swl");
        assert_eq!(f.data, b"tiny module");
    }

    #[test]
    fn multi_block_transfer() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 256) as u8).collect();
        assert_eq!(transfer(data.clone()).data, data);
    }

    #[test]
    fn exact_multiple_of_block_size() {
        // 1024 bytes = 2 full blocks + required empty terminator.
        let data = vec![0xAA; 1024];
        assert_eq!(transfer(data.clone()).data, data);
    }

    #[test]
    fn empty_file() {
        assert_eq!(transfer(Vec::new()).data, Vec::<u8>::new());
    }

    #[test]
    fn rrq_refused() {
        let mut server = TftpServer::new();
        let rrq = TftpPacket::Rrq {
            filename: "secrets",
            mode: "octet",
        }
        .emit();
        let (reply, file) = server.on_packet(PEER, &rrq);
        assert!(file.is_none());
        assert!(matches!(
            TftpPacket::parse(&reply.unwrap()),
            Some(TftpPacket::Error { code: 2, .. })
        ));
        assert_eq!(server.refused, 1);
    }

    #[test]
    fn netascii_mode_refused() {
        let mut server = TftpServer::new();
        let wrq = TftpPacket::Wrq {
            filename: "f",
            mode: "netascii",
        }
        .emit();
        let (reply, _) = server.on_packet(PEER, &wrq);
        assert!(matches!(
            TftpPacket::parse(&reply.unwrap()),
            Some(TftpPacket::Error { .. })
        ));
    }

    #[test]
    fn duplicate_data_block_reacked() {
        let mut server = TftpServer::new();
        let wrq = TftpPacket::Wrq {
            filename: "f",
            mode: "octet",
        }
        .emit();
        server.on_packet(PEER, &wrq);
        let d1 = TftpPacket::Data {
            block: 1,
            data: &[1u8; BLOCK_SIZE],
        }
        .emit();
        let (r1, _) = server.on_packet(PEER, &d1);
        assert!(matches!(
            TftpPacket::parse(&r1.unwrap()),
            Some(TftpPacket::Ack { block: 1 })
        ));
        // Retransmitted duplicate: re-acked, data not appended twice.
        let (r2, f) = server.on_packet(PEER, &d1);
        assert!(f.is_none());
        assert!(matches!(
            TftpPacket::parse(&r2.unwrap()),
            Some(TftpPacket::Ack { block: 1 })
        ));
        let d2 = TftpPacket::Data {
            block: 2,
            data: b"end",
        }
        .emit();
        let (_, f) = server.on_packet(PEER, &d2);
        assert_eq!(f.unwrap().data.len(), BLOCK_SIZE + 3);
    }

    #[test]
    fn out_of_sequence_aborts() {
        let mut server = TftpServer::new();
        server.on_packet(
            PEER,
            &TftpPacket::Wrq {
                filename: "f",
                mode: "octet",
            }
            .emit(),
        );
        let d9 = TftpPacket::Data {
            block: 9,
            data: b"x",
        }
        .emit();
        let (reply, _) = server.on_packet(PEER, &d9);
        assert!(matches!(
            TftpPacket::parse(&reply.unwrap()),
            Some(TftpPacket::Error { code: 4, .. })
        ));
    }

    #[test]
    fn sender_retransmits_current() {
        let sender = TftpSender::new("f", vec![1, 2, 3]);
        // Before any ack, current() is the WRQ.
        assert_eq!(sender.current().unwrap(), sender.start());
    }

    #[test]
    fn stale_ack_is_ignored_by_sender() {
        let mut server = TftpServer::new();
        let mut sender = TftpSender::new("f", vec![0xCC; 700]);
        let (ack0, _) = server.on_packet(PEER, &sender.start());
        let d1 = match sender.on_packet(&ack0.unwrap()) {
            SenderStep::Send(p) => p,
            other => panic!("expected first data block, got {other:?}"),
        };
        let (ack1, _) = server.on_packet(PEER, &d1);
        let ack1 = ack1.unwrap();
        let d2 = match sender.on_packet(&ack1) {
            SenderStep::Send(p) => p,
            other => panic!("expected second data block, got {other:?}"),
        };
        // A duplicated ACK for block 1 (the network replayed it) must not
        // advance or reset the sender: block 2 stays outstanding.
        assert_eq!(sender.on_packet(&ack1), SenderStep::Ignore);
        assert_eq!(sender.current().unwrap(), d2);
        let (_, file) = server.on_packet(PEER, &d2);
        assert_eq!(file.unwrap().data.len(), 700);
    }

    #[test]
    fn duplicate_final_block_reacked_without_double_completion() {
        let mut server = TftpServer::new();
        server.on_packet(
            PEER,
            &TftpPacket::Wrq {
                filename: "f",
                mode: "octet",
            }
            .emit(),
        );
        let fin = TftpPacket::Data {
            block: 1,
            data: b"short",
        }
        .emit();
        let (r1, f1) = server.on_packet(PEER, &fin);
        assert!(matches!(
            TftpPacket::parse(&r1.unwrap()),
            Some(TftpPacket::Ack { block: 1 })
        ));
        assert_eq!(f1.unwrap().data, b"short");
        assert_eq!(server.completed, 1);
        // The final ACK was lost; the sender retransmits the final block.
        // With the session gone this is "no transfer in progress" — the
        // sender treats that error as terminal only if it never saw Done,
        // which it did; the important property is the server does not
        // complete (or load) the file twice.
        let (r2, f2) = server.on_packet(PEER, &fin);
        assert!(f2.is_none());
        assert!(matches!(
            TftpPacket::parse(&r2.unwrap()),
            Some(TftpPacket::Error { code: 5, .. })
        ));
        assert_eq!(server.completed, 1);
    }

    #[test]
    fn zero_length_wrq_completes_with_empty_terminator() {
        let mut server = TftpServer::new();
        let mut sender = TftpSender::new("empty.swl", Vec::new());
        let (ack0, _) = server.on_packet(PEER, &sender.start());
        // The only data block is the zero-length terminator.
        let d1 = match sender.on_packet(&ack0.unwrap()) {
            SenderStep::Send(p) => p,
            other => panic!("expected terminator block, got {other:?}"),
        };
        assert_eq!(
            TftpPacket::parse(&d1),
            Some(TftpPacket::Data {
                block: 1,
                data: &[]
            })
        );
        let (ack1, file) = server.on_packet(PEER, &d1);
        assert_eq!(file.unwrap().data, Vec::<u8>::new());
        assert_eq!(sender.on_packet(&ack1.unwrap()), SenderStep::Done);
    }

    #[test]
    fn mid_transfer_server_reset_recovers_via_restart() {
        let mut server = TftpServer::new();
        let mut sender = TftpSender::new("f", vec![0xEE; 1300]);
        let (ack0, _) = server.on_packet(PEER, &sender.start());
        let d1 = match sender.on_packet(&ack0.unwrap()) {
            SenderStep::Send(p) => p,
            other => panic!("expected data, got {other:?}"),
        };
        let (ack1, _) = server.on_packet(PEER, &d1);
        let d2 = match sender.on_packet(&ack1.unwrap()) {
            SenderStep::Send(p) => p,
            other => panic!("expected data, got {other:?}"),
        };
        // The server crashes and restarts: all session state is gone.
        server = TftpServer::new();
        let (err, _) = server.on_packet(PEER, &d2);
        let step = sender.on_packet(&err.unwrap());
        match step {
            SenderStep::Failed(class, _) => assert_eq!(class, FailureClass::ServerError),
            other => panic!("expected classified failure, got {other:?}"),
        }
        assert!(sender.current().is_none(), "failed sender is parked");
        // Recovery: restart() rewinds to a fresh WRQ and the whole file
        // goes through the new server instance.
        sender.restart();
        let mut wire = sender.current().expect("restart re-arms the WRQ");
        assert_eq!(wire, sender.start());
        loop {
            let (reply, file) = server.on_packet(PEER, &wire);
            if let Some(f) = file {
                assert_eq!(f.data, vec![0xEE; 1300]);
                assert_eq!(sender.on_packet(&reply.unwrap()), SenderStep::Done);
                break;
            }
            match sender.on_packet(&reply.unwrap()) {
                SenderStep::Send(next) => wire = next,
                other => panic!("unexpected step {other:?}"),
            }
        }
    }

    #[test]
    fn integrity_error_classified_for_resend() {
        let mut sender = TftpSender::new("f", vec![1]);
        let err = TftpPacket::Error {
            code: 0,
            msg: "integrity check failed",
        }
        .emit();
        match sender.on_packet(&err) {
            SenderStep::Failed(class, msg) => {
                assert_eq!(class, FailureClass::IntegrityReject);
                assert!(msg.contains("integrity"));
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(FailureClass::IntegrityReject.label(), "integrity_reject");
    }

    #[test]
    fn idle_sessions_expire_and_fresh_wrq_starts_clean() {
        let mut server = TftpServer::new();
        let wrq = TftpPacket::Wrq {
            filename: "f",
            mode: "octet",
        }
        .emit();
        server.on_packet_at(PEER, &wrq, 1_000);
        let d1 = TftpPacket::Data {
            block: 1,
            data: &[7u8; BLOCK_SIZE],
        }
        .emit();
        server.on_packet_at(PEER, &d1, 2_000);
        assert_eq!(server.active_transfers(), 1);
        // The sender crashes and comes back much later with a new WRQ:
        // the stale half-transfer is expired, the new session starts at
        // block 1 and completes with only its own bytes.
        let later = 2_000 + IDLE_SESSION_NS;
        let (ack, _) = server.on_packet_at(PEER, &wrq, later);
        assert!(matches!(
            TftpPacket::parse(&ack.unwrap()),
            Some(TftpPacket::Ack { block: 0 })
        ));
        assert_eq!(server.expired, 1);
        assert_eq!(server.active_transfers(), 1);
        let fin = TftpPacket::Data {
            block: 1,
            data: b"fresh",
        }
        .emit();
        let (_, file) = server.on_packet_at(PEER, &fin, later + 1);
        assert_eq!(file.unwrap().data, b"fresh");
    }

    #[test]
    fn late_data_after_expiry_is_refused_not_appended() {
        let mut server = TftpServer::new();
        let wrq = TftpPacket::Wrq {
            filename: "f",
            mode: "octet",
        }
        .emit();
        server.on_packet_at(PEER, &wrq, 0);
        // A wildly late DATA block (the sender stalled past the idle
        // horizon) must hit an expired session, not a live one.
        let d1 = TftpPacket::Data {
            block: 1,
            data: b"late",
        }
        .emit();
        let (reply, file) = server.on_packet_at(PEER, &d1, IDLE_SESSION_NS + 1);
        assert!(file.is_none());
        assert!(matches!(
            TftpPacket::parse(&reply.unwrap()),
            Some(TftpPacket::Error { code: 5, .. })
        ));
        assert_eq!(server.expired, 1);
        assert_eq!(server.active_transfers(), 0);
    }
}
