//! ICMP echo (RFC 792) — the substrate for the paper's `ping` latency
//! measurements (Figure 9).

use crate::checksum::{checksum, verify, Checksum};

/// ICMP header length for echo messages.
pub const HEADER_LEN: usize = 8;

/// Echo message kinds.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EchoKind {
    /// Type 8: echo request.
    Request,
    /// Type 0: echo reply.
    Reply,
}

/// A parsed echo message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Echo<'a> {
    /// Request or reply.
    pub kind: EchoKind,
    /// Identifier (ping session).
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
    /// Payload (ping stuffs a timestamp + filler here).
    pub payload: &'a [u8],
}

/// Errors from [`Echo::parse`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IcmpError {
    /// Too short.
    Truncated,
    /// Checksum failed.
    BadChecksum,
    /// Not an echo request/reply (out of scope).
    NotEcho,
}

impl core::fmt::Display for IcmpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IcmpError::Truncated => write!(f, "truncated ICMP message"),
            IcmpError::BadChecksum => write!(f, "ICMP checksum mismatch"),
            IcmpError::NotEcho => write!(f, "not an ICMP echo message"),
        }
    }
}

impl std::error::Error for IcmpError {}

impl<'a> Echo<'a> {
    /// Parse an ICMP message, accepting only echo request/reply.
    pub fn parse(buf: &'a [u8]) -> Result<Echo<'a>, IcmpError> {
        if buf.len() < HEADER_LEN {
            return Err(IcmpError::Truncated);
        }
        let kind = match (buf[0], buf[1]) {
            (8, 0) => EchoKind::Request,
            (0, 0) => EchoKind::Reply,
            _ => return Err(IcmpError::NotEcho),
        };
        if !verify(buf) {
            return Err(IcmpError::BadChecksum);
        }
        Ok(Echo {
            kind,
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            seq: u16::from_be_bytes([buf[6], buf[7]]),
            payload: &buf[HEADER_LEN..],
        })
    }

    /// Assemble an echo message.
    pub fn emit(kind: EchoKind, ident: u16, seq: u16, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        Echo::emit_into(&mut buf, kind, ident, seq, payload);
        buf
    }

    /// Append an echo message to `out` (reusable-buffer form: the ping
    /// and echo-reply hot paths build into a scratch vector instead of
    /// allocating per message).
    pub fn emit_into(out: &mut Vec<u8>, kind: EchoKind, ident: u16, seq: u16, payload: &[u8]) {
        let start = out.len();
        out.reserve(HEADER_LEN + payload.len());
        out.push(match kind {
            EchoKind::Request => 8,
            EchoKind::Reply => 0,
        });
        out.push(0); // code
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&ident.to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(payload);
        let c = checksum(&out[start..]);
        out[start + 2..start + 4].copy_from_slice(&c.to_be_bytes());
    }

    /// Like [`Echo::emit_into`], but with the payload's checksum
    /// contribution supplied precomputed (a [`Checksum`] fed exactly the
    /// payload bytes). The per-message checksum work drops to the 8
    /// header bytes — the ping hot path reuses its filler's sum across
    /// the whole request train.
    pub fn emit_into_presummed(
        out: &mut Vec<u8>,
        kind: EchoKind,
        ident: u16,
        seq: u16,
        payload: &[u8],
        payload_sum: Checksum,
    ) {
        let start = out.len();
        out.reserve(HEADER_LEN + payload.len());
        out.push(match kind {
            EchoKind::Request => 8,
            EchoKind::Reply => 0,
        });
        out.push(0); // code
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&ident.to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(payload);
        let mut c = Checksum::new();
        c.add(&out[start..start + HEADER_LEN]);
        c.add_partial(payload_sum);
        let cksum = c.finish();
        out[start + 2..start + 4].copy_from_slice(&cksum.to_be_bytes());
        debug_assert_eq!(
            &out[start..],
            Echo::emit(kind, ident, seq, payload).as_slice(),
            "presummed emission must be byte-identical"
        );
    }

    /// Append the reply to a **checksum-verified** echo request, given the
    /// request's raw ICMP bytes: one memcpy plus two patched fields. The
    /// reply checksum is derived in O(1) (RFC 1624-style incremental
    /// update: only the type word changes, `0x0800` → `0x0000`), skipping
    /// the full per-reply checksum pass. Callers must have validated
    /// `request` (e.g. via [`Echo::parse`]); the derivation inherits its
    /// correctness from that validation.
    pub fn reply_from_verified(out: &mut Vec<u8>, request: &[u8]) {
        debug_assert!(request.len() >= HEADER_LEN && request[0] == 8 && request[1] == 0);
        let start = out.len();
        out.extend_from_slice(request);
        out[start] = 0; // type: echo reply
        let hc = u16::from_be_bytes([request[2], request[3]]);
        // The summed words lose 0x0800, so the checksum field absorbs it
        // (ones'-complement arithmetic: end-around carry).
        let (s, carry) = hc.overflowing_add(0x0800);
        let mut hc2 = s + carry as u16;
        if hc2 == 0xFFFF {
            // Ambiguous ones'-complement representative (the reply's sum
            // is congruent to ±0): the incremental update cannot tell
            // whether a full pass would emit 0x0000 or 0xFFFF here, and
            // the wire bytes must match [`Echo::emit`] exactly. Rare —
            // defer to the full checksum.
            out[start + 2..start + 4].copy_from_slice(&[0, 0]);
            hc2 = checksum(&out[start..]);
        }
        out[start + 2..start + 4].copy_from_slice(&hc2.to_be_bytes());
        debug_assert!(
            crate::checksum::verify(&out[start..]),
            "derived reply checksum must verify"
        );
        debug_assert_eq!(
            &out[start..],
            Echo::parse(request)
                .map(|e| Echo::emit(EchoKind::Reply, e.ident, e.seq, e.payload))
                .expect("caller passes a verified request")
                .as_slice(),
            "derived reply must be byte-identical to full emission"
        );
    }

    /// The reply to this request (echoes the payload back).
    pub fn reply(&self) -> Vec<u8> {
        Echo::emit(EchoKind::Reply, self.ident, self.seq, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_roundtrip() {
        let msg = Echo::emit(EchoKind::Request, 0x1234, 7, b"timestamp+fill");
        let e = Echo::parse(&msg).unwrap();
        assert_eq!(e.kind, EchoKind::Request);
        assert_eq!(e.ident, 0x1234);
        assert_eq!(e.seq, 7);
        assert_eq!(e.payload, b"timestamp+fill");
    }

    #[test]
    fn reply_echoes_payload() {
        let msg = Echo::emit(EchoKind::Request, 1, 2, b"data");
        let req = Echo::parse(&msg).unwrap();
        let reply_bytes = req.reply();
        let rep = Echo::parse(&reply_bytes).unwrap();
        assert_eq!(rep.kind, EchoKind::Reply);
        assert_eq!(rep.ident, 1);
        assert_eq!(rep.seq, 2);
        assert_eq!(rep.payload, b"data");
    }

    #[test]
    fn presummed_emission_matches_plain() {
        for len in [0usize, 1, 7, 512] {
            let payload: Vec<u8> = (0..len as u32).map(|i| (i * 37) as u8).collect();
            let mut sum = Checksum::new();
            sum.add(&payload);
            let mut fast = Vec::new();
            Echo::emit_into_presummed(&mut fast, EchoKind::Request, 0x42, 7, &payload, sum);
            assert_eq!(
                fast,
                Echo::emit(EchoKind::Request, 0x42, 7, &payload),
                "len {len}"
            );
        }
    }

    #[test]
    fn derived_reply_matches_full_emission() {
        for len in [0usize, 1, 13, 512, 1400] {
            let payload: Vec<u8> = (0..len as u32).map(|i| (i * 11) as u8).collect();
            for ident in [0u16, 1, 0x1234, 0xFFFF] {
                let request = Echo::emit(EchoKind::Request, ident, 9, &payload);
                let mut derived = Vec::new();
                Echo::reply_from_verified(&mut derived, &request);
                let full = Echo::emit(EchoKind::Reply, ident, 9, &payload);
                assert_eq!(derived, full, "len {len} ident {ident:#x}");
            }
        }
    }

    /// The ±0 ambiguity: a payload whose reply sums to a multiple of
    /// 0xFFFF makes the incremental checksum land on the 0xFFFF
    /// representative where full emission writes 0x0000. The derivation
    /// must detect this and still be byte-identical.
    #[test]
    fn derived_reply_handles_zero_sum_payloads() {
        // ident 0x0001, seq 0, payload [0xFF, 0xFE]: reply words sum to
        // 0xFFFF (≡ −0).
        let request = Echo::emit(EchoKind::Request, 0x0001, 0, &[0xFF, 0xFE]);
        let mut derived = Vec::new();
        Echo::reply_from_verified(&mut derived, &request);
        assert_eq!(
            derived,
            Echo::emit(EchoKind::Reply, 0x0001, 0, &[0xFF, 0xFE])
        );
        // And the genuinely all-zero reply (where 0xFFFF *is* correct).
        let request = Echo::emit(EchoKind::Request, 0, 0, &[]);
        let mut derived = Vec::new();
        Echo::reply_from_verified(&mut derived, &request);
        assert_eq!(derived, Echo::emit(EchoKind::Reply, 0, 0, &[]));
        // Sweep 16-bit payload space around the wrap for good measure.
        for w in [0xFFFDu16, 0xFFFE, 0xFFFF, 0, 1, 0xF7FE, 0xF7FF, 0xF800] {
            let payload = w.to_be_bytes();
            let request = Echo::emit(EchoKind::Request, 0x0001, 0, &payload);
            let mut derived = Vec::new();
            Echo::reply_from_verified(&mut derived, &request);
            assert_eq!(
                derived,
                Echo::emit(EchoKind::Reply, 0x0001, 0, &payload),
                "payload word {w:#06x}"
            );
        }
    }

    #[test]
    fn corruption_detected() {
        let mut msg = Echo::emit(EchoKind::Request, 1, 2, b"data");
        msg[9] ^= 1;
        assert_eq!(Echo::parse(&msg).unwrap_err(), IcmpError::BadChecksum);
    }

    #[test]
    fn non_echo_rejected() {
        // Type 3 (destination unreachable) is out of scope.
        let mut msg = Echo::emit(EchoKind::Request, 1, 2, b"");
        msg[0] = 3;
        let c = checksum(&{
            let mut m = msg.clone();
            m[2] = 0;
            m[3] = 0;
            m
        });
        msg[2..4].copy_from_slice(&c.to_be_bytes());
        assert_eq!(Echo::parse(&msg).unwrap_err(), IcmpError::NotEcho);
    }
}
