//! ICMP echo (RFC 792) — the substrate for the paper's `ping` latency
//! measurements (Figure 9).

use crate::checksum::{checksum, verify};

/// ICMP header length for echo messages.
pub const HEADER_LEN: usize = 8;

/// Echo message kinds.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EchoKind {
    /// Type 8: echo request.
    Request,
    /// Type 0: echo reply.
    Reply,
}

/// A parsed echo message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Echo<'a> {
    /// Request or reply.
    pub kind: EchoKind,
    /// Identifier (ping session).
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
    /// Payload (ping stuffs a timestamp + filler here).
    pub payload: &'a [u8],
}

/// Errors from [`Echo::parse`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IcmpError {
    /// Too short.
    Truncated,
    /// Checksum failed.
    BadChecksum,
    /// Not an echo request/reply (out of scope).
    NotEcho,
}

impl core::fmt::Display for IcmpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IcmpError::Truncated => write!(f, "truncated ICMP message"),
            IcmpError::BadChecksum => write!(f, "ICMP checksum mismatch"),
            IcmpError::NotEcho => write!(f, "not an ICMP echo message"),
        }
    }
}

impl std::error::Error for IcmpError {}

impl<'a> Echo<'a> {
    /// Parse an ICMP message, accepting only echo request/reply.
    pub fn parse(buf: &'a [u8]) -> Result<Echo<'a>, IcmpError> {
        if buf.len() < HEADER_LEN {
            return Err(IcmpError::Truncated);
        }
        let kind = match (buf[0], buf[1]) {
            (8, 0) => EchoKind::Request,
            (0, 0) => EchoKind::Reply,
            _ => return Err(IcmpError::NotEcho),
        };
        if !verify(buf) {
            return Err(IcmpError::BadChecksum);
        }
        Ok(Echo {
            kind,
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            seq: u16::from_be_bytes([buf[6], buf[7]]),
            payload: &buf[HEADER_LEN..],
        })
    }

    /// Assemble an echo message.
    pub fn emit(kind: EchoKind, ident: u16, seq: u16, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        buf.push(match kind {
            EchoKind::Request => 8,
            EchoKind::Reply => 0,
        });
        buf.push(0); // code
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&ident.to_be_bytes());
        buf.extend_from_slice(&seq.to_be_bytes());
        buf.extend_from_slice(payload);
        let c = checksum(&buf);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        buf
    }

    /// The reply to this request (echoes the payload back).
    pub fn reply(&self) -> Vec<u8> {
        Echo::emit(EchoKind::Reply, self.ident, self.seq, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_roundtrip() {
        let msg = Echo::emit(EchoKind::Request, 0x1234, 7, b"timestamp+fill");
        let e = Echo::parse(&msg).unwrap();
        assert_eq!(e.kind, EchoKind::Request);
        assert_eq!(e.ident, 0x1234);
        assert_eq!(e.seq, 7);
        assert_eq!(e.payload, b"timestamp+fill");
    }

    #[test]
    fn reply_echoes_payload() {
        let msg = Echo::emit(EchoKind::Request, 1, 2, b"data");
        let req = Echo::parse(&msg).unwrap();
        let reply_bytes = req.reply();
        let rep = Echo::parse(&reply_bytes).unwrap();
        assert_eq!(rep.kind, EchoKind::Reply);
        assert_eq!(rep.ident, 1);
        assert_eq!(rep.seq, 2);
        assert_eq!(rep.payload, b"data");
    }

    #[test]
    fn corruption_detected() {
        let mut msg = Echo::emit(EchoKind::Request, 1, 2, b"data");
        msg[9] ^= 1;
        assert_eq!(Echo::parse(&msg).unwrap_err(), IcmpError::BadChecksum);
    }

    #[test]
    fn non_echo_rejected() {
        // Type 3 (destination unreachable) is out of scope.
        let mut msg = Echo::emit(EchoKind::Request, 1, 2, b"");
        msg[0] = 3;
        let c = checksum(&{
            let mut m = msg.clone();
            m[2] = 0;
            m[3] = 0;
            m
        });
        msg[2..4].copy_from_slice(&c.to_be_bytes());
        assert_eq!(Echo::parse(&msg).unwrap_err(), IcmpError::NotEcho);
    }
}
