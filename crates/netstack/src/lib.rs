//! # netstack — the minimal protocol stack of Active Bridging
//!
//! The paper's switchlet loader is a four-layer stack built from scratch:
//! an Ethernet demultiplexer, "a minimal IP sufficient for our purposes"
//! (no fragmentation), a minimal UDP, and a TFTP server that "only
//! services write requests in binary format". This crate is that stack,
//! plus the two measurement substrates the evaluation needs: ICMP echo
//! (for the Figure 9 `ping` latencies) and [`tcplite`] (a from-scratch
//! sliding-window reliable stream standing in for the Linux TCP under
//! `ttcp` in Figure 10 — see DESIGN.md §1 for the substitution argument).
//!
//! Everything here is a pure codec or a pure state machine: no sockets, no
//! clocks. The `hostsim` and `active-bridge` crates bind these machines to
//! simulated NICs and timers.

pub mod arp;
pub mod checksum;
pub mod icmp;
pub mod ipv4;
pub mod tcplite;
pub mod tftp;
pub mod udp;

pub use arp::{ArpOp, ArpPacket};
pub use checksum::{checksum, Checksum};
pub use icmp::{Echo, EchoKind, IcmpError};
pub use ipv4::{IpError, Packet as Ipv4Packet, Protocol};
pub use tcplite::{
    pattern_byte, ReceiverConfig, RecvAction, Segment as TcpLiteSegment, SegmentOut, SenderConfig,
    TcpReceiver, TcpSender,
};
pub use tftp::{
    FailureClass, ReceivedFile, SenderStep, TftpPacket, TftpSender, TftpServer, IDLE_SESSION_NS,
};
pub use udp::{Datagram as UdpDatagram, UdpError};
