//! TcpLite: a from-scratch sliding-window reliable byte stream.
//!
//! The paper measured bridge throughput with `ttcp` over Linux TCP. Full
//! TCP is out of scope (and irrelevant on an idle two-segment LAN), but the
//! mechanisms that shape the measured curves are not:
//!
//! * **MSS segmentation** — an 8 KB ttcp write becomes "multiple
//!   back-to-back LAN frames", exactly as the paper notes;
//! * **sliding window with cumulative ACKs** — keeps the pipeline through
//!   the bridge full, so throughput is set by the slowest stage;
//! * **retransmission timeout with exponential backoff** — go-back-N from
//!   the lowest unacknowledged byte (enough for queue-overflow loss);
//! * **Nagle's algorithm** — sub-MSS writes stop-and-wait behind the
//!   outstanding small segment, which (with delayed ACKs) is what pins the
//!   paper's small-packet ttcp rates to hundreds of frames/second;
//! * **delayed ACKs** — the receiver acknowledges every second segment or
//!   after a holdoff.
//!
//! Both endpoints are pure state machines over `u64` nanosecond
//! timestamps; `hostsim` drives them with simulator timers. Stream content
//! is a deterministic pattern (`byte i = i mod 251`) so retransmissions
//! can be regenerated without buffering megabytes.

use std::net::Ipv4Addr;

use crate::checksum::Checksum;
use crate::ipv4::Protocol;

/// TcpLite header length.
pub const HEADER_LEN: usize = 18;

/// Default maximum segment size (Ethernet MTU 1500 − IP 20 − TcpLite 18).
pub const DEFAULT_MSS: usize = 1462;

/// The deterministic stream pattern.
pub fn pattern_byte(offset: u64) -> u8 {
    (offset % 251) as u8
}

/// One full period of the stream pattern (bytes `0..251`), used to fill
/// payloads at memcpy speed instead of a division per byte.
const PATTERN_CYCLE: [u8; 251] = {
    let mut t = [0u8; 251];
    let mut i = 0;
    while i < 251 {
        t[i] = i as u8;
        i += 1;
    }
    t
};

/// Append `len` pattern bytes starting at stream offset `offset` —
/// equivalent to pushing `pattern_byte(offset + i)` for `i in 0..len`,
/// but filled a period at a time.
pub fn pattern_fill(out: &mut Vec<u8>, offset: u64, len: usize) {
    out.reserve(len);
    let mut start = (offset % 251) as usize;
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(251 - start);
        out.extend_from_slice(&PATTERN_CYCLE[start..start + take]);
        remaining -= take;
        start = 0;
    }
}

/// Wrapping 32-bit sequence comparison: is `a < b`?
pub fn seq_lt(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) as i32 <= 0 && a != b
}

/// A parsed TcpLite segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Cumulative acknowledgement (next expected byte).
    pub ack: u32,
    /// True if the ack field is meaningful.
    pub is_ack: bool,
    /// Payload bytes.
    pub payload: &'a [u8],
}

/// Errors from [`Segment::parse`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TcpLiteError {
    /// Too short or inconsistent length.
    Truncated,
    /// Checksum failed.
    BadChecksum,
}

impl core::fmt::Display for TcpLiteError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TcpLiteError::Truncated => write!(f, "truncated TcpLite segment"),
            TcpLiteError::BadChecksum => write!(f, "TcpLite checksum mismatch"),
        }
    }
}

impl std::error::Error for TcpLiteError {}

fn pseudo_header(c: &mut Checksum, src: Ipv4Addr, dst: Ipv4Addr, len: u16) {
    c.add(&src.octets());
    c.add(&dst.octets());
    c.add_u16(Protocol::TCPLITE.0 as u16);
    c.add_u16(len);
}

impl<'a> Segment<'a> {
    /// Parse a segment; `src`/`dst` feed the pseudo-header checksum.
    pub fn parse(buf: &'a [u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Segment<'a>, TcpLiteError> {
        if buf.len() < HEADER_LEN {
            return Err(TcpLiteError::Truncated);
        }
        let len = u16::from_be_bytes([buf[13], buf[14]]) as usize;
        if buf.len() < HEADER_LEN + len {
            return Err(TcpLiteError::Truncated);
        }
        let buf = &buf[..HEADER_LEN + len];
        let mut c = Checksum::new();
        pseudo_header(&mut c, src, dst, buf.len() as u16);
        c.add(buf);
        if c.finish() != 0 {
            return Err(TcpLiteError::BadChecksum);
        }
        Ok(Segment {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            is_ack: buf[12] & 0x01 != 0,
            payload: &buf[HEADER_LEN..],
        })
    }

    /// Assemble a segment.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len());
        self.emit_into(&mut buf, src, dst);
        buf
    }

    /// Append the wire form of this segment to `out` (reusable-buffer
    /// form for the per-frame paths).
    pub fn emit_into(&self, out: &mut Vec<u8>, src: Ipv4Addr, dst: Ipv4Addr) {
        assert!(self.payload.len() <= u16::MAX as usize);
        let start = out.len();
        emit_header(
            out,
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            self.is_ack,
            self.payload.len(),
        );
        out.extend_from_slice(self.payload);
        finish_segment(out, start, src, dst);
    }
}

/// Append the 18-byte TcpLite header (checksum zeroed) to `out`.
#[allow(clippy::too_many_arguments)]
fn emit_header(
    out: &mut Vec<u8>,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    is_ack: bool,
    payload_len: usize,
) {
    out.reserve(HEADER_LEN + payload_len);
    out.extend_from_slice(&src_port.to_be_bytes());
    out.extend_from_slice(&dst_port.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&ack.to_be_bytes());
    out.push(if is_ack { 1 } else { 0 });
    out.extend_from_slice(&(payload_len as u16).to_be_bytes());
    out.push(0); // pad (keeps the checksum field 16-bit aligned)
    out.extend_from_slice(&[0, 0]); // checksum placeholder at 16..18
}

/// Checksum the segment appended at `start` and patch its checksum field.
fn finish_segment(out: &mut [u8], start: usize, src: Ipv4Addr, dst: Ipv4Addr) {
    let total = out.len() - start;
    let mut c = Checksum::new();
    pseudo_header(&mut c, src, dst, total as u16);
    c.add(&out[start..]);
    let cksum = c.finish();
    out[start + 16..start + 18].copy_from_slice(&cksum.to_be_bytes());
}

/// Append a *data* segment whose payload is the deterministic stream
/// pattern starting at stream offset `seq` — the ttcp sender's hot path:
/// the pattern bytes are generated straight into the output buffer (no
/// intermediate payload vector, one pass, then one checksum pass).
#[allow(clippy::too_many_arguments)]
pub fn emit_pattern_segment(
    out: &mut Vec<u8>,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    len: usize,
) {
    let start = out.len();
    emit_header(out, src_port, dst_port, seq, 0, false, len);
    pattern_fill(out, seq as u64, len);
    finish_segment(out, start, src, dst);
}

/// Sender configuration.
#[derive(Copy, Clone, Debug)]
pub struct SenderConfig {
    /// Maximum segment size.
    pub mss: usize,
    /// Send window in bytes.
    pub window: u32,
    /// Nagle: hold *small* segments while data is outstanding.
    pub nagle: bool,
    /// Segments below this size are "small" for Nagle purposes. The
    /// paper's testbed streamed 1024-byte ttcp writes (1790 frames/s on
    /// the wire) while ~50-byte writes collapsed to stop-and-wait
    /// (~360 frames/s); a threshold between the two reproduces both
    /// regimes. Calibration knob, discussed in EXPERIMENTS.md.
    pub nagle_threshold: usize,
    /// Initial retransmission timeout (ns).
    pub init_rto_ns: u64,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            mss: DEFAULT_MSS,
            window: 32 * 1024,
            nagle: true,
            nagle_threshold: 256,
            init_rto_ns: 200_000_000, // 200 ms
        }
    }
}

/// A segment the sender wants on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentOut {
    /// Sequence number.
    pub seq: u32,
    /// Payload (pattern bytes).
    pub payload: Vec<u8>,
    /// True if this is a retransmission.
    pub retransmit: bool,
}

/// A segment decision without its payload bytes (the payload is the
/// deterministic pattern at `seq`, so callers on the hot path regenerate
/// it straight into a wire buffer via [`emit_pattern_segment`] instead of
/// materializing a `Vec` per segment).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SegMeta {
    /// Sequence number (also the pattern offset of the first byte).
    pub seq: u32,
    /// Payload length.
    pub len: usize,
    /// True if this is a retransmission.
    pub retransmit: bool,
}

/// The sending endpoint (unidirectional data; receives only ACKs).
#[derive(Debug)]
pub struct TcpSender {
    cfg: SenderConfig,
    /// Lowest unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to transmit.
    snd_nxt: u32,
    /// Application bytes queued so far (absolute stream length).
    app_len: u64,
    /// Write boundaries matter only for Nagle: true while the tail of the
    /// app stream is a "small write" batch.
    current_rto_ns: u64,
    rto_deadline_ns: Option<u64>,
    /// Stats: segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Stats: retransmissions.
    pub retransmits: u64,
}

impl TcpSender {
    /// New sender with sequence numbers starting at 0.
    pub fn new(cfg: SenderConfig) -> TcpSender {
        TcpSender {
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            app_len: 0,
            current_rto_ns: cfg.init_rto_ns,
            rto_deadline_ns: None,
            segments_sent: 0,
            retransmits: 0,
        }
    }

    /// Queue `n` more application bytes.
    pub fn write(&mut self, n: u64) {
        self.app_len += n;
    }

    /// Stream offset of `seq` (sequence numbers are the low 32 bits of the
    /// stream offset; transfers here stay far below 4 GB).
    fn offset(seq: u32) -> u64 {
        seq as u64
    }

    /// Bytes in flight.
    pub fn in_flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Queued application bytes not yet transmitted.
    pub fn unsent(&self) -> u64 {
        self.app_len - Self::offset(self.snd_nxt)
    }

    /// True when every queued byte is acknowledged.
    pub fn all_acked(&self) -> bool {
        Self::offset(self.snd_una) == self.app_len
    }

    /// Produce the next segment to transmit at `now_ns`, if the window,
    /// data availability and Nagle allow one. Allocation-free; the
    /// payload is implied (pattern bytes starting at `seq`).
    pub fn poll_meta(&mut self, now_ns: u64) -> Option<SegMeta> {
        let nxt_off = Self::offset(self.snd_nxt);
        if nxt_off >= self.app_len {
            return None; // nothing unsent
        }
        let window_left = self.cfg.window.saturating_sub(self.in_flight()) as u64;
        if window_left == 0 {
            return None;
        }
        let remaining = self.app_len - nxt_off;
        let take = remaining.min(self.cfg.mss as u64).min(window_left) as usize;
        if take < self.cfg.nagle_threshold && self.cfg.nagle && self.in_flight() > 0 {
            // Nagle: a small segment waits for outstanding data to drain.
            return None;
        }
        let seq = self.snd_nxt;
        self.snd_nxt = self.snd_nxt.wrapping_add(take as u32);
        self.segments_sent += 1;
        if self.rto_deadline_ns.is_none() {
            self.rto_deadline_ns = Some(now_ns + self.current_rto_ns);
        }
        Some(SegMeta {
            seq,
            len: take,
            retransmit: false,
        })
    }

    /// [`TcpSender::poll_meta`] with the pattern payload materialized —
    /// the convenient form for tests and non-hot callers.
    pub fn poll(&mut self, now_ns: u64) -> Option<SegmentOut> {
        let meta = self.poll_meta(now_ns)?;
        let base = meta.seq as u64;
        Some(SegmentOut {
            seq: meta.seq,
            payload: (0..meta.len as u64)
                .map(|i| pattern_byte(base + i))
                .collect(),
            retransmit: meta.retransmit,
        })
    }

    /// Handle a cumulative acknowledgement.
    pub fn on_ack(&mut self, ack: u32, now_ns: u64) {
        if seq_lt(self.snd_una, ack) && !seq_lt(self.snd_nxt, ack) {
            self.snd_una = ack;
            self.current_rto_ns = self.cfg.init_rto_ns;
            self.rto_deadline_ns = if self.in_flight() > 0 {
                Some(now_ns + self.current_rto_ns)
            } else {
                None
            };
        }
    }

    /// When the retransmission timer next fires (absolute ns).
    pub fn next_timeout(&self) -> Option<u64> {
        self.rto_deadline_ns
    }

    /// Fire the retransmission timer: go-back-N to `snd_una`.
    pub fn on_timeout(&mut self, now_ns: u64) {
        if self.in_flight() == 0 {
            self.rto_deadline_ns = None;
            return;
        }
        self.retransmits += 1;
        self.snd_nxt = self.snd_una;
        self.current_rto_ns = (self.current_rto_ns * 2).min(60_000_000_000);
        self.rto_deadline_ns = Some(now_ns + self.current_rto_ns);
    }

    /// The configured MSS.
    pub fn mss(&self) -> usize {
        self.cfg.mss
    }

    /// The configured Nagle small-segment threshold.
    pub fn nagle_threshold(&self) -> usize {
        self.cfg.nagle_threshold
    }
}

/// Receiver configuration.
#[derive(Copy, Clone, Debug)]
pub struct ReceiverConfig {
    /// Acknowledge immediately after this many unacknowledged segments.
    pub ack_every: u32,
    /// Otherwise acknowledge after this holdoff (ns). The 1997 preset
    /// uses 1.8 ms, calibrated so small-write ttcp lands near the paper's
    /// ~360 frames/s (the sub-MSS cycle is Nagle + this holdoff).
    pub delayed_ack_ns: u64,
}

impl Default for ReceiverConfig {
    fn default() -> Self {
        ReceiverConfig {
            ack_every: 2,
            delayed_ack_ns: 1_800_000,
        }
    }
}

/// What the receiver wants done after a segment arrives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecvAction {
    /// Send this cumulative ACK now.
    AckNow(u32),
    /// Arm (or keep) the delayed-ACK timer for this absolute deadline.
    AckAt(u64),
    /// Nothing to do.
    None,
}

/// The receiving endpoint.
#[derive(Debug)]
pub struct TcpReceiver {
    cfg: ReceiverConfig,
    rcv_nxt: u32,
    unacked_segments: u32,
    ack_deadline_ns: Option<u64>,
    /// Stats: in-order payload bytes delivered.
    pub bytes_received: u64,
    /// Stats: segments accepted in order.
    pub segments_received: u64,
    /// Stats: out-of-order segments dropped (go-back-N).
    pub ooo_dropped: u64,
}

impl TcpReceiver {
    /// New receiver expecting sequence 0.
    pub fn new(cfg: ReceiverConfig) -> TcpReceiver {
        TcpReceiver {
            cfg,
            rcv_nxt: 0,
            unacked_segments: 0,
            ack_deadline_ns: None,
            bytes_received: 0,
            segments_received: 0,
            ooo_dropped: 0,
        }
    }

    /// The next expected sequence number (the cumulative ACK value).
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    /// Handle a data segment.
    pub fn on_segment(&mut self, seq: u32, len: usize, now_ns: u64) -> RecvAction {
        if seq != self.rcv_nxt {
            // Out of order (go-back-N): drop, re-ack immediately so the
            // sender learns where we are.
            self.ooo_dropped += 1;
            self.unacked_segments = 0;
            self.ack_deadline_ns = None;
            return RecvAction::AckNow(self.rcv_nxt);
        }
        self.rcv_nxt = self.rcv_nxt.wrapping_add(len as u32);
        self.bytes_received += len as u64;
        self.segments_received += 1;
        self.unacked_segments += 1;
        if self.unacked_segments >= self.cfg.ack_every {
            self.unacked_segments = 0;
            self.ack_deadline_ns = None;
            RecvAction::AckNow(self.rcv_nxt)
        } else {
            let deadline = now_ns + self.cfg.delayed_ack_ns;
            if self.ack_deadline_ns.is_none() {
                self.ack_deadline_ns = Some(deadline);
            }
            RecvAction::AckAt(self.ack_deadline_ns.unwrap())
        }
    }

    /// Fire the delayed-ACK timer; returns the ACK to send, if still due.
    pub fn on_timer(&mut self, now_ns: u64) -> Option<u32> {
        match self.ack_deadline_ns {
            Some(deadline) if deadline <= now_ns => {
                self.ack_deadline_ns = None;
                self.unacked_segments = 0;
                Some(self.rcv_nxt)
            }
            _ => None,
        }
    }

    /// The pending delayed-ACK deadline, if any. Callers re-arm their
    /// timer from this after a timer fires early (the deadline may have
    /// moved while a timer was in flight).
    pub fn ack_deadline(&self) -> Option<u64> {
        self.ack_deadline_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn segment_roundtrip() {
        let payload: Vec<u8> = (0..100).map(pattern_byte).collect();
        let seg = Segment {
            src_port: 5001,
            dst_port: 5002,
            seq: 12345,
            ack: 999,
            is_ack: true,
            payload: &payload,
        };
        let bytes = seg.emit(A, B);
        let back = Segment::parse(&bytes, A, B).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn corrupted_segment_detected() {
        let seg = Segment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            is_ack: false,
            payload: b"datadata",
        };
        let mut bytes = seg.emit(A, B);
        bytes[20] ^= 0x02;
        assert_eq!(
            Segment::parse(&bytes, A, B).unwrap_err(),
            TcpLiteError::BadChecksum
        );
    }

    #[test]
    fn seq_compare_wraps() {
        assert!(seq_lt(0xFFFF_FFF0, 0x10));
        assert!(!seq_lt(0x10, 0xFFFF_FFF0));
        assert!(!seq_lt(5, 5));
    }

    /// Lossless in-order exchange: every byte arrives, window respected.
    #[test]
    fn lossless_transfer_completes() {
        let mut tx = TcpSender::new(SenderConfig {
            mss: 1000,
            window: 4000,
            nagle: true,
            nagle_threshold: 256,
            init_rto_ns: 1_000_000,
        });
        let mut rx = TcpReceiver::new(ReceiverConfig::default());
        tx.write(10_500);
        let mut now = 0u64;
        let mut guard = 0;
        while !tx.all_acked() {
            guard += 1;
            assert!(guard < 1000, "transfer did not converge");
            now += 1000;
            let mut sent_any = false;
            while let Some(seg) = tx.poll(now) {
                sent_any = true;
                assert!(tx.in_flight() <= 4000);
                match rx.on_segment(seg.seq, seg.payload.len(), now) {
                    RecvAction::AckNow(a) => tx.on_ack(a, now),
                    RecvAction::AckAt(_) | RecvAction::None => {}
                }
            }
            if !sent_any {
                // Flush a pending delayed ACK to unblock Nagle/window.
                if let Some(a) = rx.on_timer(now + 2_000_000) {
                    tx.on_ack(a, now);
                }
            }
        }
        assert_eq!(rx.bytes_received, 10_500);
        assert_eq!(tx.retransmits, 0);
    }

    /// Nagle: a small write waits while another small segment is
    /// outstanding.
    #[test]
    fn nagle_holds_small_segments() {
        let mut tx = TcpSender::new(SenderConfig {
            mss: 1000,
            window: 100_000,
            nagle: true,
            nagle_threshold: 256,
            init_rto_ns: 1_000_000,
        });
        tx.write(50);
        let s1 = tx.poll(0).unwrap();
        assert_eq!(s1.payload.len(), 50);
        tx.write(50);
        assert!(tx.poll(10).is_none(), "second small write must wait");
        tx.on_ack(50, 20);
        let s2 = tx.poll(30).unwrap();
        assert_eq!(s2.seq, 50);
    }

    /// Without Nagle, a small segment goes out even with data in flight.
    /// Queued writes coalesce into one segment (stream semantics, as in
    /// real TCP — the ttcp driver paces writes to keep frames small).
    #[test]
    fn no_nagle_sends_small_segments_immediately() {
        let mut tx = TcpSender::new(SenderConfig {
            mss: 1000,
            window: 100_000,
            nagle: false,
            nagle_threshold: 256,
            init_rto_ns: 1_000_000,
        });
        tx.write(50);
        let s1 = tx.poll(0).unwrap();
        assert_eq!(s1.payload.len(), 50);
        // Data now in flight; another small write still goes straight out.
        tx.write(50);
        let s2 = tx.poll(0).unwrap();
        assert_eq!(s2.payload.len(), 50);
        assert_eq!(s2.seq, 50);
        // Two queued small writes coalesce into one 100-byte segment.
        tx.write(50);
        tx.write(50);
        let s3 = tx.poll(0).unwrap();
        assert_eq!(s3.payload.len(), 100);
        assert!(tx.poll(0).is_none());
    }

    /// Loss triggers go-back-N from snd_una and exponential backoff.
    #[test]
    fn timeout_retransmits_from_una() {
        let mut tx = TcpSender::new(SenderConfig {
            mss: 1000,
            window: 10_000,
            nagle: true,
            nagle_threshold: 256,
            init_rto_ns: 1_000_000,
        });
        tx.write(3000);
        let s1 = tx.poll(0).unwrap();
        let _s2 = tx.poll(0).unwrap();
        let _s3 = tx.poll(0).unwrap();
        assert_eq!(tx.in_flight(), 3000);
        // Everything is lost; the timer fires.
        let deadline = tx.next_timeout().unwrap();
        tx.on_timeout(deadline);
        assert_eq!(tx.retransmits, 1);
        let r1 = tx.poll(deadline).unwrap();
        assert_eq!(r1.seq, s1.seq, "go-back-N restarts at snd_una");
        // Backoff doubled.
        assert!(tx.next_timeout().unwrap() >= deadline + 2_000_000);
    }

    #[test]
    fn receiver_ack_policy() {
        let mut rx = TcpReceiver::new(ReceiverConfig {
            ack_every: 2,
            delayed_ack_ns: 1_000_000,
        });
        // First segment: delayed.
        match rx.on_segment(0, 100, 0) {
            RecvAction::AckAt(d) => assert_eq!(d, 1_000_000),
            other => panic!("expected delayed ack, got {other:?}"),
        }
        // Second: immediate.
        assert_eq!(rx.on_segment(100, 100, 10), RecvAction::AckNow(200));
        // Out of order: immediate duplicate ack.
        assert_eq!(rx.on_segment(999, 100, 20), RecvAction::AckNow(200));
        assert_eq!(rx.ooo_dropped, 1);
        // Delayed-ack timer pathway.
        match rx.on_segment(200, 50, 30) {
            RecvAction::AckAt(_) => {}
            other => panic!("expected delayed ack, got {other:?}"),
        }
        assert_eq!(rx.on_timer(2_000_000), Some(250));
        assert_eq!(rx.on_timer(2_000_001), None, "timer disarms after firing");
    }

    #[test]
    fn pattern_fill_matches_per_byte() {
        for (off, len) in [
            (0u64, 0usize),
            (0, 1),
            (7, 250),
            (250, 252),
            (1000, 1462),
            (u32::MAX as u64, 777),
        ] {
            let mut fast = Vec::new();
            pattern_fill(&mut fast, off, len);
            let slow: Vec<u8> = (0..len as u64).map(|i| pattern_byte(off + i)).collect();
            assert_eq!(fast, slow, "offset {off} len {len}");
        }
    }

    #[test]
    fn emit_pattern_segment_matches_emit() {
        let payload: Vec<u8> = (0..1000u64).map(|i| pattern_byte(12345 + i)).collect();
        let reference = Segment {
            src_port: 5001,
            dst_port: 5002,
            seq: 12345,
            ack: 0,
            is_ack: false,
            payload: &payload,
        }
        .emit(A, B);
        let mut fused = Vec::new();
        emit_pattern_segment(&mut fused, A, B, 5001, 5002, 12345, 1000);
        assert_eq!(fused, reference, "fused emission is byte-identical");
        assert!(Segment::parse(&fused, A, B).is_ok());
    }

    #[test]
    fn poll_meta_agrees_with_poll() {
        let mut a = TcpSender::new(SenderConfig::default());
        let mut b = TcpSender::new(SenderConfig::default());
        a.write(5000);
        b.write(5000);
        loop {
            let ma = a.poll_meta(0);
            let sb = b.poll(0);
            match (ma, sb) {
                (None, None) => break,
                (Some(m), Some(s)) => {
                    assert_eq!(m.seq, s.seq);
                    assert_eq!(m.len, s.payload.len());
                    assert_eq!(m.retransmit, s.retransmit);
                    let expect: Vec<u8> = (0..m.len as u64)
                        .map(|i| pattern_byte(m.seq as u64 + i))
                        .collect();
                    assert_eq!(s.payload, expect);
                }
                other => panic!("poll/poll_meta diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn pattern_is_deterministic() {
        assert_eq!(pattern_byte(0), pattern_byte(251));
        let seg: Vec<u8> = (1000..1010).map(pattern_byte).collect();
        let again: Vec<u8> = (1000..1010).map(pattern_byte).collect();
        assert_eq!(seg, again);
    }
}
