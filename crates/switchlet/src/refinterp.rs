//! The reference interpreter: the original instruction-at-a-time walk of
//! the source [`Op`] stream, kept (test-only) as the semantic oracle for
//! the pre-decoded VM. The `equiv` proptests below run arbitrary verified
//! modules through both interpreters and require identical results,
//! [`ExecStats`], fuel accounting and errors — including exhaustion in
//! the middle of what the decoded VM executes as a fused
//! superinstruction.

use std::rc::Rc;

use crate::bytecode::Op;
use crate::env::{HostDispatch, HostSlot};
use crate::linker::{Namespace, ResolvedImport};
use crate::value::{FuncVal, InstanceId, Key, Value};
use crate::vm::{ExecConfig, ExecStats, VmError};

/// Call a function value with `args` under the reference interpreter.
pub(crate) fn ref_call(
    ns: &Namespace,
    host: &mut dyn HostDispatch,
    target: FuncVal,
    args: Vec<Value>,
    cfg: &ExecConfig,
) -> Result<(Value, ExecStats), VmError> {
    let mut stats = ExecStats::default();
    let mut fuel = cfg.fuel;
    let value = dispatch(ns, host, target, args, cfg, &mut fuel, 0, &mut stats)?;
    Ok((value, stats))
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    ns: &Namespace,
    host: &mut dyn HostDispatch,
    target: FuncVal,
    mut args: Vec<Value>,
    cfg: &ExecConfig,
    fuel: &mut u64,
    depth: usize,
    stats: &mut ExecStats,
) -> Result<Value, VmError> {
    match target {
        FuncVal::Host { module, item } => {
            stats.host_calls += 1;
            host.call_slot(ns.env(), HostSlot { module, item }, &mut args)
        }
        FuncVal::Vm { instance, func } => {
            exec(ns, host, instance, func, args, cfg, fuel, depth, stats)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec(
    ns: &Namespace,
    host: &mut dyn HostDispatch,
    instance: InstanceId,
    func_idx: u32,
    args: Vec<Value>,
    cfg: &ExecConfig,
    fuel: &mut u64,
    depth: usize,
    stats: &mut ExecStats,
) -> Result<Value, VmError> {
    if depth >= cfg.max_depth {
        return Err(VmError::CallDepthExceeded);
    }
    let inst = ns.instance(instance);
    let module = &inst.module;
    let func = &module.functions[func_idx as usize];
    debug_assert_eq!(args.len(), func.params.len(), "arity mismatch at entry");

    let mut locals = args;
    locals.resize(func.num_slots(), Value::Unit);
    let mut stack: Vec<Value> = Vec::with_capacity(8);
    let mut pc: usize = 0;

    macro_rules! pop {
        () => {
            stack
                .pop()
                .expect("verifier invariant broken: stack underflow")
        };
    }

    loop {
        if *fuel == 0 {
            return Err(VmError::FuelExhausted);
        }
        *fuel -= 1;
        stats.instructions += 1;

        let op = &func.code[pc];
        pc += 1;
        match op {
            Op::ConstUnit => stack.push(Value::Unit),
            Op::ConstBool(b) => stack.push(Value::Bool(*b)),
            Op::ConstInt(i) => stack.push(Value::Int(*i)),
            Op::ConstStr(n) => stack.push(Value::Str(inst.str_consts[*n as usize].clone())),
            Op::LocalGet(n) => stack.push(locals[*n as usize].clone()),
            Op::LocalSet(n) => locals[*n as usize] = pop!(),
            Op::Pop => {
                let _ = pop!();
            }
            Op::Dup => {
                let top = stack.last().expect("verifier invariant broken").clone();
                stack.push(top);
            }
            Op::Add => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Int(a.wrapping_add(b)));
            }
            Op::Sub => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Int(a.wrapping_sub(b)));
            }
            Op::Mul => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Int(a.wrapping_mul(b)));
            }
            Op::Div => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                if b == 0 {
                    return Err(VmError::DivideByZero);
                }
                stack.push(Value::Int(a.wrapping_div(b)));
            }
            Op::Mod => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                if b == 0 {
                    return Err(VmError::DivideByZero);
                }
                stack.push(Value::Int(a.wrapping_rem(b)));
            }
            Op::Neg => {
                let a = pop!().as_int();
                stack.push(Value::Int(a.wrapping_neg()));
            }
            Op::Eq => {
                let b = pop!();
                let a = pop!();
                stack.push(Value::Bool(
                    a.hash_eq(&b).expect("verifier invariant broken: eq"),
                ));
            }
            Op::Ne => {
                let b = pop!();
                let a = pop!();
                stack.push(Value::Bool(
                    !a.hash_eq(&b).expect("verifier invariant broken: ne"),
                ));
            }
            Op::Lt => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Bool(a < b));
            }
            Op::Le => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Bool(a <= b));
            }
            Op::Gt => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Bool(a > b));
            }
            Op::Ge => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Bool(a >= b));
            }
            Op::And => {
                let b = pop!().as_bool();
                let a = pop!().as_bool();
                stack.push(Value::Bool(a && b));
            }
            Op::Or => {
                let b = pop!().as_bool();
                let a = pop!().as_bool();
                stack.push(Value::Bool(a || b));
            }
            Op::Not => {
                let a = pop!().as_bool();
                stack.push(Value::Bool(!a));
            }
            Op::Jump(t) => pc = *t as usize,
            Op::BrIf(t) => {
                if pop!().as_bool() {
                    pc = *t as usize;
                }
            }
            Op::BrIfNot(t) => {
                if !pop!().as_bool() {
                    pc = *t as usize;
                }
            }
            Op::Return => {
                let result = pop!();
                debug_assert!(stack.is_empty(), "verifier invariant broken: dirty return");
                return Ok(result);
            }
            Op::Call(n) => {
                let callee = &module.functions[*n as usize];
                let argc = callee.params.len();
                let call_args = stack.split_off(stack.len() - argc);
                let result = exec(
                    ns,
                    host,
                    instance,
                    *n,
                    call_args,
                    cfg,
                    fuel,
                    depth + 1,
                    stats,
                )?;
                stack.push(result);
            }
            Op::CallImport(n) => {
                let resolved = inst.resolved[*n as usize];
                let target = match resolved {
                    ResolvedImport::Host(slot) => FuncVal::Host {
                        module: slot.module,
                        item: slot.item,
                    },
                    ResolvedImport::Vm { instance, func } => FuncVal::Vm { instance, func },
                };
                let argc = match target {
                    FuncVal::Host { .. } => {
                        let crate::types::Ty::Func(ft) = &module.imports[*n as usize].ty else {
                            unreachable!("linker guarantees function imports")
                        };
                        ft.params.len()
                    }
                    FuncVal::Vm {
                        instance: i,
                        func: f,
                    } => ns.instance(i).module.functions[f as usize].params.len(),
                };
                let call_args = stack.split_off(stack.len() - argc);
                let result = dispatch(ns, host, target, call_args, cfg, fuel, depth + 1, stats)?;
                stack.push(result);
            }
            Op::ImportGet(n) => {
                let resolved = inst.resolved[*n as usize];
                let fv = match resolved {
                    ResolvedImport::Host(slot) => FuncVal::Host {
                        module: slot.module,
                        item: slot.item,
                    },
                    ResolvedImport::Vm { instance, func } => FuncVal::Vm { instance, func },
                };
                stack.push(Value::Func(fv));
            }
            Op::CallRef(arity) => {
                let argc = *arity as usize;
                let call_args = stack.split_off(stack.len() - argc);
                let Value::Func(fv) = pop!() else {
                    panic!("verifier invariant broken: callref on non-function")
                };
                let result = dispatch(ns, host, fv, call_args, cfg, fuel, depth + 1, stats)?;
                stack.push(result);
            }
            Op::FuncConst(n) => stack.push(Value::Func(FuncVal::Vm { instance, func: *n })),
            Op::TupleMake(n) => {
                let items = stack.split_off(stack.len() - *n as usize);
                stack.push(Value::Tuple(Rc::new(items)));
            }
            Op::TupleGet(i) => {
                let Value::Tuple(items) = pop!() else {
                    panic!("verifier invariant broken: tupleget")
                };
                stack.push(items[*i as usize].clone());
            }
            Op::StrLen => {
                let s = pop!();
                stack.push(Value::Int(s.as_str().len() as i64));
            }
            Op::StrConcat => {
                let b = pop!();
                let a = pop!();
                let mut out = a.as_str().as_ref().clone();
                out.extend_from_slice(b.as_str());
                stack.push(Value::Str(Rc::new(out)));
            }
            Op::StrByte => {
                let i = pop!().as_int();
                let s = pop!();
                let s = s.as_str();
                if i < 0 || i as usize >= s.len() {
                    return Err(VmError::StrBounds {
                        len: s.len(),
                        index: i,
                    });
                }
                stack.push(Value::Int(s[i as usize] as i64));
            }
            Op::StrSlice => {
                let len = pop!().as_int();
                let start = pop!().as_int();
                let s = pop!();
                let s = s.as_str();
                if start < 0 || len < 0 || (start as usize).saturating_add(len as usize) > s.len() {
                    return Err(VmError::StrBounds {
                        len: s.len(),
                        index: start,
                    });
                }
                let out = s[start as usize..start as usize + len as usize].to_vec();
                stack.push(Value::Str(Rc::new(out)));
            }
            Op::StrPackInt(width) => {
                let v = pop!().as_int() as u64;
                let bytes = v.to_be_bytes();
                let out = bytes[8 - *width as usize..].to_vec();
                stack.push(Value::Str(Rc::new(out)));
            }
            Op::StrUnpackInt(width) => {
                let off = pop!().as_int();
                let s = pop!();
                let s = s.as_str();
                let w = *width as usize;
                if off < 0 || (off as usize).saturating_add(w) > s.len() {
                    return Err(VmError::StrBounds {
                        len: s.len(),
                        index: off,
                    });
                }
                let mut bytes = [0u8; 8];
                bytes[8 - w..].copy_from_slice(&s[off as usize..off as usize + w]);
                stack.push(Value::Int(u64::from_be_bytes(bytes) as i64));
            }
            Op::StrFromInt => {
                let v = pop!().as_int();
                stack.push(Value::str(v.to_string().into_bytes()));
            }
            Op::TableNew(_) => stack.push(Value::new_table()),
            Op::TableAdd => {
                let v = pop!();
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tableadd")
                };
                let key = k.to_key().expect("verifier invariant broken: key");
                t.borrow_mut().insert(key, v);
            }
            Op::TableGet => {
                let default = pop!();
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tableget")
                };
                let key = k.to_key().expect("verifier invariant broken: key");
                let v = t.borrow().get(&key).cloned().unwrap_or(default);
                stack.push(v);
            }
            Op::TableMem => {
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tablemem")
                };
                let key: Key = k.to_key().expect("verifier invariant broken: key");
                stack.push(Value::Bool(t.borrow().contains_key(&key)));
            }
            Op::TableRemove => {
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tableremove")
                };
                let key = k.to_key().expect("verifier invariant broken: key");
                t.borrow_mut().remove(&key);
            }
            Op::TableLen => {
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tablelen")
                };
                let len = t.borrow().len() as i64;
                stack.push(Value::Int(len));
            }
            Op::Nop => {}
        }
    }
}
