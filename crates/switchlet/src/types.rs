//! The switchlet type language.
//!
//! The paper's safety argument rests on Caml's static, strong typing:
//! "there is no equivalent of a C cast operator, so there is no way to
//! 'trick' Caml into thinking a function is an object that can be changed".
//! This module defines the (monomorphic) type language our verifier and
//! linker enforce. It is deliberately small — large enough to express every
//! switchlet the paper describes, small enough to verify exhaustively.

use core::fmt;

/// A switchlet-level type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// The unit type (like Caml's `unit`).
    Unit,
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// Immutable byte strings (Caml's `string`; also the packet
    /// representation — the paper represents packets as "a string with the
    /// data").
    Str,
    /// A tuple of at least two component types.
    Tuple(Vec<Ty>),
    /// A first-class function. Switchlet registration ("Func.register")
    /// traffics in these.
    Func(FuncTy),
    /// A mutable hash table (Caml's `Hashtbl.t`); keys are restricted to
    /// hashable types by [`Ty::hashable`] checks at verification time.
    Table(Box<Ty>, Box<Ty>),
    /// An abstract (nominal) type exported by a host module, like the
    /// paper's `iport`/`oport` in Figure 4. No instruction produces values
    /// of a named type, so switchlets can obtain them only from host
    /// functions — the basis of name-space security for capabilities.
    Named(String),
}

/// A function type: parameters and result.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FuncTy {
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Result type.
    pub result: Box<Ty>,
}

impl FuncTy {
    /// Build a function type.
    pub fn new(params: Vec<Ty>, result: Ty) -> FuncTy {
        FuncTy {
            params,
            result: Box::new(result),
        }
    }
}

impl Ty {
    /// Shorthand for a function type.
    pub fn func(params: Vec<Ty>, result: Ty) -> Ty {
        Ty::Func(FuncTy::new(params, result))
    }

    /// Shorthand for a table type.
    pub fn table(key: Ty, val: Ty) -> Ty {
        Ty::Table(Box::new(key), Box::new(val))
    }

    /// Shorthand for a tuple type.
    pub fn tuple(items: Vec<Ty>) -> Ty {
        assert!(items.len() >= 2, "tuples have at least two components");
        Ty::Tuple(items)
    }

    /// Shorthand for an abstract named type.
    pub fn named(tag: impl Into<String>) -> Ty {
        Ty::Named(tag.into())
    }

    /// Types usable as hash-table keys and compared by `Eq`-family
    /// instructions: unit, bool, int, string.
    pub fn hashable(&self) -> bool {
        matches!(self, Ty::Unit | Ty::Bool | Ty::Int | Ty::Str)
    }

    /// Canonical encoding used by interface digests; injective on the type
    /// language so distinct types can never collide pre-hash.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Ty::Unit => out.push(b'u'),
            Ty::Bool => out.push(b'b'),
            Ty::Int => out.push(b'i'),
            Ty::Str => out.push(b's'),
            Ty::Tuple(items) => {
                out.push(b'(');
                out.push(items.len() as u8);
                for t in items {
                    t.encode(out);
                }
                out.push(b')');
            }
            Ty::Func(f) => {
                out.push(b'<');
                out.push(f.params.len() as u8);
                for p in &f.params {
                    p.encode(out);
                }
                f.result.encode(out);
                out.push(b'>');
            }
            Ty::Table(k, v) => {
                out.push(b'{');
                k.encode(out);
                v.encode(out);
                out.push(b'}');
            }
            Ty::Named(tag) => {
                out.push(b'n');
                out.push(tag.len() as u8);
                out.extend_from_slice(tag.as_bytes());
            }
        }
    }

    /// Decode one type from the front of `buf`, advancing it. Inverse of
    /// [`Ty::encode`]. Returns `None` on malformed input.
    pub fn decode(buf: &mut &[u8]) -> Option<Ty> {
        let (&tag, rest) = buf.split_first()?;
        *buf = rest;
        Some(match tag {
            b'u' => Ty::Unit,
            b'b' => Ty::Bool,
            b'i' => Ty::Int,
            b's' => Ty::Str,
            b'(' => {
                let (&n, rest) = buf.split_first()?;
                *buf = rest;
                if n < 2 {
                    return None;
                }
                let mut items = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    items.push(Ty::decode(buf)?);
                }
                let (&close, rest) = buf.split_first()?;
                *buf = rest;
                if close != b')' {
                    return None;
                }
                Ty::Tuple(items)
            }
            b'<' => {
                let (&n, rest) = buf.split_first()?;
                *buf = rest;
                let mut params = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    params.push(Ty::decode(buf)?);
                }
                let result = Ty::decode(buf)?;
                let (&close, rest) = buf.split_first()?;
                *buf = rest;
                if close != b'>' {
                    return None;
                }
                Ty::Func(FuncTy::new(params, result))
            }
            b'{' => {
                let k = Ty::decode(buf)?;
                let v = Ty::decode(buf)?;
                let (&close, rest) = buf.split_first()?;
                *buf = rest;
                if close != b'}' {
                    return None;
                }
                Ty::table(k, v)
            }
            b'n' => {
                let (&len, rest) = buf.split_first()?;
                *buf = rest;
                if buf.len() < len as usize {
                    return None;
                }
                let (name, rest) = buf.split_at(len as usize);
                *buf = rest;
                Ty::Named(String::from_utf8(name.to_vec()).ok()?)
            }
            _ => return None,
        })
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Unit => write!(f, "unit"),
            Ty::Bool => write!(f, "bool"),
            Ty::Int => write!(f, "int"),
            Ty::Str => write!(f, "str"),
            Ty::Tuple(items) => {
                write!(f, "(")?;
                for (i, t) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Ty::Func(ft) => {
                write!(f, "[")?;
                for (i, p) in ft.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "] -> {}", ft.result)
            }
            Ty::Table(k, v) => write!(f, "table<{k}, {v}>"),
            Ty::Named(tag) => write!(f, "{tag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Ty::Int.to_string(), "int");
        assert_eq!(
            Ty::func(vec![Ty::Str, Ty::Int], Ty::Unit).to_string(),
            "[str, int] -> unit"
        );
        assert_eq!(Ty::table(Ty::Str, Ty::Int).to_string(), "table<str, int>");
        assert_eq!(
            Ty::tuple(vec![Ty::Int, Ty::Bool]).to_string(),
            "(int * bool)"
        );
    }

    #[test]
    fn hashable_subset() {
        assert!(Ty::Int.hashable());
        assert!(Ty::Str.hashable());
        assert!(!Ty::table(Ty::Int, Ty::Int).hashable());
        assert!(!Ty::func(vec![], Ty::Unit).hashable());
        assert!(!Ty::tuple(vec![Ty::Int, Ty::Int]).hashable());
    }

    #[test]
    fn encode_is_injective_on_samples() {
        let samples = vec![
            Ty::Unit,
            Ty::Bool,
            Ty::Int,
            Ty::Str,
            Ty::tuple(vec![Ty::Int, Ty::Int]),
            Ty::tuple(vec![Ty::Int, Ty::Int, Ty::Int]),
            Ty::func(vec![], Ty::Int),
            Ty::func(vec![Ty::Int], Ty::Int),
            Ty::func(vec![Ty::Int, Ty::Int], Ty::Unit),
            Ty::table(Ty::Str, Ty::Int),
            Ty::table(Ty::Int, Ty::Str),
            Ty::table(Ty::Str, Ty::func(vec![Ty::Int], Ty::Int)),
            Ty::named("iport"),
            Ty::named("oport"),
        ];
        let mut seen = std::collections::HashSet::new();
        for t in &samples {
            let mut buf = Vec::new();
            t.encode(&mut buf);
            assert!(seen.insert(buf), "encoding collision for {t}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_element_tuple_rejected() {
        let _ = Ty::tuple(vec![Ty::Int]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let samples = vec![
            Ty::Unit,
            Ty::Bool,
            Ty::tuple(vec![Ty::Int, Ty::Str, Ty::Bool]),
            Ty::func(vec![Ty::Str, Ty::Int], Ty::table(Ty::Str, Ty::Int)),
            Ty::table(Ty::Str, Ty::func(vec![], Ty::Unit)),
            Ty::named("iport"),
        ];
        for t in samples {
            let mut buf = Vec::new();
            t.encode(&mut buf);
            let mut slice = buf.as_slice();
            let back = Ty::decode(&mut slice).unwrap();
            assert_eq!(back, t);
            assert!(slice.is_empty(), "decoder consumed everything");
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        Ty::func(vec![Ty::Int, Ty::Int], Ty::Str).encode(&mut buf);
        for cut in 1..buf.len() {
            let mut slice = &buf[..cut];
            assert!(
                Ty::decode(&mut slice).is_none() || !slice.is_empty(),
                "truncation at {cut} silently accepted"
            );
        }
    }
}
