//! Load-time translation of verified bytecode into the execution form.
//!
//! The wire format ([`crate::bytecode::Op`]) is built for decoding,
//! digesting and verification; it is a poor shape to *run*: every import
//! call re-resolves its target through the instance's resolution table,
//! every host call re-derives its arity from the import signature, and the
//! interpreter re-matches the same enum layout on every instruction.
//!
//! This module runs once per function at link time — strictly after the
//! verifier has accepted the module — and emits a dense [`Inst`] stream
//! with everything the interpreter would otherwise recompute baked in:
//!
//! * import calls are split into [`Inst::CallHost`] (carrying the resolved
//!   [`HostSlot`] and arity — dispatch is an integer match, no name
//!   lookup) and [`Inst::CallVm`] (carrying the provider instance and
//!   function index);
//! * `ImportGet` becomes a pre-built [`FuncVal`] push;
//! * hot instruction sequences the verifier has already proven type-safe
//!   are fused into superinstructions ([`Inst::LocalGet2`],
//!   [`Inst::LocalGet2Add`], [`Inst::LocalConstAdd`], [`Inst::CmpBr`]).
//!   Fusion never crosses a branch target, and every superinstruction
//!   charges fuel for each source `Op` it retires
//!   ([`Inst::cost`]), so fuel metering and [`crate::vm::ExecStats`]
//!   stay bit-identical to instruction-at-a-time execution.
//!
//! Branch targets are remapped from source-pc space to decoded-pc space in
//! a patch pass; the verifier's join rules guarantee no branch lands
//! inside a fused sequence (the decoder additionally refuses such fusions
//! outright, so the invariant does not depend on verifier internals).

use crate::bytecode::{Function, Op};
use crate::env::HostSlot;
use crate::linker::ResolvedImport;
use crate::module::Module;
use crate::types::Ty;
use crate::value::{FuncVal, InstanceId};

/// Comparison selector for the fused compare+branch superinstruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Cmp {
    /// Structural equality (hashable operands).
    Eq,
    /// Structural inequality.
    Ne,
    /// Integer `<`.
    Lt,
    /// Integer `<=`.
    Le,
    /// Integer `>`.
    Gt,
    /// Integer `>=`.
    Ge,
}

impl Cmp {
    fn of(op: &Op) -> Option<Cmp> {
        Some(match op {
            Op::Eq => Cmp::Eq,
            Op::Ne => Cmp::Ne,
            Op::Lt => Cmp::Lt,
            Op::Le => Cmp::Le,
            Op::Gt => Cmp::Gt,
            Op::Ge => Cmp::Ge,
            _ => return None,
        })
    }
}

/// One pre-decoded instruction. Branch operands index the decoded stream.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Inst {
    ConstUnit,
    ConstBool(bool),
    ConstInt(i64),
    ConstStr(u32),
    LocalGet(u16),
    LocalSet(u16),
    Pop,
    Dup,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Neg,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    Jump(u32),
    BrIf(u32),
    BrIfNot(u32),
    Return,
    /// Call a function of the *same* instance; arity and frame size come
    /// from the callee's decoded header at run time.
    Call(u32),
    /// Call a resolved host import: array-indexed dispatch, arity baked.
    CallHost {
        slot: HostSlot,
        argc: u16,
    },
    /// Call a resolved import of an earlier loaded instance.
    CallVm {
        instance: InstanceId,
        func: u32,
    },
    /// Push a pre-resolved import reference.
    ImportGet(FuncVal),
    CallRef(u8),
    FuncConst(u32),
    TupleMake(u8),
    TupleGet(u8),
    StrLen,
    StrConcat,
    StrByte,
    StrSlice,
    StrPackInt(u8),
    StrUnpackInt(u8),
    StrFromInt,
    TableNew,
    TableAdd,
    TableGet,
    TableMem,
    TableRemove,
    TableLen,
    Nop,
    /// Fused `LocalGet a; LocalGet b` (cost 2).
    LocalGet2(u16, u16),
    /// Fused `LocalGet a; LocalGet b; Add` (cost 3).
    LocalGet2Add(u16, u16),
    /// Fused `LocalGet a; ConstInt k; Add` (cost 3).
    LocalConstAdd(u16, i64),
    /// Fused compare + conditional branch (cost 2). `negate` selects
    /// `BrIfNot`.
    CmpBr {
        cmp: Cmp,
        negate: bool,
        target: u32,
    },
}

impl Inst {
    /// Source `Op`s this instruction retires — the fuel and
    /// `ExecStats::instructions` charge, kept identical to executing the
    /// unfused sequence.
    #[inline]
    pub(crate) fn cost(&self) -> u64 {
        match self {
            Inst::LocalGet2(..) | Inst::CmpBr { .. } => 2,
            Inst::LocalGet2Add(..) | Inst::LocalConstAdd(..) => 3,
            _ => 1,
        }
    }
}

/// A function in execution form.
#[derive(Clone, Debug)]
pub(crate) struct DecodedFunc {
    /// The decoded instruction stream.
    pub insts: Vec<Inst>,
    /// Parameter count (stack values a call consumes).
    pub n_params: u16,
    /// Total local slots (params + locals).
    pub n_slots: u16,
}

/// Translate one verified function. `resolved` is the instance's import
/// resolution table, parallel to `module.imports`.
pub(crate) fn decode_function(
    module: &Module,
    func: &Function,
    resolved: &[ResolvedImport],
) -> DecodedFunc {
    let code = &func.code;

    // Branch-target map: fusion must not swallow an instruction some
    // branch can land on.
    let mut is_target = vec![false; code.len()];
    for op in code {
        if let Op::Jump(t) | Op::BrIf(t) | Op::BrIfNot(t) = op {
            is_target[*t as usize] = true;
        }
    }
    let fusable = |interior: std::ops::Range<usize>| interior.clone().all(|i| !is_target[i]);

    // Pass 1: emit decoded instructions, recording old-pc → new-pc.
    let mut pc_map = vec![u32::MAX; code.len()];
    let mut out: Vec<Inst> = Vec::with_capacity(code.len());
    let mut pc = 0usize;
    while pc < code.len() {
        pc_map[pc] = out.len() as u32;
        // Try 3-op fusions, then 2-op, then plain translation.
        if pc + 2 < code.len() && fusable(pc + 1..pc + 3) {
            if let (Op::LocalGet(a), Op::LocalGet(b), Op::Add) =
                (&code[pc], &code[pc + 1], &code[pc + 2])
            {
                out.push(Inst::LocalGet2Add(*a, *b));
                pc += 3;
                continue;
            }
            if let (Op::LocalGet(a), Op::ConstInt(k), Op::Add) =
                (&code[pc], &code[pc + 1], &code[pc + 2])
            {
                out.push(Inst::LocalConstAdd(*a, *k));
                pc += 3;
                continue;
            }
        }
        if pc + 1 < code.len() && fusable(pc + 1..pc + 2) {
            if let (Op::LocalGet(a), Op::LocalGet(b)) = (&code[pc], &code[pc + 1]) {
                out.push(Inst::LocalGet2(*a, *b));
                pc += 2;
                continue;
            }
            if let (Some(cmp), Op::BrIf(t) | Op::BrIfNot(t)) = (Cmp::of(&code[pc]), &code[pc + 1]) {
                out.push(Inst::CmpBr {
                    cmp,
                    negate: matches!(code[pc + 1], Op::BrIfNot(_)),
                    target: *t, // patched to decoded-pc space in pass 2
                });
                pc += 2;
                continue;
            }
        }
        out.push(translate(&code[pc], module, resolved));
        pc += 1;
    }

    // Pass 2: remap branch targets into the decoded stream.
    for inst in &mut out {
        match inst {
            Inst::Jump(t) | Inst::BrIf(t) | Inst::BrIfNot(t) | Inst::CmpBr { target: t, .. } => {
                let mapped = pc_map[*t as usize];
                debug_assert_ne!(mapped, u32::MAX, "branch into a fused sequence");
                *t = mapped;
            }
            _ => {}
        }
    }

    DecodedFunc {
        insts: out,
        n_params: func.params.len() as u16,
        n_slots: func.num_slots() as u16,
    }
}

fn translate(op: &Op, module: &Module, resolved: &[ResolvedImport]) -> Inst {
    match op {
        Op::ConstUnit => Inst::ConstUnit,
        Op::ConstBool(b) => Inst::ConstBool(*b),
        Op::ConstInt(i) => Inst::ConstInt(*i),
        Op::ConstStr(n) => Inst::ConstStr(*n),
        Op::LocalGet(n) => Inst::LocalGet(*n),
        Op::LocalSet(n) => Inst::LocalSet(*n),
        Op::Pop => Inst::Pop,
        Op::Dup => Inst::Dup,
        Op::Add => Inst::Add,
        Op::Sub => Inst::Sub,
        Op::Mul => Inst::Mul,
        Op::Div => Inst::Div,
        Op::Mod => Inst::Mod,
        Op::Neg => Inst::Neg,
        Op::Eq => Inst::Eq,
        Op::Ne => Inst::Ne,
        Op::Lt => Inst::Lt,
        Op::Le => Inst::Le,
        Op::Gt => Inst::Gt,
        Op::Ge => Inst::Ge,
        Op::And => Inst::And,
        Op::Or => Inst::Or,
        Op::Not => Inst::Not,
        Op::Jump(t) => Inst::Jump(*t),
        Op::BrIf(t) => Inst::BrIf(*t),
        Op::BrIfNot(t) => Inst::BrIfNot(*t),
        Op::Return => Inst::Return,
        Op::Call(n) => Inst::Call(*n),
        Op::CallImport(n) => match resolved[*n as usize] {
            ResolvedImport::Host(slot) => {
                let Ty::Func(ft) = &module.imports[*n as usize].ty else {
                    unreachable!("linker guarantees function imports")
                };
                Inst::CallHost {
                    slot,
                    argc: ft.params.len() as u16,
                }
            }
            ResolvedImport::Vm { instance, func } => Inst::CallVm { instance, func },
        },
        Op::ImportGet(n) => Inst::ImportGet(match resolved[*n as usize] {
            ResolvedImport::Host(slot) => FuncVal::Host {
                module: slot.module,
                item: slot.item,
            },
            ResolvedImport::Vm { instance, func } => FuncVal::Vm { instance, func },
        }),
        Op::CallRef(arity) => Inst::CallRef(*arity),
        Op::FuncConst(n) => Inst::FuncConst(*n),
        Op::TupleMake(n) => Inst::TupleMake(*n),
        Op::TupleGet(i) => Inst::TupleGet(*i),
        Op::StrLen => Inst::StrLen,
        Op::StrConcat => Inst::StrConcat,
        Op::StrByte => Inst::StrByte,
        Op::StrSlice => Inst::StrSlice,
        Op::StrPackInt(w) => Inst::StrPackInt(*w),
        Op::StrUnpackInt(w) => Inst::StrUnpackInt(*w),
        Op::StrFromInt => Inst::StrFromInt,
        Op::TableNew(_) => Inst::TableNew,
        Op::TableAdd => Inst::TableAdd,
        Op::TableGet => Inst::TableGet,
        Op::TableMem => Inst::TableMem,
        Op::TableRemove => Inst::TableRemove,
        Op::TableLen => Inst::TableLen,
        Op::Nop => Inst::Nop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ty;

    fn decode_ops(code: Vec<Op>) -> DecodedFunc {
        let f = Function {
            name: "f".into(),
            params: vec![Ty::Int, Ty::Int],
            locals: vec![],
            result: Ty::Int,
            code,
        };
        let m = crate::asm::ModuleBuilder::new("t").build();
        decode_function(&m, &f, &[])
    }

    #[test]
    fn fuses_local_pair_add() {
        let d = decode_ops(vec![Op::LocalGet(0), Op::LocalGet(1), Op::Add, Op::Return]);
        assert_eq!(d.insts, vec![Inst::LocalGet2Add(0, 1), Inst::Return]);
        assert_eq!(d.insts[0].cost(), 3);
    }

    #[test]
    fn fuses_compare_branch_and_remaps_target() {
        // 0: LocalGet 0; 1: LocalGet 1; 2: Lt; 3: BrIf 6; 4: ConstInt 0;
        // 5: Return; 6: ConstInt 1; 7: Return
        let d = decode_ops(vec![
            Op::LocalGet(0),
            Op::LocalGet(1),
            Op::Lt,
            Op::BrIf(6),
            Op::ConstInt(0),
            Op::Return,
            Op::ConstInt(1),
            Op::Return,
        ]);
        assert_eq!(
            d.insts,
            vec![
                Inst::LocalGet2(0, 1),
                Inst::CmpBr {
                    cmp: Cmp::Lt,
                    negate: false,
                    target: 4 // decoded index of `ConstInt 1`
                },
                Inst::ConstInt(0),
                Inst::Return,
                Inst::ConstInt(1),
                Inst::Return,
            ]
        );
    }

    #[test]
    fn branch_target_inhibits_fusion() {
        // The Add at pc 2 is a branch target: LocalGet/LocalGet/Add must
        // NOT fuse across it (a jump to 2 expects two operands pushed).
        let d = decode_ops(vec![
            Op::LocalGet(0),
            Op::LocalGet(1),
            Op::Add, // target of the backward jump below
            Op::Return,
            Op::Jump(2),
        ]);
        assert_eq!(d.insts[0], Inst::LocalGet2(0, 1));
        assert_eq!(d.insts[1], Inst::Add);
    }

    #[test]
    fn const_add_fuses() {
        let d = decode_ops(vec![Op::LocalGet(0), Op::ConstInt(7), Op::Add, Op::Return]);
        assert_eq!(d.insts, vec![Inst::LocalConstAdd(0, 7), Inst::Return]);
    }
}
