//! The host environment: thinned module signatures plus runtime dispatch.
//!
//! This is the paper's *module thinning* mechanism (Section 5.1): "We have
//! thinned the signature of the modules to be accessed by switchlets to
//! exclude those functions that might allow security violations. This
//! leaves the switchlet with no way of naming the excluded function and
//! thus, no way of accessing it."
//!
//! An [`Env`] holds only the *signatures* a switchlet may link against.
//! The implementations live behind [`HostDispatch`], supplied per call by
//! the embedding node (the bridge builds one around its ports, logger,
//! timers, ...). A host function absent from the `Env` is unnameable —
//! there is no import the linker would resolve to it — which is the whole
//! point: exclusion by name-space, checked statically, with no runtime
//! guard to get wrong.

use std::collections::HashMap;

use crate::types::Ty;
use crate::value::Value;
use crate::vm::VmError;

/// Signature of one host item. All importable host items are
/// function-typed (the paper's `unixnet.mli`, Figure 4, is all functions;
/// host *values* are exposed through nullary getters).
#[derive(Clone, Debug, PartialEq)]
pub struct HostItemSig {
    /// The item's name within its module.
    pub name: String,
    /// Its (function) type.
    pub ty: Ty,
}

/// The thinned signature of one host module.
#[derive(Clone, Debug, PartialEq)]
pub struct HostModuleSig {
    /// Module name, e.g. `safestd`.
    pub name: String,
    /// Exported items. Anything not listed here does not exist as far as
    /// switchlets are concerned.
    pub items: Vec<HostItemSig>,
}

impl HostModuleSig {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>) -> Self {
        HostModuleSig {
            name: name.into(),
            items: Vec::new(),
        }
    }

    /// Add a function item; panics if the type is not a function type or
    /// the name repeats (host modules are built by trusted code).
    pub fn func(mut self, name: impl Into<String>, ty: Ty) -> Self {
        let name = name.into();
        assert!(
            matches!(ty, Ty::Func(_)),
            "host item {name} must be function-typed"
        );
        assert!(
            self.items.iter().all(|i| i.name != name),
            "duplicate host item {name}"
        );
        self.items.push(HostItemSig { name, ty });
        self
    }
}

/// Identifies a host item (module index, item index) within an [`Env`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct HostSlot {
    /// Host module index.
    pub module: u16,
    /// Item index within the module.
    pub item: u16,
}

/// The set of host modules a loader offers to switchlets
/// (`Dynlink.add_available_units` in the paper's linking model).
#[derive(Clone, Debug, Default)]
pub struct Env {
    modules: Vec<HostModuleSig>,
    /// Two-level index: module name → (module index, item name → item
    /// index). Both levels key by `String` but are probed with `&str`
    /// (via `Borrow<str>`), so a lookup never builds an owned key.
    index: HashMap<String, (u16, HashMap<String, u16>)>,
}

impl Env {
    /// An empty environment (nothing is nameable).
    pub fn new() -> Env {
        Env::default()
    }

    /// Register a host module's thinned signature. Panics on duplicate
    /// module names (loader bug, not switchlet input).
    pub fn add_module(&mut self, sig: HostModuleSig) {
        assert!(
            self.modules.iter().all(|m| m.name != sig.name),
            "duplicate host module {}",
            sig.name
        );
        let mod_idx = self.modules.len() as u16;
        let items: HashMap<String, u16> = sig
            .items
            .iter()
            .enumerate()
            .map(|(item_idx, item)| (item.name.clone(), item_idx as u16))
            .collect();
        self.index.insert(sig.name.clone(), (mod_idx, items));
        self.modules.push(sig);
    }

    /// Look up `module.item`; `None` if it was thinned away (or never
    /// existed — indistinguishable by design). Allocation-free: probes
    /// the two-level index with borrowed keys.
    pub fn lookup(&self, module: &str, item: &str) -> Option<(HostSlot, &Ty)> {
        let (mod_idx, items) = self.index.get(module)?;
        let item_idx = *items.get(item)?;
        let slot = HostSlot {
            module: *mod_idx,
            item: item_idx,
        };
        Some((
            slot,
            &self.modules[slot.module as usize].items[slot.item as usize].ty,
        ))
    }

    /// Resolve a slot back to `(module, item, type)`.
    pub fn slot_names(&self, slot: HostSlot) -> (&str, &str, &Ty) {
        let m = &self.modules[slot.module as usize];
        let i = &m.items[slot.item as usize];
        (&m.name, &i.name, &i.ty)
    }

    /// All registered module signatures.
    pub fn modules(&self) -> &[HostModuleSig] {
        &self.modules
    }
}

/// Runtime dispatch for host calls. The embedder implements this; every
/// slot (and every `module.item` pair) handed to it is guaranteed to name
/// an item present in the `Env` the module was linked against.
///
/// Implement **one** of the two methods:
///
/// * [`HostDispatch::call_slot`] — the hot path. The VM invokes host
///   functions through it with the argument values as a mutable slice of
///   its own scratch stack: an implementation pays an integer index plus
///   a `match`, no string comparison and no argument `Vec`. (`args` is
///   scratch — implementations may `std::mem::take` values out of it.)
/// * [`HostDispatch::call`] — the legacy name-based path. The default
///   `call_slot` resolves the slot's names through the `Env` and
///   delegates here, so existing name-matching dispatchers keep working
///   (at the cost of the allocation the fast path exists to avoid).
pub trait HostDispatch {
    /// Invoke the host function at `slot` with `args` (a scratch slice —
    /// consume values freely; the VM discards it afterwards).
    fn call_slot(
        &mut self,
        env: &Env,
        slot: HostSlot,
        args: &mut [Value],
    ) -> Result<Value, VmError> {
        let (m, i, _ty) = env.slot_names(slot);
        let (m, i) = (m.to_owned(), i.to_owned());
        self.call(&m, &i, args.to_vec())
    }

    /// Invoke host function `module.item` with `args` (legacy path).
    fn call(&mut self, module: &str, item: &str, args: Vec<Value>) -> Result<Value, VmError> {
        let _ = args;
        Err(VmError::HostUnavailable(format!("{module}.{item}")))
    }
}

/// A dispatcher that refuses everything — for executing pure modules.
pub struct NoHost;

impl HostDispatch for NoHost {
    fn call(&mut self, module: &str, item: &str, _args: Vec<Value>) -> Result<Value, VmError> {
        Err(VmError::HostUnavailable(format!("{module}.{item}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Env {
        let mut e = Env::new();
        e.add_module(
            HostModuleSig::new("safestd")
                .func("log", Ty::func(vec![Ty::Str], Ty::Unit))
                .func("now_ms", Ty::func(vec![], Ty::Int)),
        );
        e
    }

    #[test]
    fn lookup_present_item() {
        let e = env();
        let (slot, ty) = e.lookup("safestd", "log").unwrap();
        assert_eq!(*ty, Ty::func(vec![Ty::Str], Ty::Unit));
        let (m, i, _) = e.slot_names(slot);
        assert_eq!((m, i), ("safestd", "log"));
    }

    #[test]
    fn thinned_item_is_unnameable() {
        let e = env();
        assert!(e.lookup("safestd", "system").is_none());
        assert!(e.lookup("unix", "open").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate host module")]
    fn duplicate_module_panics() {
        let mut e = env();
        e.add_module(HostModuleSig::new("safestd"));
    }

    #[test]
    #[should_panic(expected = "must be function-typed")]
    fn value_item_panics() {
        let _ = HostModuleSig::new("m").func("v", Ty::Int);
    }
}
