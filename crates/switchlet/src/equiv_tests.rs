//! Decode-equivalence property tests.
//!
//! The pre-decoded VM ([`crate::vm`]) must be observationally identical to
//! the reference `Op`-walking interpreter ([`crate::refinterp`]): same
//! result, same [`ExecStats`], same fuel accounting (including exhaustion
//! landing in the middle of a fused superinstruction), same traps, and
//! the same host-call sequence. These tests generate arbitrary *verified*
//! modules — random well-typed statement programs over ints, bools,
//! strings, tuples, tables, host calls, local calls, cross-module calls
//! and first-class functions — and run them through both interpreters.

use proptest::prelude::*;
use proptest::TestRng;

use crate::asm::{FuncBuilder, ModuleBuilder};
use crate::bytecode::Op;
use crate::env::{Env, HostDispatch, HostModuleSig};
use crate::linker::Namespace;
use crate::refinterp::ref_call;
use crate::types::Ty;
use crate::value::Value;
use crate::vm::{call, ExecConfig, ExecStats, VmError};

// ------------------------------------------------------------- host side

/// A stateful host: the equivalence check includes the order and contents
/// of every host call (folded into `log`) and the mutable counter.
struct TestHost {
    counter: i64,
    log: Vec<String>,
}

impl TestHost {
    fn new() -> TestHost {
        TestHost {
            counter: 0,
            log: Vec::new(),
        }
    }
}

impl HostDispatch for TestHost {
    fn call(&mut self, module: &str, item: &str, args: Vec<Value>) -> Result<Value, VmError> {
        assert_eq!(module, "h");
        match item {
            "add7" => {
                let x = args[0].as_int();
                self.log.push(format!("add7({x})"));
                Ok(Value::Int(x.wrapping_add(7)))
            }
            "cnt" => {
                self.counter += 1;
                Ok(Value::Int(self.counter))
            }
            "obs" => {
                let s = args[0].as_str();
                self.log
                    .push(format!("obs({})", String::from_utf8_lossy(s)));
                Ok(Value::Int(s.len() as i64))
            }
            "fail" => {
                let x = args[0].as_int();
                self.log.push(format!("fail({x})"));
                if x < 0 {
                    Err(VmError::Host("negative".into()))
                } else {
                    Ok(Value::Int(x))
                }
            }
            other => Err(VmError::HostUnavailable(format!("h.{other}"))),
        }
    }
}

fn test_env() -> Env {
    let mut e = Env::new();
    e.add_module(
        HostModuleSig::new("h")
            .func("add7", Ty::func(vec![Ty::Int], Ty::Int))
            .func("cnt", Ty::func(vec![], Ty::Int))
            .func("obs", Ty::func(vec![Ty::Str], Ty::Int))
            .func("fail", Ty::func(vec![Ty::Int], Ty::Int)),
    );
    e
}

// ------------------------------------------------------- program builder

/// Local layout of every generated function: four ints, two strings, one
/// int→int table, two loop counters — all initialized up front so every
/// control-flow join agrees on the init vector.
const I0: u16 = 0; // ints: I0..I0+4
const S0: u16 = 4; // strings: S0, S0+1
const T0: u16 = 6; // table
const C0: u16 = 7; // loop counters: C0, C0+1

struct Gen<'a> {
    rng: &'a mut TestRng,
    /// Import indices: add7, cnt, obs, fail (in that order).
    imports: [u32; 4],
    /// Index of a same-module helper function to `Call`, if any.
    helper: Option<u32>,
    /// String-pool entries usable by `ConstStr`.
    strs: Vec<u32>,
    /// Table type-pool entry.
    table_ty: u32,
}

impl Gen<'_> {
    fn pick(&mut self, bound: u64) -> u64 {
        self.rng.below(bound)
    }

    fn int_local(&mut self) -> u16 {
        I0 + self.pick(4) as u16
    }

    fn str_local(&mut self) -> u16 {
        S0 + self.pick(2) as u16
    }

    /// Emit code pushing one int.
    fn int_expr(&mut self, f: &mut FuncBuilder, depth: u32) {
        let choice = if depth == 0 {
            self.pick(2)
        } else {
            self.pick(12)
        };
        match choice {
            0 => {
                let k = self.pick(41) as i64 - 20;
                f.op(Op::ConstInt(k));
            }
            1 => {
                let l = self.int_local();
                f.op(Op::LocalGet(l));
            }
            2..=5 => {
                // Binary arithmetic — leaf+leaf shapes reproduce the
                // fusable LocalGet/LocalGet/Add and LocalGet/ConstInt/Add
                // pairs; Div and Mod can trap on zero.
                self.int_expr(f, depth - 1);
                self.int_expr(f, depth - 1);
                let op = match self.pick(5) {
                    0 => Op::Add,
                    1 => Op::Sub,
                    2 => Op::Mul,
                    3 => Op::Div,
                    _ => Op::Mod,
                };
                f.op(op);
            }
            6 => {
                self.int_expr(f, depth - 1);
                f.op(Op::Neg);
            }
            7 => {
                let s = self.str_local();
                f.op(Op::LocalGet(s)).op(Op::StrLen);
            }
            8 => {
                // Possibly-trapping byte access.
                let s = self.str_local();
                f.op(Op::LocalGet(s));
                self.int_expr(f, depth - 1);
                f.op(Op::StrByte);
            }
            9 => {
                // Table lookup with default.
                f.op(Op::LocalGet(T0));
                self.int_expr(f, depth - 1);
                self.int_expr(f, depth - 1);
                f.op(Op::TableGet);
            }
            10 => {
                // Tuple round trip.
                self.int_expr(f, depth - 1);
                self.int_expr(f, depth - 1);
                f.op(Op::TupleMake(2));
                f.op(Op::TupleGet(self.pick(2) as u8));
            }
            _ => {
                // Possibly-trapping unpack at a random offset.
                let s = self.str_local();
                f.op(Op::LocalGet(s));
                self.int_expr(f, depth - 1);
                f.op(Op::StrUnpackInt(2));
            }
        }
    }

    /// Emit code pushing one bool.
    fn bool_expr(&mut self, f: &mut FuncBuilder, depth: u32) {
        match if depth == 0 { 0 } else { self.pick(4) } {
            0 => {
                self.int_expr(f, 1);
                self.int_expr(f, 1);
                let op = match self.pick(6) {
                    0 => Op::Lt,
                    1 => Op::Le,
                    2 => Op::Gt,
                    3 => Op::Ge,
                    4 => Op::Eq,
                    _ => Op::Ne,
                };
                f.op(op);
            }
            1 => {
                self.bool_expr(f, depth - 1);
                f.op(Op::Not);
            }
            2 => {
                self.bool_expr(f, depth - 1);
                self.bool_expr(f, depth - 1);
                f.op(if self.pick(2) == 0 { Op::And } else { Op::Or });
            }
            _ => {
                f.op(Op::LocalGet(T0));
                self.int_expr(f, 1);
                f.op(Op::TableMem);
            }
        }
    }

    /// Emit code pushing one string.
    fn str_expr(&mut self, f: &mut FuncBuilder, depth: u32) {
        match if depth == 0 {
            self.pick(2)
        } else {
            self.pick(5)
        } {
            0 => {
                let i = self.pick(self.strs.len() as u64) as usize;
                let idx = self.strs[i];
                f.op(Op::ConstStr(idx));
            }
            1 => {
                let s = self.str_local();
                f.op(Op::LocalGet(s));
            }
            2 => {
                self.str_expr(f, depth - 1);
                self.str_expr(f, depth - 1);
                f.op(Op::StrConcat);
            }
            3 => {
                self.int_expr(f, 1);
                f.op(Op::StrPackInt([1u8, 2, 4, 6, 8][self.pick(5) as usize]));
            }
            _ => {
                self.int_expr(f, 1);
                f.op(Op::StrFromInt);
            }
        }
    }

    /// Emit one statement (net stack effect zero).
    fn stmt(&mut self, f: &mut FuncBuilder, depth: u32, loops: u16) {
        match self.pick(12) {
            0..=2 => {
                let l = self.int_local();
                self.int_expr(f, 2);
                f.op(Op::LocalSet(l));
            }
            3 => {
                let l = self.str_local();
                self.str_expr(f, 2);
                f.op(Op::LocalSet(l));
            }
            4 if depth > 0 => {
                // if/else with a fused-shape compare+branch.
                self.bool_expr(f, 1);
                let then_l = f.new_label();
                let join_l = f.new_label();
                f.br_if(then_l);
                self.block(f, depth - 1, loops);
                f.jump(join_l);
                f.place(then_l);
                self.block(f, depth - 1, loops);
                f.place(join_l);
            }
            5 if depth > 0 && loops < 2 => {
                // Bounded countdown loop.
                let c = C0 + loops;
                let n = 1 + self.pick(3) as i64;
                f.op(Op::ConstInt(n)).op(Op::LocalSet(c));
                let head = f.new_label();
                let exit = f.new_label();
                f.place(head);
                f.op(Op::LocalGet(c)).op(Op::ConstInt(0)).op(Op::Le);
                f.br_if(exit);
                self.block(f, depth - 1, loops + 1);
                f.op(Op::LocalGet(c))
                    .op(Op::ConstInt(1))
                    .op(Op::Sub)
                    .op(Op::LocalSet(c));
                f.jump(head);
                f.place(exit);
            }
            6 => {
                // Table insert or remove.
                f.op(Op::LocalGet(T0));
                self.int_expr(f, 1);
                if self.pick(3) == 0 {
                    f.op(Op::TableRemove);
                } else {
                    self.int_expr(f, 1);
                    f.op(Op::TableAdd);
                }
            }
            7 => {
                // Host call: add7 / cnt / fail (fail traps on negatives).
                let l = self.int_local();
                match self.pick(3) {
                    0 => {
                        self.int_expr(f, 1);
                        f.op(Op::CallImport(self.imports[0]));
                    }
                    1 => {
                        f.op(Op::CallImport(self.imports[1]));
                    }
                    _ => {
                        self.int_expr(f, 1);
                        f.op(Op::CallImport(self.imports[3]));
                    }
                }
                f.op(Op::LocalSet(l));
            }
            8 => {
                // Observe a string host-side.
                self.str_expr(f, 1);
                f.op(Op::CallImport(self.imports[2]));
                f.op(Op::Pop);
            }
            9 => {
                if let Some(h) = self.helper {
                    let l = self.int_local();
                    self.int_expr(f, 1);
                    f.op(Op::Call(h));
                    f.op(Op::LocalSet(l));
                }
            }
            10 => {
                if let Some(h) = self.helper {
                    // CallRef through a function value.
                    let l = self.int_local();
                    f.op(Op::FuncConst(h));
                    self.int_expr(f, 1);
                    f.op(Op::CallRef(1));
                    f.op(Op::LocalSet(l));
                }
            }
            _ => {
                // CallRef through an imported host function value.
                let l = self.int_local();
                f.op(Op::ImportGet(self.imports[0]));
                self.int_expr(f, 1);
                f.op(Op::CallRef(1));
                f.op(Op::LocalSet(l));
            }
        }
    }

    fn block(&mut self, f: &mut FuncBuilder, depth: u32, loops: u16) {
        let n = 1 + self.pick(3);
        for _ in 0..n {
            self.stmt(f, depth, loops);
        }
    }

    /// Standard prologue: initialize every local.
    fn prologue(&mut self, f: &mut FuncBuilder, n_params: u16) {
        for l in n_params..C0 + 2 {
            if l < S0 {
                let k = self.pick(9) as i64 - 4;
                f.op(Op::ConstInt(k)).op(Op::LocalSet(l));
            } else if l < T0 {
                let i = self.pick(self.strs.len() as u64) as usize;
                let idx = self.strs[i];
                f.op(Op::ConstStr(idx)).op(Op::LocalSet(l));
            } else if l == T0 {
                f.op(Op::TableNew(self.table_ty)).op(Op::LocalSet(l));
            } else {
                f.op(Op::ConstInt(0)).op(Op::LocalSet(l));
            }
        }
    }

    /// Standard epilogue: fold observable state into the result and the
    /// host log, then return an int.
    fn epilogue(&mut self, f: &mut FuncBuilder) {
        for l in 0..4u16 {
            f.op(Op::LocalGet(I0 + l));
            if l > 0 {
                f.op(Op::Add);
            }
        }
        f.op(Op::LocalGet(T0)).op(Op::TableLen).op(Op::Add);
        for s in 0..2u16 {
            f.op(Op::LocalGet(S0 + s))
                .op(Op::CallImport(self.imports[2]))
                .op(Op::Add);
        }
        f.op(Op::Return);
    }
}

/// Declare the standard locals on a [`FuncBuilder`] whose params are all
/// ints (params occupy the first int slots).
fn declare_locals(f: &mut FuncBuilder, n_params: u16) {
    for l in n_params..C0 + 2 {
        if l < S0 {
            f.local(Ty::Int);
        } else if l < T0 {
            f.local(Ty::Str);
        } else if l == T0 {
            f.local(Ty::table(Ty::Int, Ty::Int));
        } else {
            f.local(Ty::Int);
        }
    }
}

/// Build a random verified module pair: `m` (helper + entry) and, half the
/// time, `u` importing `m`'s export (exercising cross-instance calls).
/// Returns the namespace-ready images and the name/export to invoke.
fn gen_program(rng: &mut TestRng) -> (Vec<Vec<u8>>, &'static str) {
    let mut mb = ModuleBuilder::new("m");
    let imports = [
        mb.import("h", "add7", Ty::func(vec![Ty::Int], Ty::Int)),
        mb.import("h", "cnt", Ty::func(vec![], Ty::Int)),
        mb.import("h", "obs", Ty::func(vec![Ty::Str], Ty::Int)),
        mb.import("h", "fail", Ty::func(vec![Ty::Int], Ty::Int)),
    ];
    let strs = vec![
        mb.intern_str(b""),
        mb.intern_str(b"abc"),
        mb.intern_str(b"\x01\x02\x03\x04\x05\x06\x07\x08"),
    ];
    let table_ty = mb.intern_ty(Ty::table(Ty::Int, Ty::Int));

    // Helper: one int parameter, no further calls.
    let helper = {
        let mut f = mb.func("hlp", vec![Ty::Int], Ty::Int);
        declare_locals(&mut f, 1);
        let mut g = Gen {
            rng,
            imports,
            helper: None,
            strs: strs.clone(),
            table_ty,
        };
        g.prologue(&mut f, 1);
        g.block(&mut f, 1, 0);
        g.epilogue(&mut f);
        mb.finish(f)
    };

    // Entry: two int parameters.
    {
        let mut f = mb.func("go", vec![Ty::Int, Ty::Int], Ty::Int);
        declare_locals(&mut f, 2);
        let mut g = Gen {
            rng,
            imports,
            helper: Some(helper),
            strs: strs.clone(),
            table_ty,
        };
        g.prologue(&mut f, 2);
        g.block(&mut f, 2, 0);
        g.epilogue(&mut f);
        let idx = mb.finish(f);
        mb.export("go", idx);
        mb.export("hlp", helper);
    }
    let m = mb.build();
    crate::verify::verify_module(&m).expect("generated module must verify");
    let m_image = m.encode();

    if rng.below(2) == 0 {
        return (vec![m_image], "m");
    }

    // Wrapper module: calls into `m` through resolved cross-instance
    // imports.
    let mut ub = ModuleBuilder::new("u");
    let u_imports = [
        ub.import("h", "add7", Ty::func(vec![Ty::Int], Ty::Int)),
        ub.import("h", "cnt", Ty::func(vec![], Ty::Int)),
        ub.import("h", "obs", Ty::func(vec![Ty::Str], Ty::Int)),
        ub.import("h", "fail", Ty::func(vec![Ty::Int], Ty::Int)),
    ];
    let i_go = ub.import("m", "go", Ty::func(vec![Ty::Int, Ty::Int], Ty::Int));
    let i_hlp = ub.import("m", "hlp", Ty::func(vec![Ty::Int], Ty::Int));
    let u_strs = vec![ub.intern_str(b"u"), ub.intern_str(b"wrap")];
    let u_table_ty = ub.intern_ty(Ty::table(Ty::Int, Ty::Int));
    {
        let mut f = ub.func("go", vec![Ty::Int, Ty::Int], Ty::Int);
        declare_locals(&mut f, 2);
        let mut g = Gen {
            rng,
            imports: u_imports,
            helper: None,
            strs: u_strs,
            table_ty: u_table_ty,
        };
        g.prologue(&mut f, 2);
        g.block(&mut f, 1, 0);
        // Cross-instance calls: m.go(i0, i1) and m.hlp(i2).
        f.op(Op::LocalGet(I0))
            .op(Op::LocalGet(I0 + 1))
            .op(Op::CallImport(i_go))
            .op(Op::LocalSet(I0));
        f.op(Op::LocalGet(I0 + 2))
            .op(Op::CallImport(i_hlp))
            .op(Op::LocalSet(I0 + 1));
        g.epilogue(&mut f);
        let idx = ub.finish(f);
        ub.export("go", idx);
    }
    let u = ub.build();
    crate::verify::verify_module(&u).expect("generated wrapper must verify");
    (vec![m_image, u.encode()], "u")
}

// ----------------------------------------------------------- the oracle

type Outcome = Result<(i64, ExecStats), VmError>;

/// Run `entry.go(a, b)` under one interpreter, returning the comparable
/// outcome plus the host's observable state.
fn run(
    images: &[Vec<u8>],
    entry: &str,
    args: (i64, i64),
    fuel: u64,
    reference: bool,
) -> (Outcome, i64, Vec<String>) {
    let mut ns = Namespace::new(test_env());
    for image in images {
        ns.load(image).expect("generated image must load");
    }
    let (fv, _) = ns.lookup_export(entry, "go").expect("entry exported");
    let cfg = ExecConfig {
        fuel,
        max_depth: 64,
    };
    let mut host = TestHost::new();
    let call_args = vec![Value::Int(args.0), Value::Int(args.1)];
    let outcome = if reference {
        ref_call(&ns, &mut host, fv, call_args, &cfg)
    } else {
        call(&ns, &mut host, fv, call_args, &cfg)
    };
    (
        outcome.map(|(v, stats)| (v.as_int(), stats)),
        host.counter,
        host.log,
    )
}

fn assert_equiv(images: &[Vec<u8>], entry: &str, args: (i64, i64), fuel: u64) -> Outcome {
    let (a, a_cnt, a_log) = run(images, entry, args, fuel, true);
    let (b, b_cnt, b_log) = run(images, entry, args, fuel, false);
    assert_eq!(a, b, "result/stats diverged at fuel {fuel}");
    assert_eq!(a_cnt, b_cnt, "host counter diverged at fuel {fuel}");
    assert_eq!(a_log, b_log, "host call log diverged at fuel {fuel}");
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn decoded_vm_matches_reference(seed in any::<u64>(), a in -50i64..50, b in -50i64..50) {
        let mut rng = TestRng::seed_from_u64(seed);
        let (images, entry) = gen_program(&mut rng);

        // Full-budget run: identical value, stats, fuel and host trace.
        let full = assert_equiv(&images, entry, (a, b), 1_000_000);

        // Fuel sweep: exhaustion must land identically, including inside
        // sequences the decoded VM runs as superinstructions.
        if let Ok((_, stats)) = full {
            let n = stats.instructions;
            let probes = [0, 1, n / 3, n.saturating_sub(2), n.saturating_sub(1), n];
            for fuel in probes {
                let out = assert_equiv(&images, entry, (a, b), fuel);
                if fuel >= n {
                    prop_assert!(out.is_ok(), "full fuel must still succeed");
                } else {
                    prop_assert_eq!(
                        out.clone().err(),
                        Some(VmError::FuelExhausted),
                        "fuel {} of {} must exhaust", fuel, n
                    );
                }
            }
        } else {
            // Trap path: probe a few budgets anyway — both interpreters
            // must trap (or exhaust) identically.
            for fuel in [1, 7, 23, 101, 997] {
                let _ = assert_equiv(&images, entry, (a, b), fuel);
            }
        }
    }
}

#[cfg(test)]
mod fixed {
    use super::*;

    /// Fuel exhaustion in the middle of a fused `LocalGet;LocalGet;Add`:
    /// the decoded VM must report exactly the instructions the reference
    /// interpreter retires.
    #[test]
    fn exhaustion_mid_superinstruction() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.func("go", vec![Ty::Int, Ty::Int], Ty::Int);
        f.op(Op::LocalGet(0))
            .op(Op::LocalGet(1))
            .op(Op::Add)
            .op(Op::Return);
        let idx = mb.finish(f);
        mb.export("go", idx);
        let image = mb.build().encode();

        for fuel in 0..=5u64 {
            let out_ref = run(std::slice::from_ref(&image), "m", (2, 3), fuel, true);
            let out_new = run(std::slice::from_ref(&image), "m", (2, 3), fuel, false);
            assert_eq!(out_ref.0, out_new.0, "fuel {fuel}");
            if fuel >= 4 {
                let (v, stats) = out_new.0.unwrap();
                assert_eq!(v, 5);
                assert_eq!(stats.instructions, 4, "3 fused ops + return");
            } else {
                assert_eq!(out_new.0.unwrap_err(), VmError::FuelExhausted);
            }
        }
    }

    /// The dumb-bridge image (the real shipped switchlet) decodes and
    /// produces identical stats under both interpreters when its host
    /// calls are observable.
    #[test]
    fn loop_with_compare_branch_matches() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.func("go", vec![Ty::Int, Ty::Int], Ty::Int);
        let acc = f.local(Ty::Int);
        let i = f.local(Ty::Int);
        f.op(Op::ConstInt(0)).op(Op::LocalSet(acc));
        f.op(Op::ConstInt(0)).op(Op::LocalSet(i));
        let head = f.new_label();
        let exit = f.new_label();
        f.place(head);
        f.op(Op::LocalGet(i)).op(Op::LocalGet(0)).op(Op::Ge);
        f.br_if(exit);
        f.op(Op::LocalGet(acc)).op(Op::LocalGet(i)).op(Op::Add);
        f.op(Op::LocalSet(acc));
        f.op(Op::LocalGet(i)).op(Op::ConstInt(1)).op(Op::Add);
        f.op(Op::LocalSet(i));
        f.jump(head);
        f.place(exit);
        f.op(Op::LocalGet(acc)).op(Op::Return);
        let idx = mb.finish(f);
        mb.export("go", idx);
        let image = mb.build().encode();

        for n in [0i64, 1, 5, 17] {
            let r = run(std::slice::from_ref(&image), "m", (n, 0), 1_000_000, true);
            let d = run(std::slice::from_ref(&image), "m", (n, 0), 1_000_000, false);
            assert_eq!(r.0, d.0);
            let (v, _) = d.0.unwrap();
            assert_eq!(v, n * (n - 1) / 2);
        }
    }
}
