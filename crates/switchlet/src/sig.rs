//! Module signatures and interface digests.
//!
//! A signature is the *name-space surface* of a module: what it imports
//! (with full types) and what it exports. Following Caml's scheme, the
//! canonical encoding of each interface is fingerprinted with MD5 and the
//! fingerprints travel with the byte codes; the linker recomputes and
//! compares them. Combined with module thinning, "this leaves the switchlet
//! with no way of naming the excluded function and thus, no way of
//! accessing it."

use crate::digest::{md5, Digest};
use crate::types::Ty;

/// One imported item: `module.item : ty`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImportSig {
    /// Providing module's name (a host module or an earlier loaded unit).
    pub module: String,
    /// Item name within the provider.
    pub item: String,
    /// The full type the importer was compiled against.
    pub ty: Ty,
}

/// One exported item: `name : ty` (always a function in loadable modules;
/// host modules may export values too).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExportSig {
    /// Exported name.
    pub name: String,
    /// Exported type.
    pub ty: Ty,
}

fn encode_entry(out: &mut Vec<u8>, module: &str, item: &str, ty: &Ty) {
    out.extend_from_slice(module.as_bytes());
    out.push(0);
    out.extend_from_slice(item.as_bytes());
    out.push(0);
    ty.encode(out);
    out.push(b'\n');
}

/// Digest of an import list (order-sensitive, like a compilation unit's
/// dependency list).
pub fn digest_imports(imports: &[ImportSig]) -> Digest {
    let mut buf = Vec::new();
    for imp in imports {
        encode_entry(&mut buf, &imp.module, &imp.item, &imp.ty);
    }
    md5(&buf)
}

/// Digest of a module's export interface.
pub fn digest_exports(module_name: &str, exports: &[ExportSig]) -> Digest {
    let mut buf = Vec::new();
    for exp in exports {
        encode_entry(&mut buf, module_name, &exp.name, &exp.ty);
    }
    md5(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imp(m: &str, i: &str, ty: Ty) -> ImportSig {
        ImportSig {
            module: m.into(),
            item: i.into(),
            ty,
        }
    }

    #[test]
    fn digest_changes_with_type() {
        let a = digest_imports(&[imp("safestd", "log", Ty::func(vec![Ty::Str], Ty::Unit))]);
        let b = digest_imports(&[imp("safestd", "log", Ty::func(vec![Ty::Int], Ty::Unit))]);
        assert_ne!(a, b);
    }

    #[test]
    fn digest_changes_with_name() {
        let t = Ty::func(vec![Ty::Str], Ty::Unit);
        let a = digest_imports(&[imp("safestd", "log", t.clone())]);
        let b = digest_imports(&[imp("safestd", "warn", t)]);
        assert_ne!(a, b);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let x = imp("a", "x", Ty::Int);
        let y = imp("a", "y", Ty::Int);
        assert_ne!(
            digest_imports(&[x.clone(), y.clone()]),
            digest_imports(&[y, x])
        );
    }

    #[test]
    fn separator_cannot_be_confused() {
        // ("ab","c") vs ("a","bc") must digest differently thanks to the
        // NUL separators.
        let a = digest_imports(&[imp("ab", "c", Ty::Int)]);
        let b = digest_imports(&[imp("a", "bc", Ty::Int)]);
        assert_ne!(a, b);
    }

    #[test]
    fn export_digest_incorporates_module_name() {
        let e = vec![ExportSig {
            name: "f".into(),
            ty: Ty::func(vec![], Ty::Unit),
        }];
        assert_ne!(digest_exports("m1", &e), digest_exports("m2", &e));
    }
}
