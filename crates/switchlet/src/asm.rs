//! The switchlet assembler: a builder API for constructing modules in Rust.
//!
//! This is the reproduction's stand-in for the Caml compiler front end: the
//! way a developer (or an example program) authors a switchlet before
//! shipping its byte codes over the network. The builder handles label
//! resolution, pool interning and digest sealing; the verifier still checks
//! the result, so the assembler does not need to be trusted.
//!
//! ```
//! use switchlet::asm::ModuleBuilder;
//! use switchlet::bytecode::Op;
//! use switchlet::types::Ty;
//!
//! let mut mb = ModuleBuilder::new("double");
//! let mut f = mb.func("double", vec![Ty::Int], Ty::Int);
//! f.op(Op::LocalGet(0));
//! f.op(Op::ConstInt(2));
//! f.op(Op::Mul);
//! f.op(Op::Return);
//! let idx = mb.finish(f);
//! mb.export("double", idx);
//! let module = mb.build();
//! assert!(switchlet::verify::verify_module(&module).is_ok());
//! ```

use crate::bytecode::{Function, Op};
use crate::digest::Digest;
use crate::module::{Export, Module};
use crate::sig::ImportSig;
use crate::types::Ty;

/// A forward-referenceable code location.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Label(usize);

enum Ins {
    Op(Op),
    Jump(Label),
    BrIf(Label),
    BrIfNot(Label),
}

/// Builds one function.
pub struct FuncBuilder {
    name: String,
    params: Vec<Ty>,
    locals: Vec<Ty>,
    result: Ty,
    code: Vec<Ins>,
    labels: Vec<Option<usize>>,
}

impl FuncBuilder {
    /// Declare a new local; returns its slot index (after the parameters).
    pub fn local(&mut self, ty: Ty) -> u16 {
        let idx = self.params.len() + self.locals.len();
        self.locals.push(ty);
        idx as u16
    }

    /// Append a plain instruction. Do not pass branch instructions here —
    /// use [`FuncBuilder::jump`]/[`FuncBuilder::br_if`]/
    /// [`FuncBuilder::br_if_not`] with labels instead (raw targets would be
    /// invalidated by later edits).
    pub fn op(&mut self, op: Op) -> &mut Self {
        assert!(
            !matches!(op, Op::Jump(_) | Op::BrIf(_) | Op::BrIfNot(_)),
            "use the label-based branch helpers"
        );
        self.code.push(Ins::Op(op));
        self
    }

    /// Create a label (place it later with [`FuncBuilder::place`]).
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the next instruction's position.
    pub fn place(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label placed twice in {}",
            self.name
        );
        self.labels[label.0] = Some(self.code.len());
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.code.push(Ins::Jump(label));
        self
    }

    /// Pop a bool, branch if true.
    pub fn br_if(&mut self, label: Label) -> &mut Self {
        self.code.push(Ins::BrIf(label));
        self
    }

    /// Pop a bool, branch if false.
    pub fn br_if_not(&mut self, label: Label) -> &mut Self {
        self.code.push(Ins::BrIfNot(label));
        self
    }

    fn assemble(self) -> Function {
        let resolve = |l: Label| -> u32 {
            self.labels[l.0].unwrap_or_else(|| panic!("unplaced label in {}", self.name)) as u32
        };
        let code = self
            .code
            .iter()
            .map(|ins| match ins {
                Ins::Op(op) => op.clone(),
                Ins::Jump(l) => Op::Jump(resolve(*l)),
                Ins::BrIf(l) => Op::BrIf(resolve(*l)),
                Ins::BrIfNot(l) => Op::BrIfNot(resolve(*l)),
            })
            .collect();
        Function {
            name: self.name,
            params: self.params,
            locals: self.locals,
            result: self.result,
            code,
        }
    }
}

/// Builds one module.
pub struct ModuleBuilder {
    name: String,
    imports: Vec<ImportSig>,
    exports: Vec<Export>,
    ty_pool: Vec<Ty>,
    str_pool: Vec<Vec<u8>>,
    functions: Vec<Function>,
    init: Option<u32>,
}

impl ModuleBuilder {
    /// Start a module named `name`.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            name: name.into(),
            imports: Vec::new(),
            exports: Vec::new(),
            ty_pool: Vec::new(),
            str_pool: Vec::new(),
            functions: Vec::new(),
            init: None,
        }
    }

    /// Declare an import; returns its index for `CallImport`/`ImportGet`.
    /// Re-declaring an identical import returns the existing index.
    pub fn import(&mut self, module: impl Into<String>, item: impl Into<String>, ty: Ty) -> u32 {
        let sig = ImportSig {
            module: module.into(),
            item: item.into(),
            ty,
        };
        if let Some(pos) = self.imports.iter().position(|i| *i == sig) {
            return pos as u32;
        }
        self.imports.push(sig);
        (self.imports.len() - 1) as u32
    }

    /// Intern a string-pool constant; returns its index for `ConstStr`.
    pub fn intern_str(&mut self, bytes: &[u8]) -> u32 {
        if let Some(pos) = self.str_pool.iter().position(|s| s == bytes) {
            return pos as u32;
        }
        self.str_pool.push(bytes.to_vec());
        (self.str_pool.len() - 1) as u32
    }

    /// Intern a type-pool entry; returns its index for `TableNew`.
    pub fn intern_ty(&mut self, ty: Ty) -> u32 {
        if let Some(pos) = self.ty_pool.iter().position(|t| *t == ty) {
            return pos as u32;
        }
        self.ty_pool.push(ty);
        (self.ty_pool.len() - 1) as u32
    }

    /// Begin a function.
    pub fn func(&mut self, name: impl Into<String>, params: Vec<Ty>, result: Ty) -> FuncBuilder {
        FuncBuilder {
            name: name.into(),
            params,
            locals: Vec::new(),
            result,
            code: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// The index the *next* finished function will receive (needed to emit
    /// self- or forward-references with `FuncConst`/`Call`).
    pub fn next_func_index(&self) -> u32 {
        self.functions.len() as u32
    }

    /// Finish a function; returns its index.
    pub fn finish(&mut self, fb: FuncBuilder) -> u32 {
        self.functions.push(fb.assemble());
        (self.functions.len() - 1) as u32
    }

    /// Export function `idx` under `name`.
    pub fn export(&mut self, name: impl Into<String>, idx: u32) {
        self.exports.push(Export {
            name: name.into(),
            func: idx,
        });
    }

    /// Mark function `idx` as the load-time init (registration) function.
    pub fn set_init(&mut self, idx: u32) {
        self.init = Some(idx);
    }

    /// Assemble and seal the module (computes interface digests).
    pub fn build(self) -> Module {
        let mut m = Module {
            name: self.name,
            imports: self.imports,
            exports: self.exports,
            ty_pool: self.ty_pool,
            str_pool: self.str_pool,
            functions: self.functions,
            init: self.init,
            import_digest: Digest::default(),
            export_digest: Digest::default(),
        };
        m.seal();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Env, NoHost};
    use crate::linker::Namespace;
    use crate::verify::verify_module;
    use crate::vm::{call, ExecConfig};

    /// Build, verify, load and run a nullary int function.
    fn run0(mb: ModuleBuilder, export: &str) -> i64 {
        let module = mb.build();
        verify_module(&module).expect("verifies");
        let mut ns = Namespace::new(Env::new());
        ns.load_module(module).unwrap();
        let (fv, _) = ns.lookup_export("m", export).unwrap();
        let (v, _) = call(&ns, &mut NoHost, fv, vec![], &ExecConfig::default()).unwrap();
        v.as_int()
    }

    #[test]
    fn loop_computes_sum() {
        // sum of 1..=10 via a while loop.
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.func("sum", vec![], Ty::Int);
        let i = f.local(Ty::Int);
        let acc = f.local(Ty::Int);
        f.op(Op::ConstInt(1)).op(Op::LocalSet(i));
        f.op(Op::ConstInt(0)).op(Op::LocalSet(acc));
        let head = f.new_label();
        let exit = f.new_label();
        f.place(head);
        f.op(Op::LocalGet(i)).op(Op::ConstInt(10)).op(Op::Gt);
        f.br_if(exit);
        f.op(Op::LocalGet(acc)).op(Op::LocalGet(i)).op(Op::Add);
        f.op(Op::LocalSet(acc));
        f.op(Op::LocalGet(i)).op(Op::ConstInt(1)).op(Op::Add);
        f.op(Op::LocalSet(i));
        f.jump(head);
        f.place(exit);
        f.op(Op::LocalGet(acc)).op(Op::Return);
        let idx = mb.finish(f);
        mb.export("sum", idx);
        assert_eq!(run0(mb, "sum"), 55);
    }

    #[test]
    fn string_packing_roundtrip() {
        // pack 0xCAFE as 2 bytes, unpack at offset 0.
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.func("roundtrip", vec![], Ty::Int);
        f.op(Op::ConstInt(0xCAFE));
        f.op(Op::StrPackInt(2));
        f.op(Op::ConstInt(0));
        f.op(Op::StrUnpackInt(2));
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("roundtrip", idx);
        assert_eq!(run0(mb, "roundtrip"), 0xCAFE);
    }

    #[test]
    fn tuple_projection() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.func("snd", vec![], Ty::Int);
        f.op(Op::ConstInt(1));
        f.op(Op::ConstInt(42));
        f.op(Op::TupleMake(2));
        f.op(Op::TupleGet(1));
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("snd", idx);
        assert_eq!(run0(mb, "snd"), 42);
    }

    #[test]
    fn table_state_persists_within_call() {
        let mut mb = ModuleBuilder::new("m");
        let table_ty = mb.intern_ty(Ty::table(Ty::Int, Ty::Int));
        let mut f = mb.func("t", vec![], Ty::Int);
        let t = f.local(Ty::table(Ty::Int, Ty::Int));
        f.op(Op::TableNew(table_ty)).op(Op::LocalSet(t));
        f.op(Op::LocalGet(t));
        f.op(Op::ConstInt(1)).op(Op::ConstInt(100)).op(Op::TableAdd);
        f.op(Op::LocalGet(t));
        f.op(Op::ConstInt(1)).op(Op::ConstInt(-1)).op(Op::TableGet);
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("t", idx);
        assert_eq!(run0(mb, "t"), 100);
    }

    #[test]
    fn interning_dedupes() {
        let mut mb = ModuleBuilder::new("m");
        assert_eq!(mb.intern_str(b"x"), mb.intern_str(b"x"));
        assert_ne!(mb.intern_str(b"x"), mb.intern_str(b"y"));
        assert_eq!(mb.intern_ty(Ty::Int), mb.intern_ty(Ty::Int));
        assert_eq!(
            mb.import("a", "b", Ty::func(vec![], Ty::Unit)),
            mb.import("a", "b", Ty::func(vec![], Ty::Unit))
        );
    }

    #[test]
    #[should_panic(expected = "unplaced label")]
    fn unplaced_label_panics() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.func("f", vec![], Ty::Unit);
        let l = f.new_label();
        f.jump(l);
        let _ = mb.finish(f);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.func("d", vec![], Ty::Int);
        f.op(Op::ConstInt(1)).op(Op::ConstInt(0)).op(Op::Div);
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("d", idx);
        let module = mb.build();
        verify_module(&module).unwrap();
        let mut ns = Namespace::new(Env::new());
        ns.load_module(module).unwrap();
        let (fv, _) = ns.lookup_export("m", "d").unwrap();
        let err = call(&ns, &mut NoHost, fv, vec![], &ExecConfig::default()).unwrap_err();
        assert_eq!(err, crate::vm::VmError::DivideByZero);
    }

    #[test]
    fn str_oob_traps() {
        let mut mb = ModuleBuilder::new("m");
        let s = mb.intern_str(b"ab");
        let mut f = mb.func("s", vec![], Ty::Int);
        f.op(Op::ConstStr(s)).op(Op::ConstInt(5)).op(Op::StrByte);
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("s", idx);
        let module = mb.build();
        verify_module(&module).unwrap();
        let mut ns = Namespace::new(Env::new());
        ns.load_module(module).unwrap();
        let (fv, _) = ns.lookup_export("m", "s").unwrap();
        let err = call(&ns, &mut NoHost, fv, vec![], &ExecConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            crate::vm::VmError::StrBounds { len: 2, index: 5 }
        ));
    }
}
