//! Runtime values.
//!
//! Values are type-erased at run time; the static verifier guarantees the
//! interpreter never sees an ill-typed operand, so the `match` arms that
//! extract payloads treat a mismatch as an internal error, not a security
//! boundary (mirroring how a Caml bytecode interpreter trusts its
//! compiler/linker).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::types::Ty;

/// Which loaded module instance a function reference points into.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct InstanceId(pub usize);

/// A callable value: a function in a loaded module, or a host function.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FuncVal {
    /// Function `func` of loaded module instance `instance`.
    Vm {
        /// The loaded module.
        instance: InstanceId,
        /// Function index within it.
        func: u32,
    },
    /// A host function slot.
    Host {
        /// Host module index within the environment.
        module: u16,
        /// Item index within the host module.
        item: u16,
    },
}

/// A hashable key (the subset of values allowed as table keys and `Eq`
/// operands — see [`Ty::hashable`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Key {
    /// Unit key.
    Unit,
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// String key.
    Str(Vec<u8>),
}

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// An immutable byte string.
    Str(Rc<Vec<u8>>),
    /// A tuple.
    Tuple(Rc<Vec<Value>>),
    /// A function reference.
    Func(FuncVal),
    /// A mutable hash table.
    Table(Rc<RefCell<HashMap<Key, Value>>>),
    /// An opaque handle of an abstract named type (e.g. an `iport`).
    /// Only host functions mint these.
    Handle {
        /// The nominal type tag.
        tag: Rc<str>,
        /// Host-assigned identity.
        id: u64,
    },
}

impl Value {
    /// Build a string value.
    pub fn str(bytes: impl Into<Vec<u8>>) -> Value {
        Value::Str(Rc::new(bytes.into()))
    }

    /// Build an empty table.
    pub fn new_table() -> Value {
        Value::Table(Rc::new(RefCell::new(HashMap::new())))
    }

    /// Build a handle.
    pub fn handle(tag: &str, id: u64) -> Value {
        Value::Handle {
            tag: Rc::from(tag),
            id,
        }
    }

    /// Convert to a table key; `None` if the value is not hashable.
    pub fn to_key(&self) -> Option<Key> {
        match self {
            Value::Unit => Some(Key::Unit),
            Value::Bool(b) => Some(Key::Bool(*b)),
            Value::Int(i) => Some(Key::Int(*i)),
            Value::Str(s) => Some(Key::Str(s.as_ref().clone())),
            _ => None,
        }
    }

    /// Structural equality on the hashable subset; `None` for
    /// non-comparable values (the verifier prevents reaching that case via
    /// `Eq`/`Ne` instructions).
    pub fn hash_eq(&self, other: &Value) -> Option<bool> {
        Some(self.to_key()? == other.to_key()?)
    }

    /// Whether this value inhabits `ty`. Used at host-call boundaries and
    /// in tests; within verified bytecode it always holds.
    pub fn matches(&self, ty: &Ty) -> bool {
        match (self, ty) {
            (Value::Unit, Ty::Unit) => true,
            (Value::Bool(_), Ty::Bool) => true,
            (Value::Int(_), Ty::Int) => true,
            (Value::Str(_), Ty::Str) => true,
            (Value::Tuple(items), Ty::Tuple(tys)) => {
                items.len() == tys.len() && items.iter().zip(tys).all(|(v, t)| v.matches(t))
            }
            (Value::Func(_), Ty::Func(_)) => true, // arity checked at link/verify
            (Value::Table(_), Ty::Table(_, _)) => true,
            (Value::Handle { tag, .. }, Ty::Named(want)) => tag.as_ref() == want.as_str(),
            _ => false,
        }
    }

    /// Extract an integer (internal-error panic on mismatch; the verifier
    /// guarantees this for verified code).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("verifier invariant broken: expected int, got {other:?}"),
        }
    }

    /// Extract a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("verifier invariant broken: expected bool, got {other:?}"),
        }
    }

    /// Extract a string.
    pub fn as_str(&self) -> &Rc<Vec<u8>> {
        match self {
            Value::Str(s) => s,
            other => panic!("verifier invariant broken: expected str, got {other:?}"),
        }
    }

    /// Extract a handle id, checking the tag.
    pub fn as_handle(&self, want_tag: &str) -> u64 {
        match self {
            Value::Handle { tag, id } if tag.as_ref() == want_tag => *id,
            other => panic!("verifier invariant broken: expected {want_tag}, got {other:?}"),
        }
    }

    /// A short rendering for logs.
    pub fn render(&self) -> String {
        match self {
            Value::Unit => "()".into(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Str(s) => format!("{:?}", String::from_utf8_lossy(s)),
            Value::Tuple(items) => {
                let parts: Vec<String> = items.iter().map(|v| v.render()).collect();
                format!("({})", parts.join(", "))
            }
            Value::Func(f) => format!("<fun {f:?}>"),
            Value::Table(t) => format!("<table len={}>", t.borrow().len()),
            Value::Handle { tag, id } => format!("<{tag}#{id}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_roundtrip() {
        assert_eq!(Value::Int(7).to_key(), Some(Key::Int(7)));
        assert_eq!(Value::str("ab").to_key(), Some(Key::Str(b"ab".to_vec())));
        assert_eq!(Value::new_table().to_key(), None);
    }

    #[test]
    fn hash_eq_on_hashables() {
        assert_eq!(Value::Int(1).hash_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).hash_eq(&Value::Int(2)), Some(false));
        assert_eq!(Value::str("a").hash_eq(&Value::str("a")), Some(true));
        assert_eq!(Value::new_table().hash_eq(&Value::new_table()), None);
    }

    #[test]
    fn matches_respects_named_tags() {
        let h = Value::handle("iport", 3);
        assert!(h.matches(&Ty::named("iport")));
        assert!(!h.matches(&Ty::named("oport")));
        assert!(!Value::Int(3).matches(&Ty::named("iport")));
    }

    #[test]
    fn matches_tuples_structurally() {
        let v = Value::Tuple(Rc::new(vec![Value::Int(1), Value::str("x")]));
        assert!(v.matches(&Ty::tuple(vec![Ty::Int, Ty::Str])));
        assert!(!v.matches(&Ty::tuple(vec![Ty::Str, Ty::Str])));
    }

    #[test]
    fn table_shares_storage_across_clones() {
        let t = Value::new_table();
        let t2 = t.clone();
        if let (Value::Table(a), Value::Table(b)) = (&t, &t2) {
            a.borrow_mut().insert(Key::Int(1), Value::Int(10));
            assert_eq!(b.borrow().len(), 1);
        } else {
            unreachable!()
        }
    }

    #[test]
    #[should_panic(expected = "verifier invariant broken")]
    fn as_int_panics_on_mismatch() {
        let _ = Value::Unit.as_int();
    }
}
