//! The Dynlink-style loader/linker.
//!
//! Mirrors the paper's linking model (Section 5.1.2):
//!
//! * [`Namespace::new`] ≈ `Dynlink.init` + `Dynlink.add_available_units`:
//!   it creates the name space and enters the host modules' (thinned)
//!   signatures into it;
//! * [`Namespace::load`] ≈ `Dynlink.load`: decode the byte codes, check
//!   the interface digests, resolve every import by name with *exact* type
//!   equality (a forged signature "would result in a link time error
//!   because the signatures would not match"), statically verify the code,
//!   and instantiate;
//! * [`Namespace::load_and_init`] additionally evaluates the module's
//!   `init` function — the "top-level forms that call a registration
//!   function" — under a fuel budget.
//!
//! Later modules can import earlier modules' exports, but "there is no
//! function to allow previously linked functions ... to access the newly
//! loaded functions" other than registration through host tables.

use std::collections::HashMap;

use crate::env::{Env, HostDispatch, HostSlot};
use crate::module::{DecodeError, Module};
use crate::sig::ImportSig;
use crate::types::Ty;
use crate::value::{FuncVal, InstanceId, Value};
use crate::verify::{verify_module, VerifyError};
use crate::vm::{call, ExecConfig, ExecStats, VmError};

/// Where an import resolved to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResolvedImport {
    /// A host function.
    Host(HostSlot),
    /// An export of an earlier loaded module.
    Vm {
        /// The providing instance.
        instance: InstanceId,
        /// Function index within it.
        func: u32,
    },
}

/// A loaded, linked module.
#[derive(Debug)]
pub struct Instance {
    /// The verified module.
    pub module: Module,
    /// Per-import resolution, parallel to `module.imports`.
    pub resolved: Vec<ResolvedImport>,
    /// String-pool constants interned once at link time, parallel to
    /// `module.str_pool`: `ConstStr` pushes a clone of the prebuilt
    /// `Rc` value (a pointer bump) instead of copying the pool bytes on
    /// every execution.
    pub str_consts: Vec<std::rc::Rc<Vec<u8>>>,
    /// Functions translated to the pre-decoded execution form (branch
    /// offsets remapped, call targets and host slots resolved, hot pairs
    /// fused) — what the interpreter actually runs. Built once here, after
    /// verification; parallel to `module.functions`.
    pub(crate) decoded: Vec<crate::decode::DecodedFunc>,
}

/// Loading failures — every way the node rejects a switchlet *before* it
/// can run.
#[derive(Debug, PartialEq)]
pub enum LoadError {
    /// The image failed structural decoding (including digest mismatches).
    Decode(DecodeError),
    /// An import names nothing in scope (possibly thinned away).
    UnresolvedImport {
        /// Requested module name.
        module: String,
        /// Requested item name.
        item: String,
    },
    /// An import exists but at a different type.
    ImportTypeMismatch {
        /// Requested module name.
        module: String,
        /// Requested item name.
        item: String,
        /// What the importer was compiled against.
        want: Ty,
        /// What the environment provides.
        found: Ty,
    },
    /// A unit with this name is already loaded.
    DuplicateModule(String),
    /// An import declared a non-function type (only functions are
    /// importable).
    NonFunctionImport {
        /// Requested module name.
        module: String,
        /// Requested item name.
        item: String,
    },
    /// The code failed static verification.
    Verify(VerifyError),
    /// The init function trapped (the module stays loaded but inert;
    /// callers typically discard it).
    InitTrap(VmError),
}

impl core::fmt::Display for LoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadError::Decode(e) => write!(f, "decode: {e}"),
            LoadError::UnresolvedImport { module, item } => {
                write!(f, "unresolved import {module}.{item}")
            }
            LoadError::ImportTypeMismatch {
                module,
                item,
                want,
                found,
            } => write!(
                f,
                "import {module}.{item}: compiled against {want}, environment provides {found}"
            ),
            LoadError::DuplicateModule(name) => write!(f, "module {name} already loaded"),
            LoadError::NonFunctionImport { module, item } => {
                write!(f, "import {module}.{item} is not function-typed")
            }
            LoadError::Verify(e) => write!(f, "verification failed: {e}"),
            LoadError::InitTrap(e) => write!(f, "init trapped: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// The loader's name space: host signatures plus loaded instances.
pub struct Namespace {
    env: Env,
    instances: Vec<Instance>,
    by_name: HashMap<String, InstanceId>,
}

impl Namespace {
    /// Create a name space offering the given host environment.
    pub fn new(env: Env) -> Namespace {
        Namespace {
            env,
            instances: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The host environment (signatures only).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// A loaded instance.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id.0]
    }

    /// Loaded instance count.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when nothing is loaded.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Find a loaded unit by name.
    pub fn find(&self, name: &str) -> Option<InstanceId> {
        self.by_name.get(name).copied()
    }

    /// Look up an export of a loaded unit: `(callable, its type)`.
    pub fn lookup_export(&self, module: &str, item: &str) -> Option<(FuncVal, Ty)> {
        let id = self.find(module)?;
        let inst = &self.instances[id.0];
        let exp = inst.module.exports.iter().find(|e| e.name == item)?;
        let f = &inst.module.functions[exp.func as usize];
        Some((
            FuncVal::Vm {
                instance: id,
                func: exp.func,
            },
            Ty::func(f.params.clone(), f.result.clone()),
        ))
    }

    fn resolve_import(&self, imp: &ImportSig) -> Result<ResolvedImport, LoadError> {
        // Host modules first (they are the primordial units).
        if let Some((slot, ty)) = self.env.lookup(&imp.module, &imp.item) {
            if *ty != imp.ty {
                return Err(LoadError::ImportTypeMismatch {
                    module: imp.module.clone(),
                    item: imp.item.clone(),
                    want: imp.ty.clone(),
                    found: ty.clone(),
                });
            }
            return Ok(ResolvedImport::Host(slot));
        }
        // Then previously loaded units.
        if let Some((fv, ty)) = self.lookup_export(&imp.module, &imp.item) {
            if ty != imp.ty {
                return Err(LoadError::ImportTypeMismatch {
                    module: imp.module.clone(),
                    item: imp.item.clone(),
                    want: imp.ty.clone(),
                    found: ty,
                });
            }
            let FuncVal::Vm { instance, func } = fv else {
                unreachable!()
            };
            return Ok(ResolvedImport::Vm { instance, func });
        }
        Err(LoadError::UnresolvedImport {
            module: imp.module.clone(),
            item: imp.item.clone(),
        })
    }

    /// Decode, link and verify an image; does **not** run its init.
    /// On success the unit is entered into the name space.
    pub fn load(&mut self, image: &[u8]) -> Result<InstanceId, LoadError> {
        let module = Module::decode(image).map_err(LoadError::Decode)?;
        self.load_module(module)
    }

    /// Link and verify an already-decoded module (used by the boot loader,
    /// which holds modules "on disk").
    pub fn load_module(&mut self, module: Module) -> Result<InstanceId, LoadError> {
        if self.by_name.contains_key(&module.name) {
            return Err(LoadError::DuplicateModule(module.name.clone()));
        }
        let mut resolved = Vec::with_capacity(module.imports.len());
        for imp in &module.imports {
            if !matches!(imp.ty, Ty::Func(_)) {
                return Err(LoadError::NonFunctionImport {
                    module: imp.module.clone(),
                    item: imp.item.clone(),
                });
            }
            resolved.push(self.resolve_import(imp)?);
        }
        verify_module(&module).map_err(LoadError::Verify)?;
        let id = InstanceId(self.instances.len());
        self.by_name.insert(module.name.clone(), id);
        let str_consts = module
            .str_pool
            .iter()
            .map(|s| std::rc::Rc::new(s.clone()))
            .collect();
        // Translate to the execution form — only verified code is decoded.
        let decoded = module
            .functions
            .iter()
            .map(|f| crate::decode::decode_function(&module, f, &resolved))
            .collect();
        self.instances.push(Instance {
            module,
            resolved,
            str_consts,
            decoded,
        });
        Ok(id)
    }

    /// Decode, link, verify, then evaluate the module's init function.
    /// Returns the instance id and the init's execution stats.
    pub fn load_and_init(
        &mut self,
        image: &[u8],
        host: &mut dyn HostDispatch,
        cfg: &ExecConfig,
    ) -> Result<(InstanceId, ExecStats), LoadError> {
        let id = self.load(image)?;
        let stats = self.run_init(id, host, cfg)?;
        Ok((id, stats))
    }

    /// Evaluate a loaded module's init function (no-op if it has none).
    pub fn run_init(
        &mut self,
        id: InstanceId,
        host: &mut dyn HostDispatch,
        cfg: &ExecConfig,
    ) -> Result<ExecStats, LoadError> {
        let Some(init) = self.instances[id.0].module.init else {
            return Ok(ExecStats::default());
        };
        let target = FuncVal::Vm {
            instance: id,
            func: init,
        };
        match call(self, host, target, Vec::new(), cfg) {
            Ok((Value::Unit, stats)) => Ok(stats),
            Ok((_, stats)) => {
                // Verifier guarantees init returns unit.
                debug_assert!(false, "init returned non-unit");
                Ok(stats)
            }
            Err(e) => Err(LoadError::InitTrap(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ModuleBuilder;
    use crate::bytecode::Op;
    use crate::env::{HostModuleSig, NoHost};

    fn env() -> Env {
        let mut e = Env::new();
        e.add_module(HostModuleSig::new("safestd").func("add7", Ty::func(vec![Ty::Int], Ty::Int)));
        e
    }

    struct Add7;
    impl HostDispatch for Add7 {
        fn call(&mut self, module: &str, item: &str, args: Vec<Value>) -> Result<Value, VmError> {
            assert_eq!((module, item), ("safestd", "add7"));
            Ok(Value::Int(args[0].as_int() + 7))
        }
    }

    fn id_module() -> Vec<u8> {
        let mut mb = ModuleBuilder::new("ident");
        let imp = mb.import("safestd", "add7", Ty::func(vec![Ty::Int], Ty::Int));
        let mut f = mb.func("go", vec![Ty::Int], Ty::Int);
        f.op(Op::LocalGet(0));
        f.op(Op::CallImport(imp));
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("go", idx);
        mb.build().encode()
    }

    #[test]
    fn load_and_call_with_host() {
        let mut ns = Namespace::new(env());
        let id = ns.load(&id_module()).unwrap();
        let (fv, ty) = ns.lookup_export("ident", "go").unwrap();
        assert_eq!(ty, Ty::func(vec![Ty::Int], Ty::Int));
        let (v, stats) = call(
            &ns,
            &mut Add7,
            fv,
            vec![Value::Int(35)],
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(v.as_int(), 42);
        assert!(stats.instructions >= 3);
        assert_eq!(stats.host_calls, 1);
        assert_eq!(ns.find("ident"), Some(id));
    }

    #[test]
    fn unresolved_import_rejected() {
        // `system` was thinned out of safestd: unnameable.
        let mut mb = ModuleBuilder::new("evil");
        let imp = mb.import("safestd", "system", Ty::func(vec![Ty::Str], Ty::Int));
        let mut f = mb.func("go", vec![], Ty::Int);
        f.op(Op::ConstStr(mb.intern_str(b"rm -rf /")));
        f.op(Op::CallImport(imp));
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("go", idx);
        let image = mb.build().encode();

        let mut ns = Namespace::new(env());
        match ns.load(&image) {
            Err(LoadError::UnresolvedImport { module, item }) => {
                assert_eq!((module.as_str(), item.as_str()), ("safestd", "system"));
            }
            other => panic!("expected unresolved import, got {other:?}"),
        }
    }

    #[test]
    fn import_type_mismatch_rejected() {
        // Compiled against a *different* signature for add7 — the paper's
        // "signature built by an attacker" scenario: link-time error.
        let mut mb = ModuleBuilder::new("forged");
        let imp = mb.import("safestd", "add7", Ty::func(vec![Ty::Str], Ty::Str));
        let mut f = mb.func("go", vec![], Ty::Str);
        f.op(Op::ConstStr(mb.intern_str(b"x")));
        f.op(Op::CallImport(imp));
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("go", idx);
        let image = mb.build().encode();

        let mut ns = Namespace::new(env());
        assert!(matches!(
            ns.load(&image),
            Err(LoadError::ImportTypeMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_module_rejected() {
        let mut ns = Namespace::new(env());
        ns.load(&id_module()).unwrap();
        assert_eq!(
            ns.load(&id_module()),
            Err(LoadError::DuplicateModule("ident".into()))
        );
    }

    #[test]
    fn later_module_imports_earlier_export() {
        let mut ns = Namespace::new(env());
        ns.load(&id_module()).unwrap();

        let mut mb = ModuleBuilder::new("user");
        let imp = mb.import("ident", "go", Ty::func(vec![Ty::Int], Ty::Int));
        let mut f = mb.func("twice", vec![Ty::Int], Ty::Int);
        f.op(Op::LocalGet(0));
        f.op(Op::CallImport(imp));
        f.op(Op::CallImport(imp));
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("twice", idx);
        let image = mb.build().encode();

        ns.load(&image).unwrap();
        let (fv, _) = ns.lookup_export("user", "twice").unwrap();
        let (v, _) = call(
            &ns,
            &mut Add7,
            fv,
            vec![Value::Int(0)],
            &ExecConfig::default(),
        )
        .unwrap();
        assert_eq!(v.as_int(), 14);
    }

    #[test]
    fn infinite_loop_contained_by_fuel() {
        let mut mb = ModuleBuilder::new("spinner");
        let mut f = mb.func("spin", vec![], Ty::Unit);
        let head = f.new_label();
        f.place(head);
        f.op(Op::Nop);
        f.jump(head);
        let idx = mb.finish(f);
        mb.export("spin", idx);
        let image = mb.build().encode();

        let mut ns = Namespace::new(env());
        ns.load(&image).unwrap();
        let (fv, _) = ns.lookup_export("spinner", "spin").unwrap();
        let err = call(
            &ns,
            &mut NoHost,
            fv,
            vec![],
            &ExecConfig {
                fuel: 10_000,
                max_depth: 16,
            },
        )
        .unwrap_err();
        assert_eq!(err, VmError::FuelExhausted);
    }

    #[test]
    fn runaway_recursion_contained_by_depth() {
        let mut mb = ModuleBuilder::new("recur");
        let mut f = mb.func("r", vec![], Ty::Unit);
        f.op(Op::Call(0));
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("r", idx);
        let image = mb.build().encode();

        let mut ns = Namespace::new(env());
        ns.load(&image).unwrap();
        let (fv, _) = ns.lookup_export("recur", "r").unwrap();
        let err = call(
            &ns,
            &mut NoHost,
            fv,
            vec![],
            &ExecConfig {
                fuel: 1_000_000,
                max_depth: 32,
            },
        )
        .unwrap_err();
        assert_eq!(err, VmError::CallDepthExceeded);
    }

    #[test]
    fn init_runs_at_load() {
        let mut e = Env::new();
        e.add_module(HostModuleSig::new("func").func(
            "register",
            Ty::func(vec![Ty::Str, Ty::func(vec![Ty::Int], Ty::Int)], Ty::Unit),
        ));

        struct Registry {
            registered: Vec<String>,
        }
        impl HostDispatch for Registry {
            fn call(&mut self, _m: &str, _i: &str, args: Vec<Value>) -> Result<Value, VmError> {
                self.registered
                    .push(String::from_utf8_lossy(args[0].as_str()).into_owned());
                Ok(Value::Unit)
            }
        }

        let mut mb = ModuleBuilder::new("reg");
        let imp = mb.import(
            "func",
            "register",
            Ty::func(vec![Ty::Str, Ty::func(vec![Ty::Int], Ty::Int)], Ty::Unit),
        );
        let mut handler = mb.func("handler", vec![Ty::Int], Ty::Int);
        handler.op(Op::LocalGet(0));
        handler.op(Op::Return);
        let h_idx = mb.finish(handler);
        let name_idx = mb.intern_str(b"my_handler");
        let mut init = mb.func("init", vec![], Ty::Unit);
        init.op(Op::ConstStr(name_idx));
        init.op(Op::FuncConst(h_idx));
        init.op(Op::CallImport(imp));
        init.op(Op::Return);
        let i_idx = mb.finish(init);
        mb.set_init(i_idx);
        let image = mb.build().encode();

        let mut ns = Namespace::new(e);
        let mut reg = Registry {
            registered: Vec::new(),
        };
        ns.load_and_init(&image, &mut reg, &ExecConfig::default())
            .unwrap();
        assert_eq!(reg.registered, vec!["my_handler".to_string()]);
    }
}
