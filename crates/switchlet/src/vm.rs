//! The bytecode interpreter.
//!
//! Runs only *verified* code: the linker refuses to instantiate a module
//! the verifier rejected, so the interpreter performs no per-instruction
//! type checks (a payload-extraction mismatch is an internal panic, not a
//! recoverable state — exactly the trust a Caml runtime places in its
//! compiler). What it does enforce dynamically is the short list the paper
//! also enforced dynamically, plus containment:
//!
//! * string bounds (Caml checked array bounds at run time),
//! * division by zero,
//! * a **fuel meter** and a call-depth limit — our analogue of the active
//!   bridge protecting itself "from some algorithmic failures in
//!   loadable modules": a switchlet that loops forever is cut off, the
//!   error is reported, and the node keeps running.
//!
//! Since PR 4 the interpreter dispatches over the *pre-decoded* form built
//! at link time (see [`crate::decode`]): branch offsets, call targets and
//! host slots are resolved once per load, hot pairs run as fused
//! superinstructions, and the operand stack and locals live in a reusable
//! [`VmScratch`] arena so a steady-state invocation performs no
//! allocation. Fuel metering and [`ExecStats`] are bit-identical to
//! instruction-at-a-time execution of the source `Op` stream (each fused
//! instruction charges one unit per source op, and exhaustion mid-sequence
//! reports exactly the ops the reference interpreter would have retired) —
//! an equivalence the `refinterp` proptests pin down.

use std::rc::Rc;

use crate::env::{HostDispatch, HostSlot};
use crate::linker::Namespace;
use crate::value::{FuncVal, InstanceId, Key, Value};

/// Runtime failures. None of these can corrupt the host; they abort the
/// switchlet invocation and surface to the embedder.
#[derive(Clone, Debug, PartialEq)]
pub enum VmError {
    /// The fuel budget ran out (non-termination containment).
    FuelExhausted,
    /// Call nesting exceeded the configured limit.
    CallDepthExceeded,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// A string access was out of bounds.
    StrBounds {
        /// String length.
        len: usize,
        /// Offending index/offset.
        index: i64,
    },
    /// A host function reported an error.
    Host(String),
    /// A host call was made but no implementation is available.
    HostUnavailable(String),
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::FuelExhausted => write!(f, "fuel exhausted"),
            VmError::CallDepthExceeded => write!(f, "call depth exceeded"),
            VmError::DivideByZero => write!(f, "division by zero"),
            VmError::StrBounds { len, index } => {
                write!(f, "string index {index} out of bounds (len {len})")
            }
            VmError::Host(msg) => write!(f, "host error: {msg}"),
            VmError::HostUnavailable(name) => write!(f, "host function {name} unavailable"),
        }
    }
}

impl std::error::Error for VmError {}

/// Execution limits.
#[derive(Copy, Clone, Debug)]
pub struct ExecConfig {
    /// Maximum instructions per invocation.
    pub fuel: u64,
    /// Maximum call nesting.
    pub max_depth: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            fuel: 1_000_000,
            max_depth: 128,
        }
    }
}

/// What an invocation cost — fed to the simulator's time model (the
/// analogue of the paper's per-frame Caml cost instrumentation).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Host calls made.
    pub host_calls: u64,
}

/// Per-function hot counters accumulated across invocations — the
/// promotion signal a JIT tier consumes: which functions are entered
/// often and where the fuel actually goes. Keyed by
/// `(instance, function index)`; fuel is **inclusive** (a caller's total
/// includes its callees, the standard inclusive-time convention).
#[derive(Default, Debug)]
pub struct HotProfile {
    counters: std::collections::BTreeMap<(usize, u32), FuncHotCounters>,
}

/// One function's accumulated cost inside a [`HotProfile`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncHotCounters {
    /// Times the function was entered (including as a callee).
    pub calls: u64,
    /// Fuel (source instructions) retired while the function was on the
    /// stack — inclusive of callees.
    pub fuel: u64,
}

impl HotProfile {
    fn record(&mut self, instance: InstanceId, func: u32, fuel: u64) {
        let c = self.counters.entry((instance.0, func)).or_default();
        c.calls += 1;
        c.fuel += fuel;
    }

    /// The accumulated counters, in `(instance, func)` order.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, u32, FuncHotCounters)> + '_ {
        self.counters
            .iter()
            .map(|(&(inst, func), &c)| (InstanceId(inst), func, c))
    }

    /// Is anything recorded?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

/// The reusable execution arena: one operand stack and one locals area
/// shared by every frame of an invocation (frames are base-offset
/// windows). An embedder that keeps a `VmScratch` alive across
/// invocations (as the bridge does, one per node) runs steady-state
/// switchlet code with **zero** per-invocation allocation: the vectors
/// grow to the high-water mark once and are reused thereafter.
///
/// The arena optionally carries a [`HotProfile`]: with profiling enabled
/// every function entry bumps its call count and inclusive fuel. Off by
/// default (one `Option` check per function entry); profiling never
/// changes [`ExecStats`], fuel accounting or results.
#[derive(Default)]
pub struct VmScratch {
    stack: Vec<Value>,
    locals: Vec<Value>,
    profile: Option<Box<HotProfile>>,
}

impl VmScratch {
    /// A fresh arena with a useful starting capacity.
    pub fn new() -> VmScratch {
        VmScratch {
            stack: Vec::with_capacity(32),
            locals: Vec::with_capacity(32),
            profile: None,
        }
    }

    /// Start accumulating per-function hot counters (idempotent; keeps
    /// existing counts).
    pub fn enable_profile(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// The accumulated profile, if profiling was ever enabled.
    pub fn profile(&self) -> Option<&HotProfile> {
        self.profile.as_deref()
    }
}

/// Call a function value with `args`, using a throwaway arena.
///
/// `ns` provides the loaded instances; `host` the host implementations.
/// The arguments must match the function's type — guaranteed when the call
/// originates from verified code; embedder-originated calls (switchlet
/// entry points) are checked in debug builds.
pub fn call(
    ns: &Namespace,
    host: &mut dyn HostDispatch,
    target: FuncVal,
    args: Vec<Value>,
    cfg: &ExecConfig,
) -> Result<(Value, ExecStats), VmError> {
    let mut scratch = VmScratch::new();
    call_scratch(ns, host, target, args, cfg, &mut scratch)
}

/// Call a function value with `args`, reusing the given arena. This is
/// the per-frame entry point: with a long-lived `scratch` the invocation
/// allocates nothing in steady state.
pub fn call_scratch(
    ns: &Namespace,
    host: &mut dyn HostDispatch,
    target: FuncVal,
    mut args: Vec<Value>,
    cfg: &ExecConfig,
    scratch: &mut VmScratch,
) -> Result<(Value, ExecStats), VmError> {
    let mut stats = ExecStats::default();
    let mut fuel = cfg.fuel;
    // Nested entries (a host function re-entering the VM) stack above the
    // caller's live region; truncating back to the entry marks cleans up
    // every inner frame on both success and error paths.
    let stack_mark = scratch.stack.len();
    let locals_mark = scratch.locals.len();
    let result = match target {
        FuncVal::Host { module, item } => {
            stats.host_calls += 1;
            host.call_slot(ns.env(), HostSlot { module, item }, &mut args)
        }
        FuncVal::Vm { instance, func } => {
            debug_assert_eq!(
                args.len(),
                ns.instance(instance).module.functions[func as usize]
                    .params
                    .len(),
                "arity mismatch at entry"
            );
            debug_assert!(
                args.iter()
                    .zip(&ns.instance(instance).module.functions[func as usize].params)
                    .all(|(v, t)| v.matches(t)),
                "argument type mismatch at entry"
            );
            scratch.locals.append(&mut args);
            exec(
                ns,
                host,
                instance,
                func,
                cfg,
                &mut fuel,
                0,
                &mut stats,
                scratch,
                locals_mark,
            )
        }
    };
    scratch.stack.truncate(stack_mark);
    scratch.locals.truncate(locals_mark);
    result.map(|v| (v, stats))
}

/// Execute decoded function `func_idx` of `instance`, bumping the hot
/// profile (when enabled) with the entry and its inclusive fuel. The
/// trap path is charged too: the fuel a function burned before running
/// out is exactly what a promotion heuristic should see.
#[allow(clippy::too_many_arguments)]
fn exec(
    ns: &Namespace,
    host: &mut dyn HostDispatch,
    instance: InstanceId,
    func_idx: u32,
    cfg: &ExecConfig,
    fuel: &mut u64,
    depth: usize,
    stats: &mut ExecStats,
    scratch: &mut VmScratch,
    locals_base: usize,
) -> Result<Value, VmError> {
    if scratch.profile.is_none() {
        return exec_inner(
            ns,
            host,
            instance,
            func_idx,
            cfg,
            fuel,
            depth,
            stats,
            scratch,
            locals_base,
        );
    }
    let entry = stats.instructions;
    let result = exec_inner(
        ns,
        host,
        instance,
        func_idx,
        cfg,
        fuel,
        depth,
        stats,
        scratch,
        locals_base,
    );
    if let Some(profile) = scratch.profile.as_deref_mut() {
        profile.record(instance, func_idx, stats.instructions - entry);
    }
    result
}

/// Execute decoded function `func_idx` of `instance`. The caller has
/// already pushed the arguments at `scratch.locals[locals_base..]`.
#[allow(clippy::too_many_arguments)]
fn exec_inner(
    ns: &Namespace,
    host: &mut dyn HostDispatch,
    instance: InstanceId,
    func_idx: u32,
    cfg: &ExecConfig,
    fuel: &mut u64,
    depth: usize,
    stats: &mut ExecStats,
    scratch: &mut VmScratch,
    locals_base: usize,
) -> Result<Value, VmError> {
    use crate::decode::{Cmp, Inst};

    if depth >= cfg.max_depth {
        return Err(VmError::CallDepthExceeded);
    }
    let inst_ref = ns.instance(instance);
    let dfunc = &inst_ref.decoded[func_idx as usize];
    let code = &dfunc.insts;
    debug_assert_eq!(
        scratch.locals.len() - locals_base,
        dfunc.n_params as usize,
        "arity mismatch at frame entry of {}",
        inst_ref.module.functions[func_idx as usize].name
    );
    // Locals: parameters then placeholder slots (verified code never reads
    // a local before writing it, so Unit placeholders are unobservable).
    scratch
        .locals
        .resize(locals_base + dfunc.n_slots as usize, Value::Unit);
    let stack_base = scratch.stack.len();
    let mut pc: usize = 0;

    macro_rules! pop {
        () => {
            scratch
                .stack
                .pop()
                .expect("verifier invariant broken: stack underflow")
        };
    }
    macro_rules! push {
        ($v:expr) => {
            scratch.stack.push($v)
        };
    }
    macro_rules! local {
        ($n:expr) => {
            scratch.locals[locals_base + $n as usize]
        };
    }

    loop {
        let op = &code[pc];
        // Fuel: charge one unit per *source* op. A fused instruction whose
        // full cost exceeds the remaining fuel reports exhaustion after
        // retiring exactly the ops the unfused stream would have retired
        // (its partial effects are unobservable: the invocation aborts and
        // the arena is rolled back; fused sequences are side-effect-free).
        let cost = op.cost();
        if *fuel < cost {
            stats.instructions += *fuel;
            *fuel = 0;
            return Err(VmError::FuelExhausted);
        }
        *fuel -= cost;
        stats.instructions += cost;
        pc += 1;
        match op {
            Inst::ConstUnit => push!(Value::Unit),
            Inst::ConstBool(b) => push!(Value::Bool(*b)),
            Inst::ConstInt(i) => push!(Value::Int(*i)),
            Inst::ConstStr(n) => {
                // Interned at link time: pushing a pool constant is an
                // `Rc` clone (pointer bump), never a byte copy.
                push!(Value::Str(inst_ref.str_consts[*n as usize].clone()))
            }
            Inst::LocalGet(n) => push!(local!(*n).clone()),
            Inst::LocalSet(n) => local!(*n) = pop!(),
            Inst::Pop => {
                let _ = pop!();
            }
            Inst::Dup => {
                let top = scratch
                    .stack
                    .last()
                    .expect("verifier invariant broken")
                    .clone();
                push!(top);
            }
            Inst::Add => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Int(a.wrapping_add(b)));
            }
            Inst::Sub => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Int(a.wrapping_sub(b)));
            }
            Inst::Mul => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Int(a.wrapping_mul(b)));
            }
            Inst::Div => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                if b == 0 {
                    return Err(VmError::DivideByZero);
                }
                push!(Value::Int(a.wrapping_div(b)));
            }
            Inst::Mod => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                if b == 0 {
                    return Err(VmError::DivideByZero);
                }
                push!(Value::Int(a.wrapping_rem(b)));
            }
            Inst::Neg => {
                let a = pop!().as_int();
                push!(Value::Int(a.wrapping_neg()));
            }
            Inst::Eq => {
                let b = pop!();
                let a = pop!();
                push!(Value::Bool(
                    a.hash_eq(&b).expect("verifier invariant broken: eq")
                ));
            }
            Inst::Ne => {
                let b = pop!();
                let a = pop!();
                push!(Value::Bool(
                    !a.hash_eq(&b).expect("verifier invariant broken: ne")
                ));
            }
            Inst::Lt => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Bool(a < b));
            }
            Inst::Le => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Bool(a <= b));
            }
            Inst::Gt => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Bool(a > b));
            }
            Inst::Ge => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Bool(a >= b));
            }
            Inst::And => {
                let b = pop!().as_bool();
                let a = pop!().as_bool();
                push!(Value::Bool(a && b));
            }
            Inst::Or => {
                let b = pop!().as_bool();
                let a = pop!().as_bool();
                push!(Value::Bool(a || b));
            }
            Inst::Not => {
                let a = pop!().as_bool();
                push!(Value::Bool(!a));
            }
            Inst::Jump(t) => pc = *t as usize,
            Inst::BrIf(t) => {
                if pop!().as_bool() {
                    pc = *t as usize;
                }
            }
            Inst::BrIfNot(t) => {
                if !pop!().as_bool() {
                    pc = *t as usize;
                }
            }
            Inst::Return => {
                let result = pop!();
                debug_assert_eq!(
                    scratch.stack.len(),
                    stack_base,
                    "verifier invariant broken: dirty return"
                );
                scratch.locals.truncate(locals_base);
                return Ok(result);
            }
            Inst::Call(n) => {
                let argc = inst_ref.decoded[*n as usize].n_params as usize;
                let new_base = scratch.locals.len();
                let split = scratch.stack.len() - argc;
                scratch.locals.extend(scratch.stack.drain(split..));
                let result = exec(
                    ns,
                    host,
                    instance,
                    *n,
                    cfg,
                    fuel,
                    depth + 1,
                    stats,
                    scratch,
                    new_base,
                )?;
                push!(result);
            }
            Inst::CallHost { slot, argc } => {
                stats.host_calls += 1;
                let split = scratch.stack.len() - *argc as usize;
                let result = host.call_slot(ns.env(), *slot, &mut scratch.stack[split..])?;
                scratch.stack.truncate(split);
                push!(result);
            }
            Inst::CallVm {
                instance: callee_inst,
                func,
            } => {
                let argc = ns.instance(*callee_inst).decoded[*func as usize].n_params as usize;
                let new_base = scratch.locals.len();
                let split = scratch.stack.len() - argc;
                scratch.locals.extend(scratch.stack.drain(split..));
                let result = exec(
                    ns,
                    host,
                    *callee_inst,
                    *func,
                    cfg,
                    fuel,
                    depth + 1,
                    stats,
                    scratch,
                    new_base,
                )?;
                push!(result);
            }
            Inst::ImportGet(fv) => push!(Value::Func(*fv)),
            Inst::CallRef(arity) => {
                let argc = *arity as usize;
                let fpos = scratch.stack.len() - argc - 1;
                let fv = match &scratch.stack[fpos] {
                    Value::Func(fv) => *fv,
                    _ => panic!("verifier invariant broken: callref on non-function"),
                };
                match fv {
                    FuncVal::Host { module, item } => {
                        stats.host_calls += 1;
                        let result = host.call_slot(
                            ns.env(),
                            HostSlot { module, item },
                            &mut scratch.stack[fpos + 1..],
                        )?;
                        scratch.stack.truncate(fpos);
                        push!(result);
                    }
                    FuncVal::Vm {
                        instance: callee_inst,
                        func,
                    } => {
                        let new_base = scratch.locals.len();
                        scratch.locals.extend(scratch.stack.drain(fpos + 1..));
                        let _ = pop!(); // the function value
                        let result = exec(
                            ns,
                            host,
                            callee_inst,
                            func,
                            cfg,
                            fuel,
                            depth + 1,
                            stats,
                            scratch,
                            new_base,
                        )?;
                        push!(result);
                    }
                }
            }
            Inst::FuncConst(n) => push!(Value::Func(FuncVal::Vm { instance, func: *n })),
            Inst::TupleMake(n) => {
                let split = scratch.stack.len() - *n as usize;
                let items: Vec<Value> = scratch.stack.drain(split..).collect();
                push!(Value::Tuple(Rc::new(items)));
            }
            Inst::TupleGet(i) => {
                let Value::Tuple(items) = pop!() else {
                    panic!("verifier invariant broken: tupleget")
                };
                push!(items[*i as usize].clone());
            }
            Inst::StrLen => {
                let s = pop!();
                push!(Value::Int(s.as_str().len() as i64));
            }
            Inst::StrConcat => {
                let b = pop!();
                let a = pop!();
                let mut out = a.as_str().as_ref().clone();
                out.extend_from_slice(b.as_str());
                push!(Value::Str(Rc::new(out)));
            }
            Inst::StrByte => {
                let i = pop!().as_int();
                let s = pop!();
                let s = s.as_str();
                if i < 0 || i as usize >= s.len() {
                    return Err(VmError::StrBounds {
                        len: s.len(),
                        index: i,
                    });
                }
                push!(Value::Int(s[i as usize] as i64));
            }
            Inst::StrSlice => {
                let len = pop!().as_int();
                let start = pop!().as_int();
                let s = pop!();
                let s = s.as_str();
                if start < 0 || len < 0 || (start as usize).saturating_add(len as usize) > s.len() {
                    return Err(VmError::StrBounds {
                        len: s.len(),
                        index: start,
                    });
                }
                let out = s[start as usize..start as usize + len as usize].to_vec();
                push!(Value::Str(Rc::new(out)));
            }
            Inst::StrPackInt(width) => {
                let v = pop!().as_int() as u64;
                let bytes = v.to_be_bytes();
                let out = bytes[8 - *width as usize..].to_vec();
                push!(Value::Str(Rc::new(out)));
            }
            Inst::StrUnpackInt(width) => {
                let off = pop!().as_int();
                let s = pop!();
                let s = s.as_str();
                let w = *width as usize;
                if off < 0 || (off as usize).saturating_add(w) > s.len() {
                    return Err(VmError::StrBounds {
                        len: s.len(),
                        index: off,
                    });
                }
                let mut bytes = [0u8; 8];
                bytes[8 - w..].copy_from_slice(&s[off as usize..off as usize + w]);
                push!(Value::Int(u64::from_be_bytes(bytes) as i64));
            }
            Inst::StrFromInt => {
                let v = pop!().as_int();
                push!(Value::str(v.to_string().into_bytes()));
            }
            Inst::TableNew => push!(Value::new_table()),
            Inst::TableAdd => {
                let v = pop!();
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tableadd")
                };
                let key = k.to_key().expect("verifier invariant broken: key");
                t.borrow_mut().insert(key, v);
            }
            Inst::TableGet => {
                let default = pop!();
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tableget")
                };
                let key = k.to_key().expect("verifier invariant broken: key");
                let v = t.borrow().get(&key).cloned().unwrap_or(default);
                push!(v);
            }
            Inst::TableMem => {
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tablemem")
                };
                let key: Key = k.to_key().expect("verifier invariant broken: key");
                push!(Value::Bool(t.borrow().contains_key(&key)));
            }
            Inst::TableRemove => {
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tableremove")
                };
                let key = k.to_key().expect("verifier invariant broken: key");
                t.borrow_mut().remove(&key);
            }
            Inst::TableLen => {
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tablelen")
                };
                let len = t.borrow().len() as i64;
                push!(Value::Int(len));
            }
            Inst::Nop => {}
            // ------------------------------------------ superinstructions
            Inst::LocalGet2(a, b) => {
                let va = local!(*a).clone();
                let vb = local!(*b).clone();
                push!(va);
                push!(vb);
            }
            Inst::LocalGet2Add(a, b) => {
                let va = local!(*a).as_int();
                let vb = local!(*b).as_int();
                push!(Value::Int(va.wrapping_add(vb)));
            }
            Inst::LocalConstAdd(a, k) => {
                let va = local!(*a).as_int();
                push!(Value::Int(va.wrapping_add(*k)));
            }
            Inst::CmpBr {
                cmp,
                negate,
                target,
            } => {
                let b = pop!();
                let a = pop!();
                let taken = match cmp {
                    Cmp::Eq => a.hash_eq(&b).expect("verifier invariant broken: eq"),
                    Cmp::Ne => !a.hash_eq(&b).expect("verifier invariant broken: ne"),
                    Cmp::Lt => a.as_int() < b.as_int(),
                    Cmp::Le => a.as_int() <= b.as_int(),
                    Cmp::Gt => a.as_int() > b.as_int(),
                    Cmp::Ge => a.as_int() >= b.as_int(),
                } != *negate;
                if taken {
                    pc = *target as usize;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ModuleBuilder;
    use crate::bytecode::Op;
    use crate::env::Env;
    use crate::linker::Namespace;
    use crate::types::Ty;

    struct NoHost;
    impl crate::env::HostDispatch for NoHost {
        fn call(&mut self, m: &str, i: &str, _args: Vec<Value>) -> Result<Value, VmError> {
            Err(VmError::HostUnavailable(format!("{m}.{i}")))
        }
    }

    /// `quad(x) = double(double(x))`, `double(x) = x + x`: two profiled
    /// functions with a caller/callee relationship.
    fn quad_ns() -> (Namespace, InstanceId, u32, u32) {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.func("double", vec![Ty::Int], Ty::Int);
        f.op(Op::LocalGet(0))
            .op(Op::LocalGet(0))
            .op(Op::Add)
            .op(Op::Return);
        let double = mb.finish(f);
        let mut f = mb.func("quad", vec![Ty::Int], Ty::Int);
        f.op(Op::LocalGet(0))
            .op(Op::Call(double))
            .op(Op::Call(double))
            .op(Op::Return);
        let quad = mb.finish(f);
        let mut ns = Namespace::new(Env::new());
        let inst = ns.load_module(mb.build()).expect("module verifies");
        (ns, inst, double, quad)
    }

    #[test]
    fn hot_profile_counts_calls_and_inclusive_fuel() {
        let (ns, inst, double, quad) = quad_ns();
        let target = FuncVal::Vm {
            instance: inst,
            func: quad,
        };
        let cfg = ExecConfig::default();

        // Reference run without profiling.
        let mut plain = VmScratch::new();
        let (v0, stats0) = call_scratch(
            &ns,
            &mut NoHost,
            target,
            vec![Value::Int(5)],
            &cfg,
            &mut plain,
        )
        .expect("runs");
        assert_eq!(v0.as_int(), 20);
        assert!(plain.profile().is_none(), "profiling is off by default");

        // Profiled run: identical result and stats, counters filled in.
        let mut scratch = VmScratch::new();
        scratch.enable_profile();
        for _ in 0..3 {
            let (v, stats) = call_scratch(
                &ns,
                &mut NoHost,
                target,
                vec![Value::Int(5)],
                &cfg,
                &mut scratch,
            )
            .expect("runs");
            assert_eq!(v.as_int(), v0.as_int());
            assert_eq!(stats, stats0, "profiling must not change ExecStats");
        }
        let profile = scratch.profile().expect("enabled");
        let lines: Vec<_> = profile.iter().collect();
        // `double`: 4 source ops per entry, entered twice per quad call.
        // `quad`: 4 own ops + 8 inclusive callee ops.
        assert_eq!(
            lines,
            vec![
                (inst, double, FuncHotCounters { calls: 6, fuel: 24 }),
                (inst, quad, FuncHotCounters { calls: 3, fuel: 36 }),
            ]
        );
    }
}
