//! The bytecode interpreter.
//!
//! Runs only *verified* code: the linker refuses to instantiate a module
//! the verifier rejected, so the interpreter performs no per-instruction
//! type checks (a payload-extraction mismatch is an internal panic, not a
//! recoverable state — exactly the trust a Caml runtime places in its
//! compiler). What it does enforce dynamically is the short list the paper
//! also enforced dynamically, plus containment:
//!
//! * string bounds (Caml checked array bounds at run time),
//! * division by zero,
//! * a **fuel meter** and a call-depth limit — our analogue of the active
//!   bridge protecting itself "from some algorithmic failures in
//!   loadable modules": a switchlet that loops forever is cut off, the
//!   error is reported, and the node keeps running.

use std::rc::Rc;

use crate::bytecode::Op;
use crate::env::HostDispatch;
use crate::linker::{Namespace, ResolvedImport};
use crate::value::{FuncVal, InstanceId, Key, Value};

/// Runtime failures. None of these can corrupt the host; they abort the
/// switchlet invocation and surface to the embedder.
#[derive(Clone, Debug, PartialEq)]
pub enum VmError {
    /// The fuel budget ran out (non-termination containment).
    FuelExhausted,
    /// Call nesting exceeded the configured limit.
    CallDepthExceeded,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// A string access was out of bounds.
    StrBounds {
        /// String length.
        len: usize,
        /// Offending index/offset.
        index: i64,
    },
    /// A host function reported an error.
    Host(String),
    /// A host call was made but no implementation is available.
    HostUnavailable(String),
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::FuelExhausted => write!(f, "fuel exhausted"),
            VmError::CallDepthExceeded => write!(f, "call depth exceeded"),
            VmError::DivideByZero => write!(f, "division by zero"),
            VmError::StrBounds { len, index } => {
                write!(f, "string index {index} out of bounds (len {len})")
            }
            VmError::Host(msg) => write!(f, "host error: {msg}"),
            VmError::HostUnavailable(name) => write!(f, "host function {name} unavailable"),
        }
    }
}

impl std::error::Error for VmError {}

/// Execution limits.
#[derive(Copy, Clone, Debug)]
pub struct ExecConfig {
    /// Maximum instructions per invocation.
    pub fuel: u64,
    /// Maximum call nesting.
    pub max_depth: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            fuel: 1_000_000,
            max_depth: 128,
        }
    }
}

/// What an invocation cost — fed to the simulator's time model (the
/// analogue of the paper's per-frame Caml cost instrumentation).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Host calls made.
    pub host_calls: u64,
}

/// Call a function value with `args`.
///
/// `ns` provides the loaded instances; `host` the host implementations.
/// The arguments must match the function's type — guaranteed when the call
/// originates from verified code; embedder-originated calls (switchlet
/// entry points) are checked in debug builds.
pub fn call(
    ns: &Namespace,
    host: &mut dyn HostDispatch,
    target: FuncVal,
    args: Vec<Value>,
    cfg: &ExecConfig,
) -> Result<(Value, ExecStats), VmError> {
    let mut stats = ExecStats::default();
    let mut fuel = cfg.fuel;
    let value = dispatch(ns, host, target, args, cfg, &mut fuel, 0, &mut stats)?;
    Ok((value, stats))
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    ns: &Namespace,
    host: &mut dyn HostDispatch,
    target: FuncVal,
    args: Vec<Value>,
    cfg: &ExecConfig,
    fuel: &mut u64,
    depth: usize,
    stats: &mut ExecStats,
) -> Result<Value, VmError> {
    match target {
        FuncVal::Host { module, item } => {
            stats.host_calls += 1;
            let (m, i, _ty) = ns.env().slot_names(crate::env::HostSlot { module, item });
            let (m, i) = (m.to_owned(), i.to_owned());
            host.call(&m, &i, args)
        }
        FuncVal::Vm { instance, func } => {
            exec(ns, host, instance, func, args, cfg, fuel, depth, stats)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec(
    ns: &Namespace,
    host: &mut dyn HostDispatch,
    instance: InstanceId,
    func_idx: u32,
    args: Vec<Value>,
    cfg: &ExecConfig,
    fuel: &mut u64,
    depth: usize,
    stats: &mut ExecStats,
) -> Result<Value, VmError> {
    if depth >= cfg.max_depth {
        return Err(VmError::CallDepthExceeded);
    }
    let inst = ns.instance(instance);
    let module = &inst.module;
    let func = &module.functions[func_idx as usize];
    debug_assert_eq!(args.len(), func.params.len(), "arity mismatch at entry");
    debug_assert!(
        args.iter().zip(&func.params).all(|(v, t)| v.matches(t)),
        "argument type mismatch at entry of {}",
        func.name
    );

    // Locals: parameters then placeholder slots (verified code never reads
    // a local before writing it, so Unit placeholders are unobservable).
    let mut locals = args;
    locals.resize(func.num_slots(), Value::Unit);
    let mut stack: Vec<Value> = Vec::with_capacity(8);
    let mut pc: usize = 0;

    macro_rules! pop {
        () => {
            stack
                .pop()
                .expect("verifier invariant broken: stack underflow")
        };
    }

    loop {
        if *fuel == 0 {
            return Err(VmError::FuelExhausted);
        }
        *fuel -= 1;
        stats.instructions += 1;

        let op = &func.code[pc];
        pc += 1;
        match op {
            Op::ConstUnit => stack.push(Value::Unit),
            Op::ConstBool(b) => stack.push(Value::Bool(*b)),
            Op::ConstInt(i) => stack.push(Value::Int(*i)),
            Op::ConstStr(n) => {
                // Interned at link time: pushing a pool constant is an
                // `Rc` clone (pointer bump), never a byte copy.
                stack.push(Value::Str(inst.str_consts[*n as usize].clone()))
            }
            Op::LocalGet(n) => stack.push(locals[*n as usize].clone()),
            Op::LocalSet(n) => locals[*n as usize] = pop!(),
            Op::Pop => {
                let _ = pop!();
            }
            Op::Dup => {
                let top = stack.last().expect("verifier invariant broken").clone();
                stack.push(top);
            }
            Op::Add => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Int(a.wrapping_add(b)));
            }
            Op::Sub => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Int(a.wrapping_sub(b)));
            }
            Op::Mul => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Int(a.wrapping_mul(b)));
            }
            Op::Div => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                if b == 0 {
                    return Err(VmError::DivideByZero);
                }
                stack.push(Value::Int(a.wrapping_div(b)));
            }
            Op::Mod => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                if b == 0 {
                    return Err(VmError::DivideByZero);
                }
                stack.push(Value::Int(a.wrapping_rem(b)));
            }
            Op::Neg => {
                let a = pop!().as_int();
                stack.push(Value::Int(a.wrapping_neg()));
            }
            Op::Eq => {
                let b = pop!();
                let a = pop!();
                stack.push(Value::Bool(
                    a.hash_eq(&b).expect("verifier invariant broken: eq"),
                ));
            }
            Op::Ne => {
                let b = pop!();
                let a = pop!();
                stack.push(Value::Bool(
                    !a.hash_eq(&b).expect("verifier invariant broken: ne"),
                ));
            }
            Op::Lt => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Bool(a < b));
            }
            Op::Le => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Bool(a <= b));
            }
            Op::Gt => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Bool(a > b));
            }
            Op::Ge => {
                let b = pop!().as_int();
                let a = pop!().as_int();
                stack.push(Value::Bool(a >= b));
            }
            Op::And => {
                let b = pop!().as_bool();
                let a = pop!().as_bool();
                stack.push(Value::Bool(a && b));
            }
            Op::Or => {
                let b = pop!().as_bool();
                let a = pop!().as_bool();
                stack.push(Value::Bool(a || b));
            }
            Op::Not => {
                let a = pop!().as_bool();
                stack.push(Value::Bool(!a));
            }
            Op::Jump(t) => pc = *t as usize,
            Op::BrIf(t) => {
                if pop!().as_bool() {
                    pc = *t as usize;
                }
            }
            Op::BrIfNot(t) => {
                if !pop!().as_bool() {
                    pc = *t as usize;
                }
            }
            Op::Return => {
                let result = pop!();
                debug_assert!(stack.is_empty(), "verifier invariant broken: dirty return");
                return Ok(result);
            }
            Op::Call(n) => {
                let callee = &module.functions[*n as usize];
                let argc = callee.params.len();
                let call_args = stack.split_off(stack.len() - argc);
                let result = exec(
                    ns,
                    host,
                    instance,
                    *n,
                    call_args,
                    cfg,
                    fuel,
                    depth + 1,
                    stats,
                )?;
                stack.push(result);
            }
            Op::CallImport(n) => {
                let resolved = inst.resolved[*n as usize];
                let target = match resolved {
                    ResolvedImport::Host(slot) => FuncVal::Host {
                        module: slot.module,
                        item: slot.item,
                    },
                    ResolvedImport::Vm { instance, func } => FuncVal::Vm { instance, func },
                };
                let argc = match target {
                    FuncVal::Host { .. } => {
                        let crate::types::Ty::Func(ft) = &module.imports[*n as usize].ty else {
                            unreachable!("linker guarantees function imports")
                        };
                        ft.params.len()
                    }
                    FuncVal::Vm {
                        instance: i,
                        func: f,
                    } => ns.instance(i).module.functions[f as usize].params.len(),
                };
                let call_args = stack.split_off(stack.len() - argc);
                let result = dispatch(ns, host, target, call_args, cfg, fuel, depth + 1, stats)?;
                stack.push(result);
            }
            Op::ImportGet(n) => {
                let resolved = inst.resolved[*n as usize];
                let fv = match resolved {
                    ResolvedImport::Host(slot) => FuncVal::Host {
                        module: slot.module,
                        item: slot.item,
                    },
                    ResolvedImport::Vm { instance, func } => FuncVal::Vm { instance, func },
                };
                stack.push(Value::Func(fv));
            }
            Op::CallRef(arity) => {
                let argc = *arity as usize;
                let call_args = stack.split_off(stack.len() - argc);
                let Value::Func(fv) = pop!() else {
                    panic!("verifier invariant broken: callref on non-function")
                };
                let result = dispatch(ns, host, fv, call_args, cfg, fuel, depth + 1, stats)?;
                stack.push(result);
            }
            Op::FuncConst(n) => stack.push(Value::Func(FuncVal::Vm { instance, func: *n })),
            Op::TupleMake(n) => {
                let items = stack.split_off(stack.len() - *n as usize);
                stack.push(Value::Tuple(Rc::new(items)));
            }
            Op::TupleGet(i) => {
                let Value::Tuple(items) = pop!() else {
                    panic!("verifier invariant broken: tupleget")
                };
                stack.push(items[*i as usize].clone());
            }
            Op::StrLen => {
                let s = pop!();
                stack.push(Value::Int(s.as_str().len() as i64));
            }
            Op::StrConcat => {
                let b = pop!();
                let a = pop!();
                let mut out = a.as_str().as_ref().clone();
                out.extend_from_slice(b.as_str());
                stack.push(Value::Str(Rc::new(out)));
            }
            Op::StrByte => {
                let i = pop!().as_int();
                let s = pop!();
                let s = s.as_str();
                if i < 0 || i as usize >= s.len() {
                    return Err(VmError::StrBounds {
                        len: s.len(),
                        index: i,
                    });
                }
                stack.push(Value::Int(s[i as usize] as i64));
            }
            Op::StrSlice => {
                let len = pop!().as_int();
                let start = pop!().as_int();
                let s = pop!();
                let s = s.as_str();
                if start < 0 || len < 0 || (start as usize).saturating_add(len as usize) > s.len() {
                    return Err(VmError::StrBounds {
                        len: s.len(),
                        index: start,
                    });
                }
                let out = s[start as usize..start as usize + len as usize].to_vec();
                stack.push(Value::Str(Rc::new(out)));
            }
            Op::StrPackInt(width) => {
                let v = pop!().as_int() as u64;
                let bytes = v.to_be_bytes();
                let out = bytes[8 - *width as usize..].to_vec();
                stack.push(Value::Str(Rc::new(out)));
            }
            Op::StrUnpackInt(width) => {
                let off = pop!().as_int();
                let s = pop!();
                let s = s.as_str();
                let w = *width as usize;
                if off < 0 || (off as usize).saturating_add(w) > s.len() {
                    return Err(VmError::StrBounds {
                        len: s.len(),
                        index: off,
                    });
                }
                let mut bytes = [0u8; 8];
                bytes[8 - w..].copy_from_slice(&s[off as usize..off as usize + w]);
                stack.push(Value::Int(u64::from_be_bytes(bytes) as i64));
            }
            Op::StrFromInt => {
                let v = pop!().as_int();
                stack.push(Value::str(v.to_string().into_bytes()));
            }
            Op::TableNew(_) => stack.push(Value::new_table()),
            Op::TableAdd => {
                let v = pop!();
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tableadd")
                };
                let key = k.to_key().expect("verifier invariant broken: key");
                t.borrow_mut().insert(key, v);
            }
            Op::TableGet => {
                let default = pop!();
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tableget")
                };
                let key = k.to_key().expect("verifier invariant broken: key");
                let v = t.borrow().get(&key).cloned().unwrap_or(default);
                stack.push(v);
            }
            Op::TableMem => {
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tablemem")
                };
                let key: Key = k.to_key().expect("verifier invariant broken: key");
                stack.push(Value::Bool(t.borrow().contains_key(&key)));
            }
            Op::TableRemove => {
                let k = pop!();
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tableremove")
                };
                let key = k.to_key().expect("verifier invariant broken: key");
                t.borrow_mut().remove(&key);
            }
            Op::TableLen => {
                let Value::Table(t) = pop!() else {
                    panic!("verifier invariant broken: tablelen")
                };
                let len = t.borrow().len() as i64;
                stack.push(Value::Int(len));
            }
            Op::Nop => {}
        }
    }
}
