//! The switchlet instruction set.
//!
//! A small stack machine. Design rules, mirroring the paper's security
//! argument (Section 5.1.1):
//!
//! * **No casts.** There is no instruction that reinterprets a value at
//!   another type.
//! * **No address-of.** Values are reachable only by name (locals, imports,
//!   exports) or through legal references (tuples, tables) — "the lack of a
//!   cast operator or an address operator ... makes it impossible to refer
//!   to any object without either its name or a string of legal pointer
//!   references from a known object".
//! * **Functions are immutable.** `FuncConst` produces references; nothing
//!   can modify a function body.
//! * Dynamic checks are limited to the ones Caml also made at run time:
//!   string bounds, division by zero, fuel (our analogue of the bridge
//!   protecting itself from runaway switchlets).

use crate::types::Ty;

/// One instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Push `()`.
    ConstUnit,
    /// Push a boolean.
    ConstBool(bool),
    /// Push an integer.
    ConstInt(i64),
    /// Push string-pool entry `n`.
    ConstStr(u32),

    /// Push local `n` (parameters are locals `0..nparams`).
    LocalGet(u16),
    /// Pop into local `n`.
    LocalSet(u16),

    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,

    /// Integer add: `[int int] -> [int]` (wrapping, like Caml's boxed-free
    /// native ints).
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide; traps on zero divisor.
    Div,
    /// Integer remainder; traps on zero divisor.
    Mod,
    /// Integer negate: `[int] -> [int]`.
    Neg,

    /// Structural equality on a hashable type: `[t t] -> [bool]`.
    Eq,
    /// Structural inequality on a hashable type.
    Ne,
    /// Integer less-than: `[int int] -> [bool]`.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,

    /// Boolean and: `[bool bool] -> [bool]`.
    And,
    /// Boolean or.
    Or,
    /// Boolean not: `[bool] -> [bool]`.
    Not,

    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop a bool; jump if true.
    BrIf(u32),
    /// Pop a bool; jump if false.
    BrIfNot(u32),
    /// Return the top of stack (stack must be exactly `[result]`).
    Return,

    /// Call local function `n`: pops its arguments (last argument on top),
    /// pushes its result.
    Call(u32),
    /// Call import `n` (resolved at link time to a host function or an
    /// earlier module's export).
    CallImport(u32),
    /// Push the value of import `n` (for function imports this pushes a
    /// function reference; it is how a switchlet passes a host capability
    /// onward, e.g. handing `func.register` a callback).
    ImportGet(u32),
    /// Call a first-class function: stack is `[func, arg1..argN]` with the
    /// function *below* its arguments. The operand is the arity (checked
    /// against the function type at verification).
    CallRef(u8),
    /// Push a reference to local function `n`.
    FuncConst(u32),

    /// Pop `n` values, push a tuple: `[v1..vn] -> [(v1..vn)]`.
    TupleMake(u8),
    /// Project component `i` of a tuple: `[(..)] -> [ti]`.
    TupleGet(u8),

    /// String length: `[str] -> [int]`.
    StrLen,
    /// Concatenate: `[str str] -> [str]`.
    StrConcat,
    /// Byte at index: `[str int] -> [int]`; traps out of bounds.
    StrByte,
    /// Substring `[str start len] -> [str]`; traps out of bounds.
    StrSlice,
    /// Big-endian pack of the low `width` bytes of an int:
    /// `[int] -> [str]`. Width is 1, 2, 4, 6 or 8.
    StrPackInt(u8),
    /// Big-endian unpack of `width` bytes at an offset:
    /// `[str int] -> [int]`; traps out of bounds. Width is 1, 2, 4, 6 or 8.
    StrUnpackInt(u8),
    /// Decimal rendering: `[int] -> [str]`.
    StrFromInt,

    /// Push a fresh empty table of type-pool entry `n` (which must be a
    /// `Table` type).
    TableNew(u32),
    /// Insert/replace: `[table k v] -> []`.
    TableAdd,
    /// Lookup with default: `[table k default] -> [v]`.
    TableGet,
    /// Membership: `[table k] -> [bool]`.
    TableMem,
    /// Remove: `[table k] -> []`.
    TableRemove,
    /// Entry count: `[table] -> [int]`.
    TableLen,

    /// No operation.
    Nop,
}

/// Valid widths for `StrPackInt`/`StrUnpackInt` (1 byte, 16-bit fields,
/// 32-bit fields, MAC addresses, 64-bit fields).
pub const INT_WIDTHS: [u8; 5] = [1, 2, 4, 6, 8];

/// A function body.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Debug name (not part of the interface).
    pub name: String,
    /// Parameter types; parameters occupy locals `0..params.len()`.
    pub params: Vec<Ty>,
    /// Additional local slots, typed.
    pub locals: Vec<Ty>,
    /// Result type.
    pub result: Ty,
    /// The code. Execution begins at index 0; every path must end in
    /// `Return`.
    pub code: Vec<Op>,
}

impl Function {
    /// Total local slots (params + locals).
    pub fn num_slots(&self) -> usize {
        self.params.len() + self.locals.len()
    }

    /// The type of local slot `i`.
    pub fn slot_ty(&self, i: usize) -> Option<&Ty> {
        if i < self.params.len() {
            self.params.get(i)
        } else {
            self.locals.get(i - self.params.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_typing() {
        let f = Function {
            name: "f".into(),
            params: vec![Ty::Int, Ty::Str],
            locals: vec![Ty::Bool],
            result: Ty::Unit,
            code: vec![Op::ConstUnit, Op::Return],
        };
        assert_eq!(f.num_slots(), 3);
        assert_eq!(f.slot_ty(0), Some(&Ty::Int));
        assert_eq!(f.slot_ty(1), Some(&Ty::Str));
        assert_eq!(f.slot_ty(2), Some(&Ty::Bool));
        assert_eq!(f.slot_ty(3), None);
    }
}
