//! # switchlet — the loadable-module substrate of Active Bridging
//!
//! The paper programs its bridge in Caml and extends it at run time with
//! *switchlets*: byte-code modules that are statically type-checked, carry
//! MD5 interface digests, link into a restricted ("thinned") name space,
//! and register themselves by evaluating top-level forms. Rust cannot
//! safely load native code (no stable ABI), so this crate rebuilds that
//! substrate from scratch:
//!
//! * [`types`] — a small monomorphic type language (including abstract
//!   `Named` types for capabilities like `iport`/`oport`);
//! * [`bytecode`] — a stack-machine instruction set with **no casts and no
//!   address-of**, the two absences the paper's security argument rests on;
//! * [`verify`] — a JVM-style static verifier: stack typing, control-flow
//!   join agreement, definite assignment, call-site type checks. "Static
//!   checking and prevention over dynamic checks";
//! * [`digest`] — MD5 (RFC 1321), used exactly as Caml used it: interface
//!   fingerprints embedded in the byte codes;
//! * [`module`] — the wire format switchlets travel in (over TFTP, in the
//!   bridge's case);
//! * [`mod env`](crate::env) — host modules with *thinned* signatures: an item absent from
//!   the signature is unnameable, hence unreachable;
//! * [`linker`] — the `Dynlink` equivalent: a name space, available units,
//!   digest/type-checked loading, init ("registration") evaluation, and
//!   translation of verified code into the pre-decoded execution form
//!   (branch offsets remapped, call targets and host slots resolved, hot
//!   pairs fused — see DESIGN.md);
//! * [`vm`] — the direct-dispatch interpreter over the decoded form,
//!   fuel-metered so the node survives non-terminating switchlets (the
//!   paper's "algorithmic failures"), with a reusable [`vm::VmScratch`]
//!   arena so steady-state invocations allocate nothing;
//! * [`asm`] — a builder API standing in for the Caml compiler front end.
//!
//! ```
//! use switchlet::asm::ModuleBuilder;
//! use switchlet::bytecode::Op;
//! use switchlet::env::{Env, NoHost};
//! use switchlet::linker::Namespace;
//! use switchlet::types::Ty;
//! use switchlet::value::Value;
//! use switchlet::vm::{call, ExecConfig};
//!
//! // Author a switchlet ...
//! let mut mb = ModuleBuilder::new("inc");
//! let mut f = mb.func("inc", vec![Ty::Int], Ty::Int);
//! f.op(Op::LocalGet(0));
//! f.op(Op::ConstInt(1));
//! f.op(Op::Add);
//! f.op(Op::Return);
//! let idx = mb.finish(f);
//! mb.export("inc", idx);
//!
//! // ... ship it as bytes, then load and call it.
//! let image = mb.build().encode();
//! let mut ns = Namespace::new(Env::new());
//! ns.load(&image).unwrap();
//! let (fv, _) = ns.lookup_export("inc", "inc").unwrap();
//! let (v, _) = call(&ns, &mut NoHost, fv, vec![Value::Int(41)], &ExecConfig::default()).unwrap();
//! assert_eq!(v.as_int(), 42);
//! ```

pub mod asm;
pub mod bytecode;
mod decode;
pub mod digest;
pub mod env;
pub mod envelope;
pub mod linker;
pub mod module;
#[cfg(test)]
mod refinterp;
pub mod sig;
pub mod types;
pub mod value;
pub mod verify;
pub mod vm;

#[cfg(test)]
mod equiv_tests;

pub use asm::ModuleBuilder;
pub use bytecode::{Function, Op};
pub use digest::{md5, Digest, Md5};
pub use env::{Env, HostDispatch, HostModuleSig, HostSlot, NoHost};
pub use envelope::{is_enveloped, seal, unseal, EnvelopeError};
pub use linker::{Instance, LoadError, Namespace, ResolvedImport};
pub use module::{DecodeError, Export, Module};
pub use sig::{ExportSig, ImportSig};
pub use types::{FuncTy, Ty};
pub use value::{FuncVal, InstanceId, Key, Value};
pub use verify::{verify_module, VerifyError};
pub use vm::{
    call, call_scratch, ExecConfig, ExecStats, FuncHotCounters, HotProfile, VmError, VmScratch,
};
