//! The static bytecode verifier.
//!
//! "Our approach to safety and security favors static checking and
//! prevention over dynamic checks when possible." This module is that
//! approach for our VM: before a module is linked, every function is
//! type-checked by abstract interpretation of the operand stack (the same
//! scheme the JVM verifier uses). A snapshot of the stack typing is
//! recorded for every instruction; control-flow joins must agree exactly.
//! Verified code can never:
//!
//! * apply an operator to the wrong type (no casts exist to launder one),
//! * underflow or observe another frame's stack,
//! * read or write an out-of-range local,
//! * call a function (local, imported, or first-class) with the wrong
//!   arity or argument types,
//! * fall off the end of a function or leave garbage behind a `Return`.
//!
//! What remains dynamic — string bounds, division by zero, fuel — is the
//! same set Caml left dynamic (array bounds checks, exceptions), plus the
//! fuel meter that lets the bridge survive a non-terminating switchlet.

use std::collections::HashMap;

use crate::bytecode::{Function, Op, INT_WIDTHS};
use crate::module::Module;
use crate::sig::ImportSig;
use crate::types::{FuncTy, Ty};

/// A verification failure, with enough context to debug an assembler.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError {
    /// Function in which the error occurred (name, or `<module>` for
    /// module-level checks).
    pub func: String,
    /// Instruction index, when applicable.
    pub pc: Option<usize>,
    /// What went wrong.
    pub reason: String,
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "verify {}@{}: {}", self.func, pc, self.reason),
            None => write!(f, "verify {}: {}", self.func, self.reason),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole module against the import types it declares.
///
/// The caller (the linker) has already confirmed that every declared
/// import exists in the environment with exactly the declared type; the
/// verifier only needs the declared types.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    // Module-level checks.
    if let Some(init) = module.init {
        let f = &module.functions[init as usize];
        if !f.params.is_empty() || f.result != Ty::Unit {
            return Err(VerifyError {
                func: f.name.clone(),
                pc: None,
                reason: "init function must have type [] -> unit".into(),
            });
        }
    }
    let mut export_names = std::collections::HashSet::new();
    for exp in &module.exports {
        if !export_names.insert(exp.name.as_str()) {
            return Err(VerifyError {
                func: "<module>".into(),
                pc: None,
                reason: format!("duplicate export `{}`", exp.name),
            });
        }
    }
    for f in &module.functions {
        verify_function(module, f)?;
    }
    Ok(())
}

/// Abstract machine state at one program point: the operand stack typing
/// plus which locals are definitely initialized (parameters always are;
/// other locals must be written before read — there is no "default value"
/// a switchlet could observe).
#[derive(Clone, PartialEq, Debug)]
struct Snap {
    stack: Vec<Ty>,
    inited: Vec<bool>,
}

struct Checker<'m> {
    module: &'m Module,
    func: &'m Function,
    /// Expected abstract state at each instruction (populated lazily).
    snapshots: HashMap<usize, Snap>,
}

impl<'m> Checker<'m> {
    fn err(&self, pc: usize, reason: impl Into<String>) -> VerifyError {
        VerifyError {
            func: self.func.name.clone(),
            pc: Some(pc),
            reason: reason.into(),
        }
    }

    fn import_ty(&self, pc: usize, idx: u32) -> Result<&'m ImportSig, VerifyError> {
        self.module
            .imports
            .get(idx as usize)
            .ok_or_else(|| self.err(pc, format!("import index {idx} out of range")))
    }

    fn func_ty(&self, pc: usize, idx: u32) -> Result<FuncTy, VerifyError> {
        let f = self
            .module
            .functions
            .get(idx as usize)
            .ok_or_else(|| self.err(pc, format!("function index {idx} out of range")))?;
        Ok(FuncTy::new(f.params.clone(), f.result.clone()))
    }

    fn record_target(&mut self, pc: usize, target: u32, snap: &Snap) -> Result<(), VerifyError> {
        let target = target as usize;
        if target >= self.func.code.len() {
            return Err(self.err(pc, format!("jump target {target} out of range")));
        }
        match self.snapshots.get(&target) {
            Some(expected) if expected != snap => Err(self.err(
                pc,
                format!(
                    "stack mismatch at join point {target}: {:?} vs {:?}",
                    expected, snap
                ),
            )),
            Some(_) => Ok(()),
            None => {
                self.snapshots.insert(target, snap.clone());
                Ok(())
            }
        }
    }
}

fn pop(stack: &mut Vec<Ty>, pc: usize, c: &Checker<'_>) -> Result<Ty, VerifyError> {
    stack
        .pop()
        .ok_or_else(|| c.err(pc, "operand stack underflow"))
}

fn pop_expect(
    stack: &mut Vec<Ty>,
    want: &Ty,
    pc: usize,
    c: &Checker<'_>,
) -> Result<(), VerifyError> {
    let got = pop(stack, pc, c)?;
    if &got != want {
        return Err(c.err(pc, format!("expected {want}, found {got}")));
    }
    Ok(())
}

/// Verify one function.
pub fn verify_function(module: &Module, func: &Function) -> Result<(), VerifyError> {
    let mut c = Checker {
        module,
        func,
        snapshots: HashMap::new(),
    };
    if func.params.len() > u8::MAX as usize {
        return Err(c.err(0, "too many parameters"));
    }
    if func.code.is_empty() {
        return Err(VerifyError {
            func: func.name.clone(),
            pc: None,
            reason: "empty function body".into(),
        });
    }

    // `current` is the abstract state flowing into the next instruction;
    // None means the previous instruction never falls through.
    let entry = Snap {
        stack: Vec::new(),
        inited: (0..func.num_slots())
            .map(|i| i < func.params.len())
            .collect(),
    };
    let mut current: Option<Snap> = Some(entry);

    for (pc, op) in func.code.iter().enumerate() {
        // Merge with any recorded snapshot for this pc.
        let snap = match (current.take(), c.snapshots.get(&pc)) {
            (Some(flow), Some(snap)) => {
                if &flow != snap {
                    return Err(c.err(
                        pc,
                        format!("stack mismatch at join point: {:?} vs {:?}", snap, flow),
                    ));
                }
                flow
            }
            (Some(flow), None) => {
                c.snapshots.insert(pc, flow.clone());
                flow
            }
            (None, Some(snap)) => snap.clone(),
            (None, None) => {
                return Err(c.err(pc, "unreachable code"));
            }
        };
        let Snap {
            mut stack,
            mut inited,
        } = snap;

        let mut falls_through = true;
        match op {
            Op::ConstUnit => stack.push(Ty::Unit),
            Op::ConstBool(_) => stack.push(Ty::Bool),
            Op::ConstInt(_) => stack.push(Ty::Int),
            Op::ConstStr(n) => {
                if *n as usize >= module.str_pool.len() {
                    return Err(c.err(pc, format!("string pool index {n} out of range")));
                }
                stack.push(Ty::Str);
            }
            Op::LocalGet(n) => {
                let ty = func
                    .slot_ty(*n as usize)
                    .ok_or_else(|| c.err(pc, format!("local {n} out of range")))?;
                if !inited[*n as usize] {
                    return Err(c.err(pc, format!("local {n} read before initialization")));
                }
                stack.push(ty.clone());
            }
            Op::LocalSet(n) => {
                let ty = func
                    .slot_ty(*n as usize)
                    .ok_or_else(|| c.err(pc, format!("local {n} out of range")))?
                    .clone();
                pop_expect(&mut stack, &ty, pc, &c)?;
                inited[*n as usize] = true;
            }
            Op::Pop => {
                pop(&mut stack, pc, &c)?;
            }
            Op::Dup => {
                let top = stack
                    .last()
                    .cloned()
                    .ok_or_else(|| c.err(pc, "operand stack underflow"))?;
                stack.push(top);
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                stack.push(Ty::Int);
            }
            Op::Neg => {
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                stack.push(Ty::Int);
            }
            Op::Eq | Op::Ne => {
                let b = pop(&mut stack, pc, &c)?;
                let a = pop(&mut stack, pc, &c)?;
                if a != b {
                    return Err(c.err(pc, format!("eq on differing types {a} and {b}")));
                }
                if !a.hashable() {
                    return Err(c.err(pc, format!("eq on non-comparable type {a}")));
                }
                stack.push(Ty::Bool);
            }
            Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                stack.push(Ty::Bool);
            }
            Op::And | Op::Or => {
                pop_expect(&mut stack, &Ty::Bool, pc, &c)?;
                pop_expect(&mut stack, &Ty::Bool, pc, &c)?;
                stack.push(Ty::Bool);
            }
            Op::Not => {
                pop_expect(&mut stack, &Ty::Bool, pc, &c)?;
                stack.push(Ty::Bool);
            }
            Op::Jump(t) => {
                let snap = Snap {
                    stack: stack.clone(),
                    inited: inited.clone(),
                };
                c.record_target(pc, *t, &snap)?;
                falls_through = false;
            }
            Op::BrIf(t) | Op::BrIfNot(t) => {
                pop_expect(&mut stack, &Ty::Bool, pc, &c)?;
                let snap = Snap {
                    stack: stack.clone(),
                    inited: inited.clone(),
                };
                c.record_target(pc, *t, &snap)?;
            }
            Op::Return => {
                pop_expect(&mut stack, &func.result, pc, &c)?;
                if !stack.is_empty() {
                    return Err(c.err(
                        pc,
                        format!("return with {} extra values on the stack", stack.len()),
                    ));
                }
                falls_through = false;
            }
            Op::Call(n) => {
                let ft = c.func_ty(pc, *n)?;
                for p in ft.params.iter().rev() {
                    pop_expect(&mut stack, p, pc, &c)?;
                }
                stack.push((*ft.result).clone());
            }
            Op::CallImport(n) => {
                let imp = c.import_ty(pc, *n)?;
                let Ty::Func(ft) = &imp.ty else {
                    return Err(c.err(
                        pc,
                        format!("import {}.{} is not a function", imp.module, imp.item),
                    ));
                };
                let ft = ft.clone();
                for p in ft.params.iter().rev() {
                    pop_expect(&mut stack, p, pc, &c)?;
                }
                stack.push((*ft.result).clone());
            }
            Op::ImportGet(n) => {
                let imp = c.import_ty(pc, *n)?;
                stack.push(imp.ty.clone());
            }
            Op::CallRef(arity) => {
                // Stack: [func, arg1..argN]; pop args, then the function.
                let mut args = Vec::with_capacity(*arity as usize);
                for _ in 0..*arity {
                    args.push(pop(&mut stack, pc, &c)?);
                }
                args.reverse();
                let fv = pop(&mut stack, pc, &c)?;
                let Ty::Func(ft) = fv else {
                    return Err(c.err(pc, format!("callref on non-function {fv}")));
                };
                if ft.params.len() != *arity as usize {
                    return Err(c.err(
                        pc,
                        format!(
                            "callref arity {} but function takes {}",
                            arity,
                            ft.params.len()
                        ),
                    ));
                }
                for (got, want) in args.iter().zip(ft.params.iter()) {
                    if got != want {
                        return Err(c.err(pc, format!("callref arg: expected {want}, found {got}")));
                    }
                }
                stack.push((*ft.result).clone());
            }
            Op::FuncConst(n) => {
                let ft = c.func_ty(pc, *n)?;
                stack.push(Ty::Func(ft));
            }
            Op::TupleMake(n) => {
                if *n < 2 {
                    return Err(c.err(pc, "tuples have at least two components"));
                }
                let mut items = Vec::with_capacity(*n as usize);
                for _ in 0..*n {
                    items.push(pop(&mut stack, pc, &c)?);
                }
                items.reverse();
                stack.push(Ty::Tuple(items));
            }
            Op::TupleGet(i) => {
                let t = pop(&mut stack, pc, &c)?;
                let Ty::Tuple(items) = t else {
                    return Err(c.err(pc, format!("tupleget on non-tuple {t}")));
                };
                let item = items
                    .get(*i as usize)
                    .ok_or_else(|| c.err(pc, format!("tuple has no component {i}")))?;
                stack.push(item.clone());
            }
            Op::StrLen => {
                pop_expect(&mut stack, &Ty::Str, pc, &c)?;
                stack.push(Ty::Int);
            }
            Op::StrConcat => {
                pop_expect(&mut stack, &Ty::Str, pc, &c)?;
                pop_expect(&mut stack, &Ty::Str, pc, &c)?;
                stack.push(Ty::Str);
            }
            Op::StrByte => {
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                pop_expect(&mut stack, &Ty::Str, pc, &c)?;
                stack.push(Ty::Int);
            }
            Op::StrSlice => {
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                pop_expect(&mut stack, &Ty::Str, pc, &c)?;
                stack.push(Ty::Str);
            }
            Op::StrPackInt(w) => {
                if !INT_WIDTHS.contains(w) {
                    return Err(c.err(pc, format!("bad pack width {w}")));
                }
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                stack.push(Ty::Str);
            }
            Op::StrUnpackInt(w) => {
                if !INT_WIDTHS.contains(w) {
                    return Err(c.err(pc, format!("bad unpack width {w}")));
                }
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                pop_expect(&mut stack, &Ty::Str, pc, &c)?;
                stack.push(Ty::Int);
            }
            Op::StrFromInt => {
                pop_expect(&mut stack, &Ty::Int, pc, &c)?;
                stack.push(Ty::Str);
            }
            Op::TableNew(n) => {
                let ty = module
                    .ty_pool
                    .get(*n as usize)
                    .ok_or_else(|| c.err(pc, format!("type pool index {n} out of range")))?;
                let Ty::Table(k, _) = ty else {
                    return Err(c.err(pc, format!("tablenew of non-table type {ty}")));
                };
                if !k.hashable() {
                    return Err(c.err(pc, format!("table key type {k} is not hashable")));
                }
                stack.push(ty.clone());
            }
            Op::TableAdd => {
                let v = pop(&mut stack, pc, &c)?;
                let k = pop(&mut stack, pc, &c)?;
                let t = pop(&mut stack, pc, &c)?;
                let Ty::Table(tk, tv) = &t else {
                    return Err(c.err(pc, format!("tableadd on non-table {t}")));
                };
                if **tk != k || **tv != v {
                    return Err(c.err(pc, format!("tableadd ({k}, {v}) into {t}")));
                }
            }
            Op::TableGet => {
                let d = pop(&mut stack, pc, &c)?;
                let k = pop(&mut stack, pc, &c)?;
                let t = pop(&mut stack, pc, &c)?;
                let Ty::Table(tk, tv) = &t else {
                    return Err(c.err(pc, format!("tableget on non-table {t}")));
                };
                if **tk != k || **tv != d {
                    return Err(c.err(pc, format!("tableget ({k}, default {d}) from {t}")));
                }
                stack.push((**tv).clone());
            }
            Op::TableMem => {
                let k = pop(&mut stack, pc, &c)?;
                let t = pop(&mut stack, pc, &c)?;
                let Ty::Table(tk, _) = &t else {
                    return Err(c.err(pc, format!("tablemem on non-table {t}")));
                };
                if **tk != k {
                    return Err(c.err(pc, format!("tablemem key {k} for {t}")));
                }
                stack.push(Ty::Bool);
            }
            Op::TableRemove => {
                let k = pop(&mut stack, pc, &c)?;
                let t = pop(&mut stack, pc, &c)?;
                let Ty::Table(tk, _) = &t else {
                    return Err(c.err(pc, format!("tableremove on non-table {t}")));
                };
                if **tk != k {
                    return Err(c.err(pc, format!("tableremove key {k} for {t}")));
                }
            }
            Op::TableLen => {
                let t = pop(&mut stack, pc, &c)?;
                if !matches!(t, Ty::Table(_, _)) {
                    return Err(c.err(pc, format!("tablelen on non-table {t}")));
                }
                stack.push(Ty::Int);
            }
            Op::Nop => {}
        }

        if falls_through {
            if pc + 1 == func.code.len() {
                return Err(c.err(pc, "control falls off the end of the function"));
            }
            current = Some(Snap { stack, inited });
        } else {
            current = None;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Export, Module};

    fn module_with(funcs: Vec<Function>) -> Module {
        let mut m = Module {
            name: "t".into(),
            imports: vec![ImportSig {
                module: "safestd".into(),
                item: "log".into(),
                ty: Ty::func(vec![Ty::Str], Ty::Unit),
            }],
            exports: vec![],
            ty_pool: vec![Ty::table(Ty::Str, Ty::Int)],
            str_pool: vec![b"s".to_vec()],
            functions: funcs,
            init: None,
            import_digest: Default::default(),
            export_digest: Default::default(),
        };
        m.seal();
        m
    }

    fn f(params: Vec<Ty>, result: Ty, code: Vec<Op>) -> Function {
        Function {
            name: "f".into(),
            params,
            locals: vec![],
            result,
            code,
        }
    }

    fn verify_one(func: Function) -> Result<(), VerifyError> {
        let m = module_with(vec![func]);
        verify_module(&m)
    }

    #[test]
    fn accepts_trivial_unit_function() {
        verify_one(f(vec![], Ty::Unit, vec![Op::ConstUnit, Op::Return])).unwrap();
    }

    #[test]
    fn accepts_arithmetic() {
        verify_one(f(
            vec![Ty::Int, Ty::Int],
            Ty::Int,
            vec![Op::LocalGet(0), Op::LocalGet(1), Op::Add, Op::Return],
        ))
        .unwrap();
    }

    #[test]
    fn rejects_type_confusion() {
        let err = verify_one(f(
            vec![Ty::Str],
            Ty::Int,
            vec![Op::LocalGet(0), Op::ConstInt(1), Op::Add, Op::Return],
        ))
        .unwrap_err();
        assert!(err.reason.contains("expected int"), "{err}");
    }

    #[test]
    fn rejects_stack_underflow() {
        let err = verify_one(f(vec![], Ty::Int, vec![Op::Add, Op::Return])).unwrap_err();
        assert!(err.reason.contains("underflow"), "{err}");
    }

    #[test]
    fn rejects_fallthrough() {
        let err = verify_one(f(vec![], Ty::Unit, vec![Op::ConstUnit])).unwrap_err();
        assert!(err.reason.contains("falls off"), "{err}");
    }

    #[test]
    fn rejects_dirty_return() {
        let err = verify_one(f(
            vec![],
            Ty::Int,
            vec![Op::ConstInt(1), Op::ConstInt(2), Op::Return],
        ))
        .unwrap_err();
        assert!(err.reason.contains("extra values"), "{err}");
    }

    #[test]
    fn rejects_wrong_return_type() {
        let err =
            verify_one(f(vec![], Ty::Int, vec![Op::ConstBool(true), Op::Return])).unwrap_err();
        assert!(err.reason.contains("expected int"), "{err}");
    }

    #[test]
    fn accepts_conditional_with_matching_join() {
        // if p { 1 } else { 2 }  — both branches leave one int.
        verify_one(f(
            vec![Ty::Bool],
            Ty::Int,
            vec![
                Op::LocalGet(0),
                Op::BrIf(4),     // 1: to then-branch
                Op::ConstInt(2), // 2: else
                Op::Jump(5),     // 3: to join
                Op::ConstInt(1), // 4: then
                Op::Return,      // 5: join
            ],
        ))
        .unwrap();
    }

    #[test]
    fn rejects_mismatched_join() {
        // One branch pushes an int, the other a bool.
        let err = verify_one(f(
            vec![Ty::Bool],
            Ty::Int,
            vec![
                Op::LocalGet(0),
                Op::BrIf(4),
                Op::ConstInt(2),
                Op::Jump(5),
                Op::ConstBool(true), // mismatched type at join
                Op::Return,
            ],
        ))
        .unwrap_err();
        assert!(err.reason.contains("mismatch"), "{err}");
    }

    #[test]
    fn accepts_real_backward_loop() {
        verify_one(Function {
            name: "loop".into(),
            params: vec![Ty::Int],
            locals: vec![],
            result: Ty::Unit,
            code: vec![
                Op::LocalGet(0), // 0 loop head
                Op::ConstInt(0), // 1
                Op::Le,          // 2
                Op::BrIf(9),     // 3 exit when local0 <= 0
                Op::LocalGet(0), // 4
                Op::ConstInt(1), // 5
                Op::Sub,         // 6
                Op::LocalSet(0), // 7
                Op::Jump(0),     // 8 back edge
                Op::ConstUnit,   // 9
                Op::Return,      // 10
            ],
        })
        .unwrap();
    }

    #[test]
    fn rejects_unreachable_code() {
        let err = verify_one(f(
            vec![],
            Ty::Unit,
            vec![
                Op::ConstUnit,
                Op::Return,
                Op::Nop,
                Op::ConstUnit,
                Op::Return,
            ],
        ))
        .unwrap_err();
        assert!(err.reason.contains("unreachable"), "{err}");
    }

    #[test]
    fn rejects_oob_jump() {
        let err = verify_one(f(vec![], Ty::Unit, vec![Op::Jump(99)])).unwrap_err();
        assert!(err.reason.contains("out of range"), "{err}");
    }

    #[test]
    fn rejects_oob_local() {
        let err = verify_one(f(
            vec![Ty::Int],
            Ty::Unit,
            vec![Op::LocalGet(4), Op::Return],
        ))
        .unwrap_err();
        assert!(err.reason.contains("local 4"), "{err}");
    }

    #[test]
    fn checks_import_call_types() {
        // safestd.log : [str] -> unit; calling it with an int must fail.
        let err = verify_one(f(
            vec![],
            Ty::Unit,
            vec![Op::ConstInt(3), Op::CallImport(0), Op::Return],
        ))
        .unwrap_err();
        assert!(err.reason.contains("expected str"), "{err}");
    }

    #[test]
    fn accepts_import_call() {
        verify_one(f(
            vec![],
            Ty::Unit,
            vec![Op::ConstStr(0), Op::CallImport(0), Op::Return],
        ))
        .unwrap();
    }

    #[test]
    fn checks_callref_types() {
        // FuncConst of f itself: [bool] -> int, called with int arg: error.
        let func = Function {
            name: "g".into(),
            params: vec![Ty::Bool],
            locals: vec![],
            result: Ty::Int,
            code: vec![
                Op::FuncConst(0),
                Op::ConstInt(1),
                Op::CallRef(1),
                Op::Return,
            ],
        };
        let err = verify_one(func).unwrap_err();
        assert!(err.reason.contains("callref arg"), "{err}");
    }

    #[test]
    fn table_ops_type_checked() {
        // Table<str, int>: adding (int, int) must fail.
        let err = verify_one(f(
            vec![],
            Ty::Unit,
            vec![
                Op::TableNew(0),
                Op::ConstInt(1),
                Op::ConstInt(2),
                Op::TableAdd,
                Op::ConstUnit,
                Op::Return,
            ],
        ))
        .unwrap_err();
        assert!(err.reason.contains("tableadd"), "{err}");
    }

    #[test]
    fn table_roundtrip_verifies() {
        verify_one(f(
            vec![],
            Ty::Int,
            vec![
                Op::TableNew(0),
                Op::Dup,
                Op::ConstStr(0),
                Op::ConstInt(42),
                Op::TableAdd,
                Op::ConstStr(0),
                Op::ConstInt(0),
                Op::TableGet,
                Op::Return,
            ],
        ))
        .unwrap();
    }

    #[test]
    fn init_must_be_nullary_unit() {
        let mut m = module_with(vec![f(
            vec![Ty::Int],
            Ty::Unit,
            vec![Op::ConstUnit, Op::Return],
        )]);
        m.init = Some(0);
        let err = verify_module(&m).unwrap_err();
        assert!(err.reason.contains("init function"), "{err}");
    }

    #[test]
    fn duplicate_exports_rejected() {
        let mut m = module_with(vec![
            f(vec![], Ty::Unit, vec![Op::ConstUnit, Op::Return]),
            f(vec![], Ty::Unit, vec![Op::ConstUnit, Op::Return]),
        ]);
        m.exports = vec![
            Export {
                name: "x".into(),
                func: 0,
            },
            Export {
                name: "x".into(),
                func: 1,
            },
        ];
        m.seal();
        let err = verify_module(&m).unwrap_err();
        assert!(err.reason.contains("duplicate export"), "{err}");
    }

    #[test]
    fn rejects_read_before_init() {
        let func = Function {
            name: "u".into(),
            params: vec![],
            locals: vec![Ty::Int],
            result: Ty::Int,
            code: vec![Op::LocalGet(0), Op::Return],
        };
        let err = verify_one(func).unwrap_err();
        assert!(err.reason.contains("before initialization"), "{err}");
    }

    #[test]
    fn accepts_write_then_read() {
        let func = Function {
            name: "w".into(),
            params: vec![],
            locals: vec![Ty::Int],
            result: Ty::Int,
            code: vec![
                Op::ConstInt(5),
                Op::LocalSet(0),
                Op::LocalGet(0),
                Op::Return,
            ],
        };
        verify_one(func).unwrap();
    }

    #[test]
    fn rejects_partially_initialized_join() {
        // Only one branch initializes local 0; the join must reject.
        let func = Function {
            name: "p".into(),
            params: vec![Ty::Bool],
            locals: vec![Ty::Int],
            result: Ty::Unit,
            code: vec![
                Op::LocalGet(0), // 0
                Op::BrIf(4),     // 1
                Op::ConstInt(1), // 2
                Op::LocalSet(1), // 3: init local slot 1
                Op::ConstUnit,   // 4: join — init state differs
                Op::Return,      // 5
            ],
        };
        let err = verify_one(func).unwrap_err();
        assert!(err.reason.contains("mismatch"), "{err}");
    }

    #[test]
    fn eq_requires_hashable() {
        let err = verify_one(f(
            vec![],
            Ty::Bool,
            vec![Op::TableNew(0), Op::TableNew(0), Op::Eq, Op::Return],
        ))
        .unwrap_err();
        assert!(err.reason.contains("non-comparable"), "{err}");
    }
}
