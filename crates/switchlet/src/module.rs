//! The module container and its wire format.
//!
//! Switchlets travel over the network (the paper pushes them through TFTP)
//! as self-describing byte codes: name, import/export signatures with MD5
//! interface digests, type and string pools, function bodies, and the index
//! of the `init` function whose evaluation performs registration. A trailing
//! MD5 over the whole body detects altered byte codes: "If the byte codes
//! are unaltered module thinning works as described."

use crate::bytecode::{Function, Op, INT_WIDTHS};
use crate::digest::{md5, Digest};
use crate::sig::{digest_exports, digest_imports, ExportSig, ImportSig};
use crate::types::Ty;

/// Sanity caps on decoded modules (a switchlet claiming a million
/// functions is discarded before any allocation of that size).
pub const MAX_FUNCTIONS: usize = 4096;
/// Cap on instructions per function.
pub const MAX_CODE: usize = 1 << 20;
/// Cap on pool entries.
pub const MAX_POOL: usize = 4096;

/// One export: a named local function.
#[derive(Clone, PartialEq, Debug)]
pub struct Export {
    /// The exported name.
    pub name: String,
    /// Index of the exported function.
    pub func: u32,
}

/// A loadable switchlet module.
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    /// The module's name; loaded units are registered under it.
    pub name: String,
    /// Imported items, with the types the module was compiled against.
    pub imports: Vec<ImportSig>,
    /// Exported functions.
    pub exports: Vec<Export>,
    /// Type pool (referenced by `TableNew`).
    pub ty_pool: Vec<Ty>,
    /// String pool (referenced by `ConstStr`).
    pub str_pool: Vec<Vec<u8>>,
    /// Function bodies.
    pub functions: Vec<Function>,
    /// The function evaluated at load time ("the byte codes usually contain
    /// some top-level forms that call a registration function"). Must have
    /// type `[] -> unit`.
    pub init: Option<u32>,
    /// Digest of the import interface, recorded when the module was built.
    pub import_digest: Digest,
    /// Digest of the export interface.
    pub export_digest: Digest,
}

/// Errors from [`Module::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Not a switchlet image.
    BadMagic,
    /// Ran out of bytes.
    Truncated,
    /// A type encoding was malformed.
    BadType,
    /// Unknown opcode.
    BadOp(u8),
    /// A count exceeded its sanity cap.
    TooLarge(&'static str),
    /// A name was not UTF-8.
    BadUtf8,
    /// The body digest did not match — altered byte codes.
    CodeDigestMismatch,
    /// The recorded interface digests do not match the decoded signatures.
    InterfaceDigestMismatch,
    /// Trailing garbage after the image.
    TrailingBytes,
    /// An index field pointed outside its pool.
    BadIndex(&'static str),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a switchlet image (bad magic)"),
            DecodeError::Truncated => write!(f, "truncated switchlet image"),
            DecodeError::BadType => write!(f, "malformed type encoding"),
            DecodeError::BadOp(op) => write!(f, "unknown opcode 0x{op:02x}"),
            DecodeError::TooLarge(what) => write!(f, "{what} exceeds sanity cap"),
            DecodeError::BadUtf8 => write!(f, "name is not valid UTF-8"),
            DecodeError::CodeDigestMismatch => {
                write!(f, "byte codes were altered (digest mismatch)")
            }
            DecodeError::InterfaceDigestMismatch => {
                write!(f, "interface digests do not match signatures")
            }
            DecodeError::TrailingBytes => write!(f, "trailing bytes after image"),
            DecodeError::BadIndex(what) => write!(f, "{what} index out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: &[u8; 4] = b"SWL1";

// ---------------------------------------------------------------- encoding

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str16(&mut self, s: &str) {
        assert!(s.len() <= u16::MAX as usize);
        self.u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn bytes32(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
    fn ty(&mut self, t: &Ty) {
        let mut enc = Vec::new();
        t.encode(&mut enc);
        self.u16(enc.len() as u16);
        self.buf.extend_from_slice(&enc);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str16(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
    fn bytes32(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        if len > MAX_CODE {
            return Err(DecodeError::TooLarge("string pool entry"));
        }
        Ok(self.take(len)?.to_vec())
    }
    fn ty(&mut self) -> Result<Ty, DecodeError> {
        let len = self.u16()? as usize;
        let mut enc = self.take(len)?;
        let t = Ty::decode(&mut enc).ok_or(DecodeError::BadType)?;
        if !enc.is_empty() {
            return Err(DecodeError::BadType);
        }
        Ok(t)
    }
}

fn encode_op(w: &mut Writer, op: &Op) {
    match op {
        Op::ConstUnit => w.u8(0x00),
        Op::ConstBool(b) => {
            w.u8(0x01);
            w.u8(*b as u8);
        }
        Op::ConstInt(i) => {
            w.u8(0x02);
            w.i64(*i);
        }
        Op::ConstStr(n) => {
            w.u8(0x03);
            w.u32(*n);
        }
        Op::LocalGet(n) => {
            w.u8(0x04);
            w.u16(*n);
        }
        Op::LocalSet(n) => {
            w.u8(0x05);
            w.u16(*n);
        }
        Op::Pop => w.u8(0x06),
        Op::Dup => w.u8(0x07),
        Op::Add => w.u8(0x10),
        Op::Sub => w.u8(0x11),
        Op::Mul => w.u8(0x12),
        Op::Div => w.u8(0x13),
        Op::Mod => w.u8(0x14),
        Op::Neg => w.u8(0x15),
        Op::Eq => w.u8(0x16),
        Op::Ne => w.u8(0x17),
        Op::Lt => w.u8(0x18),
        Op::Le => w.u8(0x19),
        Op::Gt => w.u8(0x1a),
        Op::Ge => w.u8(0x1b),
        Op::And => w.u8(0x1c),
        Op::Or => w.u8(0x1d),
        Op::Not => w.u8(0x1e),
        Op::Jump(t) => {
            w.u8(0x20);
            w.u32(*t);
        }
        Op::BrIf(t) => {
            w.u8(0x21);
            w.u32(*t);
        }
        Op::BrIfNot(t) => {
            w.u8(0x22);
            w.u32(*t);
        }
        Op::Return => w.u8(0x23),
        Op::Call(n) => {
            w.u8(0x24);
            w.u32(*n);
        }
        Op::CallImport(n) => {
            w.u8(0x25);
            w.u32(*n);
        }
        Op::CallRef(n) => {
            w.u8(0x26);
            w.u8(*n);
        }
        Op::FuncConst(n) => {
            w.u8(0x27);
            w.u32(*n);
        }
        Op::ImportGet(n) => {
            w.u8(0x28);
            w.u32(*n);
        }
        Op::TupleMake(n) => {
            w.u8(0x30);
            w.u8(*n);
        }
        Op::TupleGet(n) => {
            w.u8(0x31);
            w.u8(*n);
        }
        Op::StrLen => w.u8(0x40),
        Op::StrConcat => w.u8(0x41),
        Op::StrByte => w.u8(0x42),
        Op::StrSlice => w.u8(0x43),
        Op::StrPackInt(n) => {
            w.u8(0x44);
            w.u8(*n);
        }
        Op::StrUnpackInt(n) => {
            w.u8(0x45);
            w.u8(*n);
        }
        Op::StrFromInt => w.u8(0x46),
        Op::TableNew(n) => {
            w.u8(0x50);
            w.u32(*n);
        }
        Op::TableAdd => w.u8(0x51),
        Op::TableGet => w.u8(0x52),
        Op::TableMem => w.u8(0x53),
        Op::TableRemove => w.u8(0x54),
        Op::TableLen => w.u8(0x55),
        Op::Nop => w.u8(0x60),
    }
}

fn decode_op(r: &mut Reader<'_>) -> Result<Op, DecodeError> {
    let tag = r.u8()?;
    Ok(match tag {
        0x00 => Op::ConstUnit,
        0x01 => Op::ConstBool(r.u8()? != 0),
        0x02 => Op::ConstInt(r.i64()?),
        0x03 => Op::ConstStr(r.u32()?),
        0x04 => Op::LocalGet(r.u16()?),
        0x05 => Op::LocalSet(r.u16()?),
        0x06 => Op::Pop,
        0x07 => Op::Dup,
        0x10 => Op::Add,
        0x11 => Op::Sub,
        0x12 => Op::Mul,
        0x13 => Op::Div,
        0x14 => Op::Mod,
        0x15 => Op::Neg,
        0x16 => Op::Eq,
        0x17 => Op::Ne,
        0x18 => Op::Lt,
        0x19 => Op::Le,
        0x1a => Op::Gt,
        0x1b => Op::Ge,
        0x1c => Op::And,
        0x1d => Op::Or,
        0x1e => Op::Not,
        0x20 => Op::Jump(r.u32()?),
        0x21 => Op::BrIf(r.u32()?),
        0x22 => Op::BrIfNot(r.u32()?),
        0x23 => Op::Return,
        0x24 => Op::Call(r.u32()?),
        0x25 => Op::CallImport(r.u32()?),
        0x26 => Op::CallRef(r.u8()?),
        0x27 => Op::FuncConst(r.u32()?),
        0x28 => Op::ImportGet(r.u32()?),
        0x30 => Op::TupleMake(r.u8()?),
        0x31 => Op::TupleGet(r.u8()?),
        0x40 => Op::StrLen,
        0x41 => Op::StrConcat,
        0x42 => Op::StrByte,
        0x43 => Op::StrSlice,
        0x44 => {
            let n = r.u8()?;
            if !INT_WIDTHS.contains(&n) {
                return Err(DecodeError::BadOp(0x44));
            }
            Op::StrPackInt(n)
        }
        0x45 => {
            let n = r.u8()?;
            if !INT_WIDTHS.contains(&n) {
                return Err(DecodeError::BadOp(0x45));
            }
            Op::StrUnpackInt(n)
        }
        0x46 => Op::StrFromInt,
        0x50 => Op::TableNew(r.u32()?),
        0x51 => Op::TableAdd,
        0x52 => Op::TableGet,
        0x53 => Op::TableMem,
        0x54 => Op::TableRemove,
        0x55 => Op::TableLen,
        0x60 => Op::Nop,
        other => return Err(DecodeError::BadOp(other)),
    })
}

impl Module {
    /// The export interface as signatures (name + full function type).
    pub fn export_sigs(&self) -> Vec<ExportSig> {
        self.exports
            .iter()
            .map(|e| {
                let f = &self.functions[e.func as usize];
                ExportSig {
                    name: e.name.clone(),
                    ty: Ty::func(f.params.clone(), f.result.clone()),
                }
            })
            .collect()
    }

    /// Recompute and store both interface digests (called by the
    /// assembler as the final build step).
    pub fn seal(&mut self) {
        self.import_digest = digest_imports(&self.imports);
        self.export_digest = digest_exports(&self.name, &self.export_sigs());
    }

    /// Serialize to wire bytes (with trailing body digest).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(MAGIC);
        w.str16(&self.name);
        w.u16(self.imports.len() as u16);
        for imp in &self.imports {
            w.str16(&imp.module);
            w.str16(&imp.item);
            w.ty(&imp.ty);
        }
        w.u16(self.exports.len() as u16);
        for exp in &self.exports {
            w.str16(&exp.name);
            w.u32(exp.func);
        }
        w.u16(self.ty_pool.len() as u16);
        for t in &self.ty_pool {
            w.ty(t);
        }
        w.u16(self.str_pool.len() as u16);
        for s in &self.str_pool {
            w.bytes32(s);
        }
        w.u16(self.functions.len() as u16);
        for f in &self.functions {
            w.str16(&f.name);
            w.u8(f.params.len() as u8);
            for p in &f.params {
                w.ty(p);
            }
            w.u16(f.locals.len() as u16);
            for l in &f.locals {
                w.ty(l);
            }
            w.ty(&f.result);
            w.u32(f.code.len() as u32);
            for op in &f.code {
                encode_op(&mut w, op);
            }
        }
        match self.init {
            Some(idx) => {
                w.u8(1);
                w.u32(idx);
            }
            None => w.u8(0),
        }
        w.buf.extend_from_slice(&self.import_digest.0);
        w.buf.extend_from_slice(&self.export_digest.0);
        let body_digest = md5(&w.buf);
        w.buf.extend_from_slice(&body_digest.0);
        w.buf
    }

    /// Deserialize and structurally validate an image. Checks the body
    /// digest, the interface digests, and all index bounds; *semantic*
    /// validation (type-checking the code) is the verifier's job.
    pub fn decode(bytes: &[u8]) -> Result<Module, DecodeError> {
        if bytes.len() < MAGIC.len() + 16 {
            return Err(DecodeError::Truncated);
        }
        let (body, digest_bytes) = bytes.split_at(bytes.len() - 16);
        let want = Digest(digest_bytes.try_into().unwrap());
        if md5(body) != want {
            return Err(DecodeError::CodeDigestMismatch);
        }
        let mut r = Reader { buf: body };
        if r.take(4)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let name = r.str16()?;
        let n_imports = r.u16()? as usize;
        if n_imports > MAX_POOL {
            return Err(DecodeError::TooLarge("import count"));
        }
        let mut imports = Vec::with_capacity(n_imports);
        for _ in 0..n_imports {
            let module = r.str16()?;
            let item = r.str16()?;
            let ty = r.ty()?;
            imports.push(ImportSig { module, item, ty });
        }
        let n_exports = r.u16()? as usize;
        if n_exports > MAX_POOL {
            return Err(DecodeError::TooLarge("export count"));
        }
        let mut exports = Vec::with_capacity(n_exports);
        for _ in 0..n_exports {
            let name = r.str16()?;
            let func = r.u32()?;
            exports.push(Export { name, func });
        }
        let n_tys = r.u16()? as usize;
        if n_tys > MAX_POOL {
            return Err(DecodeError::TooLarge("type pool"));
        }
        let mut ty_pool = Vec::with_capacity(n_tys);
        for _ in 0..n_tys {
            ty_pool.push(r.ty()?);
        }
        let n_strs = r.u16()? as usize;
        if n_strs > MAX_POOL {
            return Err(DecodeError::TooLarge("string pool"));
        }
        let mut str_pool = Vec::with_capacity(n_strs);
        for _ in 0..n_strs {
            str_pool.push(r.bytes32()?);
        }
        let n_funcs = r.u16()? as usize;
        if n_funcs > MAX_FUNCTIONS {
            return Err(DecodeError::TooLarge("function count"));
        }
        let mut functions = Vec::with_capacity(n_funcs);
        for _ in 0..n_funcs {
            let fname = r.str16()?;
            let n_params = r.u8()? as usize;
            let mut params = Vec::with_capacity(n_params);
            for _ in 0..n_params {
                params.push(r.ty()?);
            }
            let n_locals = r.u16()? as usize;
            if n_locals > MAX_POOL {
                return Err(DecodeError::TooLarge("local count"));
            }
            let mut locals = Vec::with_capacity(n_locals);
            for _ in 0..n_locals {
                locals.push(r.ty()?);
            }
            let result = r.ty()?;
            let n_code = r.u32()? as usize;
            if n_code > MAX_CODE {
                return Err(DecodeError::TooLarge("code length"));
            }
            let mut code = Vec::with_capacity(n_code);
            for _ in 0..n_code {
                code.push(decode_op(&mut r)?);
            }
            functions.push(Function {
                name: fname,
                params,
                locals,
                result,
                code,
            });
        }
        let init = if r.u8()? != 0 { Some(r.u32()?) } else { None };
        let import_digest = Digest(r.take(16)?.try_into().unwrap());
        let export_digest = Digest(r.take(16)?.try_into().unwrap());
        if !r.buf.is_empty() {
            return Err(DecodeError::TrailingBytes);
        }

        // Structural bounds.
        for exp in &exports {
            if exp.func as usize >= functions.len() {
                return Err(DecodeError::BadIndex("export function"));
            }
        }
        if let Some(init_idx) = init {
            if init_idx as usize >= functions.len() {
                return Err(DecodeError::BadIndex("init function"));
            }
        }

        let module = Module {
            name,
            imports,
            exports,
            ty_pool,
            str_pool,
            functions,
            init,
            import_digest,
            export_digest,
        };
        // The recorded interface digests must match the decoded signatures.
        if digest_imports(&module.imports) != module.import_digest
            || digest_exports(&module.name, &module.export_sigs()) != module.export_digest
        {
            return Err(DecodeError::InterfaceDigestMismatch);
        }
        Ok(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_module() -> Module {
        let mut m = Module {
            name: "sample".into(),
            imports: vec![ImportSig {
                module: "safestd".into(),
                item: "log".into(),
                ty: Ty::func(vec![Ty::Str], Ty::Unit),
            }],
            exports: vec![Export {
                name: "go".into(),
                func: 0,
            }],
            ty_pool: vec![Ty::table(Ty::Str, Ty::Int)],
            str_pool: vec![b"hello".to_vec()],
            functions: vec![Function {
                name: "go".into(),
                params: vec![],
                locals: vec![Ty::Int],
                result: Ty::Unit,
                code: vec![
                    Op::ConstStr(0),
                    Op::CallImport(0),
                    Op::Pop,
                    Op::ConstUnit,
                    Op::Return,
                ],
            }],
            init: Some(0),
            import_digest: Digest::default(),
            export_digest: Digest::default(),
        };
        m.seal();
        m
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample_module();
        let bytes = m.encode();
        let back = Module::decode(&bytes).unwrap();
        assert_eq!(back.name, m.name);
        assert_eq!(back.imports, m.imports);
        assert_eq!(back.exports, m.exports);
        assert_eq!(back.ty_pool, m.ty_pool);
        assert_eq!(back.str_pool, m.str_pool);
        assert_eq!(back.functions, m.functions);
        assert_eq!(back.init, m.init);
        assert_eq!(back.import_digest, m.import_digest);
        assert_eq!(back.export_digest, m.export_digest);
    }

    #[test]
    fn tampered_bytes_rejected() {
        let m = sample_module();
        let mut bytes = m.encode();
        // Flip a bit in the middle of the body.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(Module::decode(&bytes), Err(DecodeError::CodeDigestMismatch));
    }

    #[test]
    fn forged_interface_digest_rejected() {
        // Re-sign the body digest but leave a wrong interface digest: this
        // simulates an attacker recomputing the outer checksum after
        // altering the recorded interface fingerprint.
        let mut m = sample_module();
        m.import_digest = Digest([0xab; 16]);
        let bytes = m.encode(); // encode() signs the (inconsistent) body
        assert_eq!(
            Module::decode(&bytes),
            Err(DecodeError::InterfaceDigestMismatch)
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_module().encode();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(Module::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_module().encode();
        bytes[0] = b'X';
        // Bad magic also breaks the digest; rewrite trailer to isolate the
        // magic check.
        let body_len = bytes.len() - 16;
        let d = md5(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&d.0);
        assert_eq!(Module::decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn decode_checks_init_bounds() {
        let mut m = sample_module();
        // Bypass seal-time indexing by appending a bogus export after
        // sealing, then re-encode manually is not possible — instead check
        // the init bound, which seal() does not touch.
        m.init = Some(9);
        let bytes = m.encode();
        assert_eq!(
            Module::decode(&bytes),
            Err(DecodeError::BadIndex("init function"))
        );
    }

    #[test]
    fn empty_module_roundtrips() {
        let mut m = Module {
            name: "empty".into(),
            imports: vec![],
            exports: vec![],
            ty_pool: vec![],
            str_pool: vec![],
            functions: vec![],
            init: None,
            import_digest: Digest::default(),
            export_digest: Digest::default(),
        };
        m.seal();
        let back = Module::decode(&m.encode()).unwrap();
        assert_eq!(back.name, "empty");
        assert!(back.functions.is_empty());
    }
}
