//! Digest-sealed image envelope: the integrity gate's wire format.
//!
//! The paper leans on Caml's MD5 interface digests to keep *mismatched*
//! code out of the bridge; a hostile medium additionally threatens
//! *mangled* code — a switchlet image whose bits flipped in flight. An
//! envelope wraps a switchlet image with enough redundancy to reject a
//! corrupted upload **before** any decode or evaluation touches it:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "SWEN"
//! 4       2     version (big-endian, currently 1)
//! 6       2     reserved (zero)
//! 8       4     payload length (big-endian)
//! 12      16    MD5 of the payload
//! 28      n     payload (the switchlet image itself)
//! ```
//!
//! Sealing is **opt-in** per upload: a bare image (no `SWEN` magic) takes
//! the legacy load path untouched, so existing scenarios are bit-for-bit
//! unchanged. MD5 here is an integrity fingerprint against line noise,
//! exactly the role it plays in the paper's interface digests — not an
//! authenticator (the paper: "we have not addressed the authentication
//! issues").

use crate::digest::{md5, Digest};

/// Envelope magic, first bytes on the wire.
pub const ENVELOPE_MAGIC: [u8; 4] = *b"SWEN";

/// Current envelope format version.
pub const ENVELOPE_VERSION: u16 = 1;

/// Header octets preceding the payload.
pub const ENVELOPE_HEADER_LEN: usize = 28;

/// Why [`unseal`] rejected an envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Shorter than a header, or the advertised payload length does not
    /// match the bytes that actually arrived.
    Truncated {
        /// Payload octets the header promised (`None`: header itself cut).
        expected: Option<usize>,
        /// Octets actually present after the header.
        got: usize,
    },
    /// An unknown format version — refuse rather than guess.
    BadVersion(u16),
    /// The payload's MD5 does not match the sealed digest.
    DigestMismatch {
        /// Digest the sealer stamped.
        sealed: Digest,
        /// Digest of the payload as received.
        computed: Digest,
    },
}

impl core::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EnvelopeError::Truncated { expected, got } => match expected {
                Some(e) => write!(
                    f,
                    "envelope truncated: {e} payload bytes promised, {got} seen"
                ),
                None => write!(
                    f,
                    "envelope truncated: {got} bytes is shorter than a header"
                ),
            },
            EnvelopeError::BadVersion(v) => write!(f, "unknown envelope version {v}"),
            EnvelopeError::DigestMismatch { sealed, computed } => {
                write!(
                    f,
                    "integrity digest mismatch: sealed {sealed}, computed {computed}"
                )
            }
        }
    }
}

/// Does this blob claim to be an envelope? (Magic check only — the claim
/// is then held to account by [`unseal`].)
pub fn is_enveloped(blob: &[u8]) -> bool {
    blob.len() >= ENVELOPE_MAGIC.len() && blob[..ENVELOPE_MAGIC.len()] == ENVELOPE_MAGIC
}

/// Wrap `payload` in a sealed envelope.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_HEADER_LEN + payload.len());
    out.extend_from_slice(&ENVELOPE_MAGIC);
    out.extend_from_slice(&ENVELOPE_VERSION.to_be_bytes());
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&md5(payload).0);
    out.extend_from_slice(payload);
    out
}

/// Verify an envelope and return its payload.
///
/// Checks, in order: header present, version known, advertised length
/// matches the received length, sealed MD5 matches the computed MD5.
/// Only call on blobs where [`is_enveloped`] holds; a bare image is the
/// caller's legacy path, not an error here.
pub fn unseal(blob: &[u8]) -> Result<&[u8], EnvelopeError> {
    debug_assert!(is_enveloped(blob));
    if blob.len() < ENVELOPE_HEADER_LEN {
        return Err(EnvelopeError::Truncated {
            expected: None,
            got: blob.len(),
        });
    }
    let version = u16::from_be_bytes([blob[4], blob[5]]);
    if version != ENVELOPE_VERSION || blob[6] != 0 || blob[7] != 0 {
        // Nonzero reserved octets are treated as a version we do not
        // speak — the header is not covered by the digest, so every one
        // of its bits must be load-bearing or checked-zero.
        return Err(EnvelopeError::BadVersion(version));
    }
    let len = u32::from_be_bytes([blob[8], blob[9], blob[10], blob[11]]) as usize;
    let payload = &blob[ENVELOPE_HEADER_LEN..];
    if payload.len() != len {
        return Err(EnvelopeError::Truncated {
            expected: Some(len),
            got: payload.len(),
        });
    }
    let sealed = Digest(blob[12..28].try_into().expect("16 digest octets"));
    let computed = md5(payload);
    if sealed != computed {
        return Err(EnvelopeError::DigestMismatch { sealed, computed });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        let payload = b"a switchlet image".to_vec();
        let sealed = seal(&payload);
        assert!(is_enveloped(&sealed));
        assert_eq!(sealed.len(), ENVELOPE_HEADER_LEN + payload.len());
        assert_eq!(unseal(&sealed).unwrap(), &payload[..]);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let sealed = seal(&[]);
        assert_eq!(unseal(&sealed).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn bare_image_is_not_enveloped() {
        assert!(!is_enveloped(b"plain module bytes"));
        assert!(!is_enveloped(b"SW")); // shorter than the magic
    }

    #[test]
    fn single_bit_flip_anywhere_is_rejected() {
        let payload: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let sealed = seal(&payload);
        // Flip one bit in every byte position past the magic (flipping the
        // magic itself just demotes the blob to "bare", which is the
        // legacy path, not a reject).
        for pos in ENVELOPE_MAGIC.len()..sealed.len() {
            let mut bad = sealed.clone();
            bad[pos] ^= 0x10;
            assert!(
                unseal(&bad).is_err(),
                "bit flip at {pos} slipped past the gate"
            );
        }
    }

    #[test]
    fn truncation_and_extension_are_rejected() {
        let sealed = seal(b"payload-payload-payload");
        let short = &sealed[..sealed.len() - 3];
        assert!(matches!(
            unseal(short),
            Err(EnvelopeError::Truncated {
                expected: Some(23),
                got: 20
            })
        ));
        let mut long = sealed.clone();
        long.extend_from_slice(b"junk");
        assert!(matches!(
            unseal(&long),
            Err(EnvelopeError::Truncated { .. })
        ));
        // Header cut mid-digest.
        assert!(matches!(
            unseal(&sealed[..10]),
            Err(EnvelopeError::Truncated {
                expected: None,
                got: 10
            })
        ));
    }

    #[test]
    fn unknown_version_is_refused() {
        let mut sealed = seal(b"x");
        sealed[5] = 9;
        assert_eq!(unseal(&sealed), Err(EnvelopeError::BadVersion(9)));
    }

    #[test]
    fn error_messages_name_the_integrity_gate() {
        let mut sealed = seal(b"abcdef");
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        let err = unseal(&sealed).unwrap_err();
        assert!(
            err.to_string().contains("integrity"),
            "the TFTP reject message must let the sender classify: {err}"
        );
    }
}
