//! Property tests for the switchlet substrate: verifier soundness
//! (verified programs execute without type faults), wire-format
//! roundtrips, digest behaviour, and decoder robustness.

use proptest::prelude::*;
use switchlet::{
    call, md5, verify_module, Env, ExecConfig, Function, Md5, Module, ModuleBuilder, Namespace,
    NoHost, Op, Ty, Value,
};

/// Generate a random *well-typed straight-line* program over an int
/// accumulator plus a bool scratch register, ending in `Return` of int.
/// By construction the verifier must accept it, and by the soundness
/// property the VM must then execute it without panicking (traps like
/// divide-by-zero are allowed).
fn arb_straightline() -> impl Strategy<Value = Vec<Op>> {
    let step = prop_oneof![
        // [int] -> [int]
        any::<i64>().prop_map(|v| vec![Op::ConstInt(v % 1000), Op::Add]),
        any::<i64>().prop_map(|v| vec![Op::ConstInt(v % 1000), Op::Sub]),
        any::<i64>().prop_map(|v| vec![Op::ConstInt((v % 100) + 1), Op::Mul]),
        any::<i64>().prop_map(|v| vec![Op::ConstInt(v % 7), Op::Div]), // may trap
        Just(vec![Op::Neg]),
        Just(vec![Op::Dup, Op::Add]),
        Just(vec![Op::Dup, Op::Eq, Op::Not, Op::Pop, Op::ConstInt(3)]).prop_map(|mut v| {
            // [int] -> dup,eq -> [bool]; not -> [bool]; pop -> []; push 3.
            v.push(Op::Nop);
            v
        }),
        Just(vec![Op::StrFromInt, Op::StrLen]),
        Just(vec![Op::StrFromInt, Op::ConstInt(0), Op::StrByte]),
    ];
    prop::collection::vec(step, 0..40).prop_map(|steps| {
        let mut code = vec![Op::ConstInt(1)];
        for s in steps {
            code.extend(s);
        }
        code.push(Op::Return);
        code
    })
}

proptest! {
    /// Soundness: anything the verifier accepts executes without
    /// panicking; the only failures are the documented dynamic traps.
    #[test]
    fn verified_programs_execute_safely(code in arb_straightline()) {
        let module = Module {
            name: "gen".into(),
            imports: vec![],
            exports: vec![switchlet::Export { name: "f".into(), func: 0 }],
            ty_pool: vec![],
            str_pool: vec![],
            functions: vec![Function {
                name: "f".into(),
                params: vec![],
                locals: vec![],
                result: Ty::Int,
                code,
            }],
            init: None,
            import_digest: Default::default(),
            export_digest: Default::default(),
        };
        let mut module = module;
        module.seal();
        verify_module(&module).expect("generated programs are well-typed");
        let mut ns = Namespace::new(Env::new());
        ns.load_module(module).unwrap();
        let (f, _) = ns.lookup_export("gen", "f").unwrap();
        match call(&ns, &mut NoHost, f, vec![], &ExecConfig::default()) {
            Ok((Value::Int(_), _)) => {}
            Ok((other, _)) => prop_assert!(false, "non-int result {other:?}"),
            // Allowed dynamic traps only:
            Err(switchlet::VmError::DivideByZero)
            | Err(switchlet::VmError::StrBounds { .. })
            | Err(switchlet::VmError::FuelExhausted) => {}
            Err(e) => prop_assert!(false, "unexpected vm error {e}"),
        }
    }

    /// Module encode→decode is the identity.
    #[test]
    fn module_wire_roundtrip(
        n_strs in 0usize..5,
        consts in prop::collection::vec(any::<i64>(), 1..20),
    ) {
        let mut mb = ModuleBuilder::new("round");
        for i in 0..n_strs {
            mb.intern_str(format!("string-{i}").as_bytes());
        }
        let mut f = mb.func("f", vec![], Ty::Int);
        f.op(Op::ConstInt(consts[0]));
        for &c in &consts[1..] {
            f.op(Op::ConstInt(c));
            f.op(Op::Add);
        }
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("f", idx);
        let module = mb.build();
        let decoded = Module::decode(&module.encode()).unwrap();
        prop_assert_eq!(decoded, module);
    }

    /// Any single-byte corruption of an image is rejected.
    #[test]
    fn corrupted_images_rejected(pos_seed in any::<u64>(), flip in 1u8..=255) {
        let mut mb = ModuleBuilder::new("victim");
        let mut f = mb.func("f", vec![], Ty::Unit);
        f.op(Op::ConstUnit);
        f.op(Op::Return);
        let idx = mb.finish(f);
        mb.export("f", idx);
        let mut image = mb.build().encode();
        let pos = (pos_seed as usize) % image.len();
        image[pos] ^= flip;
        prop_assert!(Module::decode(&image).is_err());
    }

    /// The decoder never panics on garbage.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = Module::decode(&bytes);
    }

    /// Incremental MD5 equals one-shot MD5 for any chunking.
    #[test]
    fn md5_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..600),
        cuts in prop::collection::vec(any::<u16>(), 0..6),
    ) {
        let oneshot = md5(&data);
        let mut h = Md5::new();
        let mut rest: &[u8] = &data;
        for c in cuts {
            if rest.is_empty() { break; }
            let take = (c as usize) % rest.len().max(1);
            let (head, tail) = rest.split_at(take.min(rest.len()));
            h.update(head);
            rest = tail;
        }
        h.update(rest);
        prop_assert_eq!(h.finish(), oneshot);
    }

    /// Distinct interfaces have distinct digests (collision-freedom on
    /// the generated sample, via canonical-encoding injectivity).
    #[test]
    fn import_digests_separate_types(
        name in "[a-z]{1,8}",
        n_params_a in 0usize..4,
        n_params_b in 0usize..4,
    ) {
        prop_assume!(n_params_a != n_params_b);
        let mk = |n: usize| switchlet::ImportSig {
            module: "m".into(),
            item: name.clone(),
            ty: Ty::func(vec![Ty::Int; n], Ty::Unit),
        };
        let a = switchlet::sig::digest_imports(&[mk(n_params_a)]);
        let b = switchlet::sig::digest_imports(&[mk(n_params_b)]);
        prop_assert_ne!(a, b);
    }
}
