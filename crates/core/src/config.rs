//! Bridge configuration: calibrated cost constants and protocol timers.

use netsim::{CostModel, SimDuration};

/// Spanning-tree timer set (802.1D defaults, which the paper's 30-second
/// agility result depends on: two forward-delay intervals before a new
/// path forwards).
#[derive(Copy, Clone, Debug)]
pub struct StpTimers {
    /// Interval between configuration BPDUs from the root.
    pub hello: SimDuration,
    /// Lifetime of stored protocol information.
    pub max_age: SimDuration,
    /// Listening→Learning and Learning→Forwarding delay.
    pub forward_delay: SimDuration,
}

impl Default for StpTimers {
    fn default() -> Self {
        StpTimers {
            hello: SimDuration::from_secs(2),
            max_age: SimDuration::from_secs(20),
            forward_delay: SimDuration::from_secs(15),
        }
    }
}

/// Control-switchlet timing (paper Table 1: suppress DEC packets for the
/// first 30 seconds, run validation tests at 60 seconds).
#[derive(Copy, Clone, Debug)]
pub struct TransitionTimers {
    /// The "initial transition period": DEC packets arriving within it are
    /// suppressed; after it they trigger fallback.
    pub suppress_window: SimDuration,
    /// When to compare the new protocol's spanning tree against the
    /// captured old state.
    pub test_at: SimDuration,
}

impl Default for TransitionTimers {
    fn default() -> Self {
        TransitionTimers {
            suppress_window: SimDuration::from_secs(30),
            test_at: SimDuration::from_secs(60),
        }
    }
}

/// One storm-control budget: a deterministic token bucket policing one
/// traffic class (broadcast/multicast, or unknown unicast) per ingress
/// port, ahead of the switching function. Refill arithmetic is integer
/// nano-tokens (`elapsed_ns × rate_pps`, one frame = 10⁹ nano-tokens),
/// so policing is replay-stable by construction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StormConfig {
    /// Sustained budget, frames per second, per port.
    pub rate_pps: u64,
    /// Bucket depth, frames (the tolerated burst).
    pub burst: u64,
    /// Over-budget drops before the port-class is suppressed for
    /// `hold_down` (sustained violation, not a stray burst).
    pub trip: u32,
    /// Suppression hold-down; an epoch-tagged timer re-enables the
    /// port-class cleanly when it expires.
    pub hold_down: SimDuration,
}

/// Full bridge configuration.
#[derive(Clone, Debug)]
pub struct BridgeConfig {
    /// Software path cost model (Figure 5). Default: the calibrated
    /// 1997 active-bridge preset.
    pub cost: CostModel,
    /// Input service queue capacity (frames waiting for the bridge
    /// program).
    pub input_queue: usize,
    /// STP timers.
    pub stp: StpTimers,
    /// Protocol-transition timers.
    pub transition: TransitionTimers,
    /// Bridge priority for spanning tree (lower wins root election).
    pub priority: u16,
    /// Learning-table entry lifetime.
    pub learn_age: SimDuration,
    /// Fuel budget per VM switchlet invocation.
    pub vm_fuel: u64,
    /// How many distinct stations this bridge should expect to learn
    /// (a topology-derived hint; `0` = unknown). The learning table is
    /// pre-sized from it so metro-scale populations never pay
    /// incremental rehashing on the per-frame learn path.
    pub expected_stations: usize,
    /// Switchlet watchdog threshold: after this many traps or fuel
    /// exhaustions, a VM switchlet is quarantined and the data plane
    /// rolled back to its last-known-good tier (`0` disables the
    /// watchdog).
    pub watchdog_traps: u32,
    /// Hard cap on learning-table entries (`0` = unbounded, the legacy
    /// behaviour). When full, a new source evicts the oldest-refresh
    /// entry on the offending ingress port, or is rejected if that port
    /// holds nothing.
    pub learn_cap: usize,
    /// Per-port learning-table occupancy quota (`0` = no quota). A port
    /// at quota recycles its own oldest entry instead of crowding out
    /// well-behaved ports.
    pub learn_port_quota: usize,
    /// Storm-control budget for broadcast/multicast ingress (`None` =
    /// policing off, the legacy behaviour).
    pub storm_broadcast: Option<StormConfig>,
    /// Storm-control budget for unknown-unicast (flooded) ingress
    /// (`None` = policing off).
    pub storm_unknown: Option<StormConfig>,
    /// Ports with BPDU guard armed: any received BPDU err-disables the
    /// port instead of reaching the STP engine, so an access host cannot
    /// claim root. Empty = guard off everywhere (legacy behaviour).
    pub bpdu_guard: Vec<usize>,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig {
            cost: CostModel::active_bridge_1997(),
            input_queue: 256,
            stp: StpTimers::default(),
            transition: TransitionTimers::default(),
            priority: 0x8000,
            learn_age: SimDuration::from_secs(300),
            vm_fuel: 200_000,
            expected_stations: 0,
            watchdog_traps: 3,
            learn_cap: 0,
            learn_port_quota: 0,
            storm_broadcast: None,
            storm_unknown: None,
            bpdu_guard: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_802_1d() {
        let t = StpTimers::default();
        assert_eq!(t.hello, SimDuration::from_secs(2));
        assert_eq!(t.max_age, SimDuration::from_secs(20));
        assert_eq!(t.forward_delay, SimDuration::from_secs(15));
    }

    #[test]
    fn defenses_default_off() {
        let c = BridgeConfig::default();
        assert_eq!(c.learn_cap, 0);
        assert_eq!(c.learn_port_quota, 0);
        assert!(c.storm_broadcast.is_none());
        assert!(c.storm_unknown.is_none());
        assert!(c.bpdu_guard.is_empty());
    }

    #[test]
    fn transition_windows_match_table1() {
        let t = TransitionTimers::default();
        assert_eq!(t.suppress_window, SimDuration::from_secs(30));
        assert_eq!(t.test_at, SimDuration::from_secs(60));
    }
}
