//! The host modules offered to VM switchlets — the paper's Section 5.2.1
//! module set, thinned.
//!
//! [`host_env`] builds the *signatures* (what is nameable); [`HostEnv`]
//! implements the dispatch. The implementation deliberately contains
//! functions that the signatures do **not** expose (`safeunix.system`,
//! `safeunix.open_file`): they exist behind the dispatcher, but no
//! switchlet can link to them — module thinning "leaves the switchlet
//! with no way of naming the excluded function and thus, no way of
//! accessing it". Tests in this module and the integration suite verify
//! that importing them fails at link time.
//!
//! | module    | paper analogue | contents |
//! |-----------|----------------|----------|
//! | `safestd` | Safestd        | string hashing (tables/ints are VM instructions) |
//! | `safeunix`| Safeunix       | time-of-day only — heavily thinned |
//! | `log`     | Log            | message logging (sink is the simulator trace) |
//! | `func`    | Func           | handler registration glue |
//! | `timer`   | (threads)      | event-driven replacement for blocking threads |
//! | `unixnet` | Unixnet (Fig.4)| port binding + raw frame output, first-bind-wins |
//! | `bridgectl` | "access points" | port suppression, learning flush, counters |
//! | `switchctl` | (control's levers) | switchlet lifecycle inspection/control |

use std::rc::Rc;

use bytes::Bytes;
use ether::MacAddr;
use netsim::{Ctx, PortId, SimDuration};
use switchlet::{Env, FuncVal, HostDispatch, HostModuleSig, HostSlot, Ty, Value, VmError};

use crate::bridge::BridgeCommand;
use crate::plane::{DataPlaneSel, Plane};

/// The frame-handler function type: `(frame, in_port) -> unit`.
pub fn handler_ty() -> Ty {
    Ty::func(vec![Ty::Str, Ty::Int], Ty::Unit)
}

/// The timer-callback type: `(token) -> unit`.
pub fn timer_cb_ty() -> Ty {
    Ty::func(vec![Ty::Int], Ty::Unit)
}

/// Build the thinned host environment every bridge offers.
pub fn host_env() -> Env {
    let mut env = Env::new();
    env.add_module(
        HostModuleSig::new("safestd").func("hash_string", Ty::func(vec![Ty::Str], Ty::Int)),
    );
    env.add_module(
        // Heavily thinned: time only. The implementation behind the
        // dispatcher also knows `system` and `open_file`; they are
        // excluded here, hence unnameable.
        HostModuleSig::new("safeunix").func("gettimeofday", Ty::func(vec![], Ty::Int)),
    );
    env.add_module(HostModuleSig::new("log").func("msg", Ty::func(vec![Ty::Str], Ty::Unit)));
    env.add_module(HostModuleSig::new("func").func(
        "register_handler",
        Ty::func(vec![Ty::Str, handler_ty()], Ty::Unit),
    ));
    env.add_module(HostModuleSig::new("timer").func(
        "set_timeout",
        Ty::func(vec![Ty::Int, Ty::Int, timer_cb_ty()], Ty::Unit),
    ));
    env.add_module(
        HostModuleSig::new("unixnet")
            .func("num_ports", Ty::func(vec![], Ty::Int))
            .func("bind_in", Ty::func(vec![Ty::Int], Ty::named("iport")))
            .func("bind_out", Ty::func(vec![Ty::Int], Ty::named("oport")))
            .func(
                "iport_to_oport",
                Ty::func(vec![Ty::named("iport")], Ty::named("oport")),
            )
            .func(
                "send_pkt_out",
                Ty::func(vec![Ty::named("oport"), Ty::Str], Ty::Int),
            )
            .func("unbind_in", Ty::func(vec![Ty::named("iport")], Ty::Unit))
            .func("unbind_out", Ty::func(vec![Ty::named("oport")], Ty::Unit)),
    );
    env.add_module(
        HostModuleSig::new("bridgectl")
            .func("register_addr", Ty::func(vec![Ty::Str, Ty::Str], Ty::Unit))
            .func(
                "set_port_forward",
                Ty::func(vec![Ty::Int, Ty::Bool], Ty::Unit),
            )
            .func(
                "set_port_learn",
                Ty::func(vec![Ty::Int, Ty::Bool], Ty::Unit),
            )
            .func("flush_learning", Ty::func(vec![], Ty::Unit))
            .func("counter_bump", Ty::func(vec![Ty::Str, Ty::Int], Ty::Unit)),
    );
    env.add_module(
        HostModuleSig::new("switchctl")
            .func("is_running", Ty::func(vec![Ty::Str], Ty::Bool))
            .func("loaded", Ty::func(vec![Ty::Str], Ty::Bool))
            .func("suspend", Ty::func(vec![Ty::Str], Ty::Unit))
            .func("resume", Ty::func(vec![Ty::Str], Ty::Unit))
            .func("stop", Ty::func(vec![Ty::Str], Ty::Unit)),
    );
    env
}

/// The dispatch side, bound to one bridge during one VM invocation.
pub struct HostEnv<'a, 'w> {
    /// Simulator context.
    pub sim: &'a mut Ctx<'w>,
    /// Shared forwarding plane.
    pub plane: &'a mut Plane,
    /// Bridge command queue.
    pub cmds: &'a mut Vec<BridgeCommand>,
    /// Registered VM handlers (`module.key` → callable).
    pub vm_handlers: &'a mut std::collections::HashMap<String, FuncVal>,
    /// Callable → owning module (restores identity in callbacks).
    pub vm_owner: &'a mut std::collections::HashMap<FuncVal, String>,
    /// Bridge station address.
    pub mac: MacAddr,
    /// Bridge name (logs).
    pub bridge_name: &'a str,
    /// The module being initialized ("" during handler callbacks).
    pub module_name: String,
}

fn str_arg(args: &[Value], i: usize) -> String {
    String::from_utf8_lossy(args[i].as_str()).into_owned()
}

/// Take ownership of a string argument without copying when the VM holds
/// the only reference (the common case for freshly built frames).
fn take_bytes(args: &mut [Value], i: usize) -> Vec<u8> {
    match std::mem::replace(&mut args[i], Value::Unit) {
        Value::Str(rc) => Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone()),
        other => panic!("verifier invariant broken: expected str, got {other:?}"),
    }
}

/// The host functions of [`host_env`], identified by slot. The paper's
/// per-frame path pays one array-shaped integer match here — no string
/// comparison, no allocation (this is the PR 4 slot-indexed dispatch).
///
/// Variant order mirrors [`host_env`]'s registration order; the
/// `slot_table_matches_env_names` test pins the mapping to the names.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum HostFn {
    HashString,
    GetTimeOfDay,
    LogMsg,
    RegisterHandler,
    SetTimeout,
    NumPorts,
    BindIn,
    BindOut,
    IportToOport,
    SendPktOut,
    UnbindIn,
    UnbindOut,
    RegisterAddr,
    SetPortForward,
    SetPortLearn,
    FlushLearning,
    CounterBump,
    IsRunning,
    Loaded,
    Suspend,
    Resume,
    Stop,
}

/// Map a resolved [`HostSlot`] to its implementation. Total over the
/// slots [`host_env`] can mint; anything else is a wiring bug.
fn host_fn(slot: HostSlot) -> Option<HostFn> {
    use HostFn::*;
    Some(match (slot.module, slot.item) {
        (0, 0) => HashString,
        (1, 0) => GetTimeOfDay,
        (2, 0) => LogMsg,
        (3, 0) => RegisterHandler,
        (4, 0) => SetTimeout,
        (5, 0) => NumPorts,
        (5, 1) => BindIn,
        (5, 2) => BindOut,
        (5, 3) => IportToOport,
        (5, 4) => SendPktOut,
        (5, 5) => UnbindIn,
        (5, 6) => UnbindOut,
        (6, 0) => RegisterAddr,
        (6, 1) => SetPortForward,
        (6, 2) => SetPortLearn,
        (6, 3) => FlushLearning,
        (6, 4) => CounterBump,
        (7, 0) => IsRunning,
        (7, 1) => Loaded,
        (7, 2) => Suspend,
        (7, 3) => Resume,
        (7, 4) => Stop,
        _ => return None,
    })
}

impl HostDispatch for HostEnv<'_, '_> {
    /// Slot-indexed dispatch: the per-frame path through the host
    /// boundary. `args` is the VM's scratch slice; string arguments are
    /// moved out, not copied, when uniquely owned.
    fn call_slot(
        &mut self,
        env: &Env,
        slot: HostSlot,
        args: &mut [Value],
    ) -> Result<Value, VmError> {
        let Some(f) = host_fn(slot) else {
            let (m, i, _) = env.slot_names(slot);
            return Err(VmError::HostUnavailable(format!("{m}.{i}")));
        };
        self.invoke(f, args)
    }

    /// Name-based path, kept for embedders and tests that address host
    /// functions by name (the slow path the slot table replaces).
    fn call(&mut self, module: &str, item: &str, mut args: Vec<Value>) -> Result<Value, VmError> {
        use HostFn::*;
        let f = match (module, item) {
            ("safestd", "hash_string") => HashString,
            ("safeunix", "gettimeofday") => GetTimeOfDay,
            ("log", "msg") => LogMsg,
            ("func", "register_handler") => RegisterHandler,
            ("timer", "set_timeout") => SetTimeout,
            ("unixnet", "num_ports") => NumPorts,
            ("unixnet", "bind_in") => BindIn,
            ("unixnet", "bind_out") => BindOut,
            ("unixnet", "iport_to_oport") => IportToOport,
            ("unixnet", "send_pkt_out") => SendPktOut,
            ("unixnet", "unbind_in") => UnbindIn,
            ("unixnet", "unbind_out") => UnbindOut,
            ("bridgectl", "register_addr") => RegisterAddr,
            ("bridgectl", "set_port_forward") => SetPortForward,
            ("bridgectl", "set_port_learn") => SetPortLearn,
            ("bridgectl", "flush_learning") => FlushLearning,
            ("bridgectl", "counter_bump") => CounterBump,
            ("switchctl", "is_running") => IsRunning,
            ("switchctl", "loaded") => Loaded,
            ("switchctl", "suspend") => Suspend,
            ("switchctl", "resume") => Resume,
            ("switchctl", "stop") => Stop,
            // `safeunix.system` and `safeunix.open_file` exist here — and
            // are unreachable: the Env never lists them, so no verified
            // module can hold a resolved import for them. Reaching this
            // arm would mean the thinning invariant broke.
            ("safeunix", "system") | ("safeunix", "open_file") => {
                unreachable!("thinned host function reached — name-space security broken")
            }
            _ => return Err(VmError::HostUnavailable(format!("{module}.{item}"))),
        };
        self.invoke(f, &mut args)
    }
}

impl HostEnv<'_, '_> {
    fn invoke(&mut self, f: HostFn, args: &mut [Value]) -> Result<Value, VmError> {
        match f {
            HostFn::HashString => {
                // FNV-1a, stable across runs.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &b in args[0].as_str().iter() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                Ok(Value::Int((h & 0x7FFF_FFFF_FFFF_FFFF) as i64))
            }
            HostFn::GetTimeOfDay => Ok(Value::Int((self.sim.now().as_ns() / 1_000_000) as i64)),
            HostFn::LogMsg => {
                let line = format!(
                    "{}: [{}] {}",
                    self.bridge_name,
                    if self.module_name.is_empty() {
                        "vm"
                    } else {
                        &self.module_name
                    },
                    str_arg(args, 0)
                );
                self.sim.trace(line);
                Ok(Value::Unit)
            }
            HostFn::RegisterHandler => {
                let key = str_arg(args, 0);
                let Value::Func(fv) = args[1] else {
                    return Err(VmError::Host("register_handler expects a function".into()));
                };
                let full = format!("{}.{}", self.module_name, key);
                self.vm_handlers.insert(full, fv);
                self.vm_owner.insert(fv, self.module_name.clone());
                if key == "switching" {
                    // Convention: registering "switching" installs this
                    // handler as the bridge's switching function —
                    // "this switchlet replaces the switching function".
                    self.plane.set_data_plane(DataPlaneSel::Vm(fv));
                }
                Ok(Value::Unit)
            }
            HostFn::SetTimeout => {
                let ms = args[0].as_int().max(0) as u64;
                let token = args[1].as_int();
                let Value::Func(fv) = args[2] else {
                    return Err(VmError::Host("set_timeout expects a function".into()));
                };
                self.vm_owner.insert(fv, self.module_name.clone());
                self.cmds.push(BridgeCommand::VmTimer {
                    callback: fv,
                    after: SimDuration::from_ms(ms),
                    token,
                });
                Ok(Value::Unit)
            }
            HostFn::NumPorts => Ok(Value::Int(self.plane.num_ports() as i64)),
            HostFn::BindIn => {
                let port = args[0].as_int();
                if port < 0 || port as usize >= self.plane.num_ports() {
                    return Err(VmError::Host("No_interface".into()));
                }
                if !self.plane.bind_in(port as usize, &self.module_name) {
                    // The paper's `Already_bound` exception.
                    return Err(VmError::Host("Already_bound".into()));
                }
                Ok(Value::handle("iport", port as u64))
            }
            HostFn::BindOut => {
                let port = args[0].as_int();
                if port < 0 || port as usize >= self.plane.num_ports() {
                    return Err(VmError::Host("No_interface".into()));
                }
                if !self.plane.bind_out(port as usize, &self.module_name) {
                    return Err(VmError::Host("Already_bound".into()));
                }
                Ok(Value::handle("oport", port as u64))
            }
            HostFn::IportToOport => {
                let id = args[0].as_handle("iport");
                Ok(Value::handle("oport", id))
            }
            HostFn::SendPktOut => {
                let id = args[0].as_handle("oport") as usize;
                if id >= self.plane.num_ports() {
                    return Err(VmError::Host("No_interface".into()));
                }
                // Moves the frame bytes out of the VM (no copy when the
                // VM holds the only reference) — the data-plane boundary.
                let bytes = take_bytes(args, 1);
                let len = bytes.len();
                self.sim.send(PortId(id), Bytes::from(bytes));
                Ok(Value::Int(len as i64))
            }
            HostFn::UnbindIn | HostFn::UnbindOut => {
                // Per-port unbind: release everything this module bound on
                // that port index (ownership is per name).
                self.plane.unbind_all(&self.module_name);
                Ok(Value::Unit)
            }
            HostFn::RegisterAddr => {
                let mac_bytes = args[0].as_str();
                let Some(addr) = MacAddr::from_slice(&mac_bytes[..]) else {
                    return Err(VmError::Host("register_addr: need 6 octets".into()));
                };
                let key = str_arg(args, 1);
                let full = format!("vm:{}.{}", self.module_name, key);
                self.plane.register_addr(addr, full);
                Ok(Value::Unit)
            }
            HostFn::SetPortForward => {
                let port = args[0].as_int() as usize;
                if port >= self.plane.num_ports() {
                    return Err(VmError::Host("No_interface".into()));
                }
                self.plane.set_port_forward(port, args[1].as_bool());
                Ok(Value::Unit)
            }
            HostFn::SetPortLearn => {
                let port = args[0].as_int() as usize;
                if port >= self.plane.num_ports() {
                    return Err(VmError::Host("No_interface".into()));
                }
                self.plane.set_port_learn(port, args[1].as_bool());
                Ok(Value::Unit)
            }
            HostFn::FlushLearning => {
                self.plane.learn.flush();
                Ok(Value::Unit)
            }
            HostFn::CounterBump => {
                let key = str_arg(args, 0);
                let n = args[1].as_int().max(0) as u64;
                self.sim.bump(&key, n);
                Ok(Value::Unit)
            }
            HostFn::IsRunning => Ok(Value::Bool(self.plane.is_running(&str_arg(args, 0)))),
            HostFn::Loaded => Ok(Value::Bool(self.plane.is_loaded(&str_arg(args, 0)))),
            HostFn::Suspend => {
                self.cmds.push(BridgeCommand::Suspend(str_arg(args, 0)));
                Ok(Value::Unit)
            }
            HostFn::Resume => {
                self.cmds.push(BridgeCommand::Resume(str_arg(args, 0)));
                Ok(Value::Unit)
            }
            HostFn::Stop => {
                self.cmds.push(BridgeCommand::Stop(str_arg(args, 0)));
                Ok(Value::Unit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_exposes_expected_surface() {
        let env = host_env();
        assert!(env.lookup("log", "msg").is_some());
        assert!(env.lookup("unixnet", "send_pkt_out").is_some());
        assert!(env.lookup("switchctl", "is_running").is_some());
    }

    #[test]
    fn thinned_names_are_absent() {
        let env = host_env();
        assert!(env.lookup("safeunix", "system").is_none());
        assert!(env.lookup("safeunix", "open_file").is_none());
        assert!(env.lookup("unixnet", "set_promiscuous").is_none());
    }

    #[test]
    fn handler_type_is_frame_port_to_unit() {
        let env = host_env();
        let (_, ty) = env.lookup("func", "register_handler").unwrap();
        assert_eq!(*ty, Ty::func(vec![Ty::Str, handler_ty()], Ty::Unit));
    }

    /// The integer slot table is order-coupled to [`host_env`]; this test
    /// pins every `(module, item)` pair to its `HostFn`, so reordering a
    /// registration without updating [`host_fn`] fails loudly.
    #[test]
    fn slot_table_matches_env_names() {
        use HostFn::*;
        let expected: &[(&str, &str, HostFn)] = &[
            ("safestd", "hash_string", HashString),
            ("safeunix", "gettimeofday", GetTimeOfDay),
            ("log", "msg", LogMsg),
            ("func", "register_handler", RegisterHandler),
            ("timer", "set_timeout", SetTimeout),
            ("unixnet", "num_ports", NumPorts),
            ("unixnet", "bind_in", BindIn),
            ("unixnet", "bind_out", BindOut),
            ("unixnet", "iport_to_oport", IportToOport),
            ("unixnet", "send_pkt_out", SendPktOut),
            ("unixnet", "unbind_in", UnbindIn),
            ("unixnet", "unbind_out", UnbindOut),
            ("bridgectl", "register_addr", RegisterAddr),
            ("bridgectl", "set_port_forward", SetPortForward),
            ("bridgectl", "set_port_learn", SetPortLearn),
            ("bridgectl", "flush_learning", FlushLearning),
            ("bridgectl", "counter_bump", CounterBump),
            ("switchctl", "is_running", IsRunning),
            ("switchctl", "loaded", Loaded),
            ("switchctl", "suspend", Suspend),
            ("switchctl", "resume", Resume),
            ("switchctl", "stop", Stop),
        ];
        let env = host_env();
        // Every registered item maps to the HostFn its name promises.
        let mut count = 0;
        for (mi, m) in env.modules().iter().enumerate() {
            for (ii, item) in m.items.iter().enumerate() {
                let slot = HostSlot {
                    module: mi as u16,
                    item: ii as u16,
                };
                let f = host_fn(slot)
                    .unwrap_or_else(|| panic!("no HostFn for {}.{}", m.name, item.name));
                let (em, ei, ef) = expected
                    .iter()
                    .find(|(em, ei, _)| *em == m.name && *ei == item.name)
                    .copied()
                    .unwrap_or_else(|| panic!("unexpected env item {}.{}", m.name, item.name));
                assert_eq!(f, ef, "{em}.{ei} mapped to the wrong HostFn");
                // And the borrowed-key lookup resolves to the same slot.
                let (looked, _) = env.lookup(&m.name, &item.name).unwrap();
                assert_eq!(looked, slot);
                count += 1;
            }
        }
        assert_eq!(count, expected.len(), "slot table drifted from host_env");
    }
}
