//! The host modules offered to VM switchlets — the paper's Section 5.2.1
//! module set, thinned.
//!
//! [`host_env`] builds the *signatures* (what is nameable); [`HostEnv`]
//! implements the dispatch. The implementation deliberately contains
//! functions that the signatures do **not** expose (`safeunix.system`,
//! `safeunix.open_file`): they exist behind the dispatcher, but no
//! switchlet can link to them — module thinning "leaves the switchlet
//! with no way of naming the excluded function and thus, no way of
//! accessing it". Tests in this module and the integration suite verify
//! that importing them fails at link time.
//!
//! | module    | paper analogue | contents |
//! |-----------|----------------|----------|
//! | `safestd` | Safestd        | string hashing (tables/ints are VM instructions) |
//! | `safeunix`| Safeunix       | time-of-day only — heavily thinned |
//! | `log`     | Log            | message logging (sink is the simulator trace) |
//! | `func`    | Func           | handler registration glue |
//! | `timer`   | (threads)      | event-driven replacement for blocking threads |
//! | `unixnet` | Unixnet (Fig.4)| port binding + raw frame output, first-bind-wins |
//! | `bridgectl` | "access points" | port suppression, learning flush, counters |
//! | `switchctl` | (control's levers) | switchlet lifecycle inspection/control |

use bytes::Bytes;
use ether::MacAddr;
use netsim::{Ctx, PortId, SimDuration};
use switchlet::{Env, FuncVal, HostDispatch, HostModuleSig, Ty, Value, VmError};

use crate::bridge::BridgeCommand;
use crate::plane::{DataPlaneSel, Plane};

/// The frame-handler function type: `(frame, in_port) -> unit`.
pub fn handler_ty() -> Ty {
    Ty::func(vec![Ty::Str, Ty::Int], Ty::Unit)
}

/// The timer-callback type: `(token) -> unit`.
pub fn timer_cb_ty() -> Ty {
    Ty::func(vec![Ty::Int], Ty::Unit)
}

/// Build the thinned host environment every bridge offers.
pub fn host_env() -> Env {
    let mut env = Env::new();
    env.add_module(
        HostModuleSig::new("safestd").func("hash_string", Ty::func(vec![Ty::Str], Ty::Int)),
    );
    env.add_module(
        // Heavily thinned: time only. The implementation behind the
        // dispatcher also knows `system` and `open_file`; they are
        // excluded here, hence unnameable.
        HostModuleSig::new("safeunix").func("gettimeofday", Ty::func(vec![], Ty::Int)),
    );
    env.add_module(HostModuleSig::new("log").func("msg", Ty::func(vec![Ty::Str], Ty::Unit)));
    env.add_module(HostModuleSig::new("func").func(
        "register_handler",
        Ty::func(vec![Ty::Str, handler_ty()], Ty::Unit),
    ));
    env.add_module(HostModuleSig::new("timer").func(
        "set_timeout",
        Ty::func(vec![Ty::Int, Ty::Int, timer_cb_ty()], Ty::Unit),
    ));
    env.add_module(
        HostModuleSig::new("unixnet")
            .func("num_ports", Ty::func(vec![], Ty::Int))
            .func("bind_in", Ty::func(vec![Ty::Int], Ty::named("iport")))
            .func("bind_out", Ty::func(vec![Ty::Int], Ty::named("oport")))
            .func(
                "iport_to_oport",
                Ty::func(vec![Ty::named("iport")], Ty::named("oport")),
            )
            .func(
                "send_pkt_out",
                Ty::func(vec![Ty::named("oport"), Ty::Str], Ty::Int),
            )
            .func("unbind_in", Ty::func(vec![Ty::named("iport")], Ty::Unit))
            .func("unbind_out", Ty::func(vec![Ty::named("oport")], Ty::Unit)),
    );
    env.add_module(
        HostModuleSig::new("bridgectl")
            .func("register_addr", Ty::func(vec![Ty::Str, Ty::Str], Ty::Unit))
            .func(
                "set_port_forward",
                Ty::func(vec![Ty::Int, Ty::Bool], Ty::Unit),
            )
            .func(
                "set_port_learn",
                Ty::func(vec![Ty::Int, Ty::Bool], Ty::Unit),
            )
            .func("flush_learning", Ty::func(vec![], Ty::Unit))
            .func("counter_bump", Ty::func(vec![Ty::Str, Ty::Int], Ty::Unit)),
    );
    env.add_module(
        HostModuleSig::new("switchctl")
            .func("is_running", Ty::func(vec![Ty::Str], Ty::Bool))
            .func("loaded", Ty::func(vec![Ty::Str], Ty::Bool))
            .func("suspend", Ty::func(vec![Ty::Str], Ty::Unit))
            .func("resume", Ty::func(vec![Ty::Str], Ty::Unit))
            .func("stop", Ty::func(vec![Ty::Str], Ty::Unit)),
    );
    env
}

/// The dispatch side, bound to one bridge during one VM invocation.
pub struct HostEnv<'a, 'w> {
    /// Simulator context.
    pub sim: &'a mut Ctx<'w>,
    /// Shared forwarding plane.
    pub plane: &'a mut Plane,
    /// Bridge command queue.
    pub cmds: &'a mut Vec<BridgeCommand>,
    /// Registered VM handlers (`module.key` → callable).
    pub vm_handlers: &'a mut std::collections::HashMap<String, FuncVal>,
    /// Callable → owning module (restores identity in callbacks).
    pub vm_owner: &'a mut std::collections::HashMap<FuncVal, String>,
    /// Bridge station address.
    pub mac: MacAddr,
    /// Bridge name (logs).
    pub bridge_name: &'a str,
    /// The module being initialized ("" during handler callbacks).
    pub module_name: String,
}

fn str_arg(args: &[Value], i: usize) -> String {
    String::from_utf8_lossy(args[i].as_str()).into_owned()
}

impl HostDispatch for HostEnv<'_, '_> {
    fn call(&mut self, module: &str, item: &str, args: Vec<Value>) -> Result<Value, VmError> {
        match (module, item) {
            ("safestd", "hash_string") => {
                // FNV-1a, stable across runs.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &b in args[0].as_str().iter() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                Ok(Value::Int((h & 0x7FFF_FFFF_FFFF_FFFF) as i64))
            }
            ("safeunix", "gettimeofday") => {
                Ok(Value::Int((self.sim.now().as_ns() / 1_000_000) as i64))
            }
            ("log", "msg") => {
                let line = format!(
                    "{}: [{}] {}",
                    self.bridge_name,
                    if self.module_name.is_empty() {
                        "vm"
                    } else {
                        &self.module_name
                    },
                    str_arg(&args, 0)
                );
                self.sim.trace(line);
                Ok(Value::Unit)
            }
            ("func", "register_handler") => {
                let key = str_arg(&args, 0);
                let Value::Func(fv) = args[1] else {
                    return Err(VmError::Host("register_handler expects a function".into()));
                };
                let full = format!("{}.{}", self.module_name, key);
                self.vm_handlers.insert(full, fv);
                self.vm_owner.insert(fv, self.module_name.clone());
                if key == "switching" {
                    // Convention: registering "switching" installs this
                    // handler as the bridge's switching function —
                    // "this switchlet replaces the switching function".
                    self.plane.data_plane = DataPlaneSel::Vm(fv);
                }
                Ok(Value::Unit)
            }
            ("timer", "set_timeout") => {
                let ms = args[0].as_int().max(0) as u64;
                let token = args[1].as_int();
                let Value::Func(fv) = args[2] else {
                    return Err(VmError::Host("set_timeout expects a function".into()));
                };
                self.vm_owner.insert(fv, self.module_name.clone());
                self.cmds.push(BridgeCommand::VmTimer {
                    callback: fv,
                    after: SimDuration::from_ms(ms),
                    token,
                });
                Ok(Value::Unit)
            }
            ("unixnet", "num_ports") => Ok(Value::Int(self.plane.flags.len() as i64)),
            ("unixnet", "bind_in") => {
                let port = args[0].as_int();
                if port < 0 || port as usize >= self.plane.flags.len() {
                    return Err(VmError::Host("No_interface".into()));
                }
                if !self.plane.bind_in(port as usize, &self.module_name) {
                    // The paper's `Already_bound` exception.
                    return Err(VmError::Host("Already_bound".into()));
                }
                Ok(Value::handle("iport", port as u64))
            }
            ("unixnet", "bind_out") => {
                let port = args[0].as_int();
                if port < 0 || port as usize >= self.plane.flags.len() {
                    return Err(VmError::Host("No_interface".into()));
                }
                if !self.plane.bind_out(port as usize, &self.module_name) {
                    return Err(VmError::Host("Already_bound".into()));
                }
                Ok(Value::handle("oport", port as u64))
            }
            ("unixnet", "iport_to_oport") => {
                let id = args[0].as_handle("iport");
                Ok(Value::handle("oport", id))
            }
            ("unixnet", "send_pkt_out") => {
                let id = args[0].as_handle("oport") as usize;
                let bytes = args[1].as_str().as_ref().clone();
                if id >= self.plane.flags.len() {
                    return Err(VmError::Host("No_interface".into()));
                }
                let len = bytes.len();
                self.sim.send(PortId(id), Bytes::from(bytes));
                Ok(Value::Int(len as i64))
            }
            ("unixnet", "unbind_in") | ("unixnet", "unbind_out") => {
                // Per-port unbind: release everything this module bound on
                // that port index (ownership is per name).
                self.plane.unbind_all(&self.module_name);
                Ok(Value::Unit)
            }
            ("bridgectl", "register_addr") => {
                let mac_bytes = args[0].as_str();
                let Some(addr) = MacAddr::from_slice(&mac_bytes[..]) else {
                    return Err(VmError::Host("register_addr: need 6 octets".into()));
                };
                let key = str_arg(&args, 1);
                let full = format!("vm:{}.{}", self.module_name, key);
                self.plane.register_addr(addr, full);
                Ok(Value::Unit)
            }
            ("bridgectl", "set_port_forward") => {
                let port = args[0].as_int() as usize;
                if port >= self.plane.flags.len() {
                    return Err(VmError::Host("No_interface".into()));
                }
                self.plane.flags[port].forward = args[1].as_bool();
                Ok(Value::Unit)
            }
            ("bridgectl", "set_port_learn") => {
                let port = args[0].as_int() as usize;
                if port >= self.plane.flags.len() {
                    return Err(VmError::Host("No_interface".into()));
                }
                self.plane.flags[port].learn = args[1].as_bool();
                Ok(Value::Unit)
            }
            ("bridgectl", "flush_learning") => {
                self.plane.learn.flush();
                Ok(Value::Unit)
            }
            ("bridgectl", "counter_bump") => {
                let key = str_arg(&args, 0);
                let n = args[1].as_int().max(0) as u64;
                self.sim.bump(&key, n);
                Ok(Value::Unit)
            }
            ("switchctl", "is_running") => {
                Ok(Value::Bool(self.plane.is_running(&str_arg(&args, 0))))
            }
            ("switchctl", "loaded") => Ok(Value::Bool(self.plane.is_loaded(&str_arg(&args, 0)))),
            ("switchctl", "suspend") => {
                self.cmds.push(BridgeCommand::Suspend(str_arg(&args, 0)));
                Ok(Value::Unit)
            }
            ("switchctl", "resume") => {
                self.cmds.push(BridgeCommand::Resume(str_arg(&args, 0)));
                Ok(Value::Unit)
            }
            ("switchctl", "stop") => {
                self.cmds.push(BridgeCommand::Stop(str_arg(&args, 0)));
                Ok(Value::Unit)
            }
            // `safeunix.system` and `safeunix.open_file` exist here — and
            // are unreachable: the Env never lists them, so no verified
            // module can hold a resolved import for them. Reaching this
            // arm would mean the thinning invariant broke.
            ("safeunix", "system") | ("safeunix", "open_file") => {
                unreachable!("thinned host function reached — name-space security broken")
            }
            _ => Err(VmError::HostUnavailable(format!("{module}.{item}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_exposes_expected_surface() {
        let env = host_env();
        assert!(env.lookup("log", "msg").is_some());
        assert!(env.lookup("unixnet", "send_pkt_out").is_some());
        assert!(env.lookup("switchctl", "is_running").is_some());
    }

    #[test]
    fn thinned_names_are_absent() {
        let env = host_env();
        assert!(env.lookup("safeunix", "system").is_none());
        assert!(env.lookup("safeunix", "open_file").is_none());
        assert!(env.lookup("unixnet", "set_promiscuous").is_none());
    }

    #[test]
    fn handler_type_is_frame_port_to_unit() {
        let env = host_env();
        let (_, ty) = env.lookup("func", "register_handler").unwrap();
        assert_eq!(*ty, Ty::func(vec![Ty::Str, handler_ty()], Ty::Unit));
    }
}
