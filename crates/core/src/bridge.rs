//! The Active Bridge node.
//!
//! Implements the paper's Figure 5 pipeline on top of `netsim`: frames
//! arrive on promiscuous ports, pass through a single-server input queue
//! whose service time comes from the calibrated [`netsim::CostModel`]
//! (steps 2–6 of the seven-step path), and are then demultiplexed —
//! address-registered handlers first (spanning-tree groups, the loader's
//! own station address), then the installed *switching function* (the
//! dumb/learning switchlet, native or VM).
//!
//! Switchlets are managed exactly as the paper describes: loaded (from
//! "disk" at boot, or over the network through the TFTP loader), started,
//! suspended, resumed, and stopped; the control switchlet drives those
//! transitions through `switchctl` commands, which are queued during
//! dispatch and applied when the switchlet returns (a reentrancy
//! discipline the single-address-space Caml prototype got from its
//! cooperative threads).

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use ether::{EtherType, Frame, MacAddr};
use netsim::{
    Ctx, FrameBuf, Node, Offer, PortId, ServiceQueue, SimDuration, TimerHandle, TimerToken,
};
use switchlet::{ExecConfig, FuncVal, Module, Namespace, Value, VmScratch};

use crate::config::BridgeConfig;
use crate::hostmods;
use crate::plane::{DataPlaneSel, Plane, SwitchletStatus};

/// Timer token kinds (top byte of the `u64`). Bits 48–55 carry the
/// bridge's crash epoch: a timer armed before a crash refers to state
/// that died with the old epoch, so `on_timer` drops any token whose
/// epoch disagrees with the current one.
const KIND_SERVICE: u64 = 0;
const KIND_SWITCHLET: u64 = 1;
const KIND_VM_TIMER: u64 = 2;
const KIND_STORM: u64 = 3;

/// Storm-control traffic classes (index into the per-port bucket pair).
const STORM_BROADCAST: usize = 0;
const STORM_UNKNOWN: usize = 1;

/// One admitted frame costs 10⁹ nano-tokens, so bucket refill
/// (`elapsed_ns × rate_pps`) stays in integer arithmetic.
const NANO_PER_FRAME: u64 = 1_000_000_000;

fn service_token(epoch: u8) -> TimerToken {
    TimerToken(KIND_SERVICE << 56 | (epoch as u64) << 48)
}

fn switchlet_token(epoch: u8, slot: usize, user: u32) -> TimerToken {
    debug_assert!(slot <= 0xFFFF, "switchlet slot overflows its token bits");
    TimerToken(KIND_SWITCHLET << 56 | (epoch as u64) << 48 | (slot as u64) << 32 | user as u64)
}

fn vm_timer_token(epoch: u8, idx: usize) -> TimerToken {
    TimerToken(KIND_VM_TIMER << 56 | (epoch as u64) << 48 | idx as u64)
}

fn storm_token(epoch: u8, port: usize, class: usize) -> TimerToken {
    debug_assert!(port <= 0xFFFF, "storm port overflows its token bits");
    TimerToken(KIND_STORM << 56 | (epoch as u64) << 48 | (class as u64) << 16 | port as u64)
}

/// Runtime state of one storm-control token bucket (one per armed
/// port-class). Volatile: dies with a crash like the rest of the plane.
#[derive(Copy, Clone)]
struct StormBucket {
    /// Nano-tokens remaining (one admitted frame spends [`NANO_PER_FRAME`]).
    tokens_nano: u64,
    /// Last refill instant.
    last: netsim::SimTime,
    /// Consecutive over-budget drops since the last admitted frame; at
    /// the configured trip count the port-class is suppressed.
    strikes: u32,
    /// Suppressed until the hold-down timer releases it.
    suppressed: bool,
}

/// A frame on the bridge's data path: the parsed Ethernet view together
/// with the refcounted buffer it was parsed from. Accessors come from
/// [`Frame`] via `Deref`; [`DataFrame::buf`] exposes the shared buffer so
/// forwarding a frame is a refcount bump, never a copy (the paper's
/// bridges must not modify frames, so sharing is always safe).
pub struct DataFrame<'a> {
    buf: &'a FrameBuf,
    view: Frame<'a>,
}

impl<'a> DataFrame<'a> {
    /// Validate and wrap a received buffer.
    pub fn parse(buf: &'a FrameBuf) -> Result<DataFrame<'a>, ether::FrameError> {
        Ok(DataFrame {
            buf,
            view: Frame::parse(buf)?,
        })
    }

    /// The refcounted frame buffer (clone it to forward zero-copy).
    pub fn buf(&self) -> &'a FrameBuf {
        self.buf
    }

    /// A shared handle to the frame contents (refcount bump).
    pub fn share(&self) -> FrameBuf {
        self.buf.clone()
    }

    /// The parsed Ethernet view.
    pub fn view(&self) -> &Frame<'a> {
        &self.view
    }
}

impl<'a> std::ops::Deref for DataFrame<'a> {
    type Target = Frame<'a>;
    fn deref(&self) -> &Frame<'a> {
        &self.view
    }
}

/// Commands a switchlet may queue against the bridge (applied after the
/// switchlet returns).
#[derive(Debug)]
pub enum BridgeCommand {
    /// Suspend a switchlet by name.
    Suspend(String),
    /// Resume a suspended switchlet.
    Resume(String),
    /// Halt a switchlet permanently.
    Stop(String),
    /// Load a switchlet image (native or VM) as if it arrived from the
    /// network.
    LoadImage(Vec<u8>),
    /// Arm a timer for a VM callback.
    VmTimer {
        /// Callback to invoke.
        callback: FuncVal,
        /// Delay.
        after: SimDuration,
        /// Token passed to the callback.
        token: i64,
    },
}

/// The services a native switchlet sees — ports, timers, the shared
/// plane, logging, and `switchctl`.
pub struct BridgeCtx<'a, 'w> {
    /// The underlying simulator context.
    pub sim: &'a mut Ctx<'w>,
    /// The shared forwarding plane (the "access points").
    pub plane: &'a mut Plane,
    /// Bridge configuration.
    pub cfg: &'a BridgeConfig,
    /// The bridge's station address.
    pub mac: MacAddr,
    /// The bridge's loader IP address.
    pub ip: Ipv4Addr,
    /// The bridge's name (for logs).
    pub bridge_name: &'a str,
    slot: usize,
    epoch: u8,
    cmds: &'a mut Vec<BridgeCommand>,
}

impl<'a, 'w> BridgeCtx<'a, 'w> {
    /// Current simulated time.
    pub fn now(&self) -> netsim::SimTime {
        self.sim.now()
    }

    /// Number of bridge ports.
    pub fn num_ports(&self) -> usize {
        self.plane.num_ports()
    }

    /// Transmit a frame out of `port`. Accepts a [`FrameBuf`] (or
    /// anything convertible); forwarding a received frame via
    /// [`DataFrame::share`] is zero-copy.
    pub fn send_frame(&mut self, port: PortId, frame: impl Into<FrameBuf>) {
        self.sim.send(port, frame);
    }

    /// Schedule a timer for this switchlet; `user` comes back in
    /// `on_timer`.
    pub fn schedule(&mut self, after: SimDuration, user: u32) -> TimerHandle {
        let slot = self.slot;
        self.sim
            .schedule(after, switchlet_token(self.epoch, slot, user))
    }

    /// Cancel a previously scheduled timer.
    pub fn cancel(&mut self, handle: TimerHandle) {
        self.sim.cancel(handle);
    }

    /// Append a log line attributed to this bridge.
    pub fn log(&mut self, msg: impl AsRef<str>) {
        let line = format!("{}: {}", self.bridge_name, msg.as_ref());
        self.sim.trace(line);
    }

    /// Queue a `switchctl` command.
    pub fn command(&mut self, cmd: BridgeCommand) {
        self.cmds.push(cmd);
    }
}

/// A native switchlet: the Rust-implemented counterpart of a Caml
/// switchlet, loaded through the same image format, digest checks and
/// lifecycle (see DESIGN.md §1 for the substitution rationale).
pub trait NativeSwitchlet: Any {
    /// The switchlet's unit name.
    fn name(&self) -> &'static str;
    /// Evaluated at load time (the "registration" forms).
    fn on_install(&mut self, _bc: &mut BridgeCtx<'_, '_>) {}
    /// The switchlet was suspended by `switchctl`.
    fn on_suspend(&mut self, _bc: &mut BridgeCtx<'_, '_>) {}
    /// The switchlet was resumed.
    fn on_resume(&mut self, _bc: &mut BridgeCtx<'_, '_>) {}
    /// A frame whose destination address this switchlet registered for.
    fn on_registered_frame(
        &mut self,
        _bc: &mut BridgeCtx<'_, '_>,
        _port: PortId,
        _frame: &DataFrame<'_>,
    ) {
    }
    /// Invoked when this switchlet is the installed switching function.
    fn switch_frame(&mut self, _bc: &mut BridgeCtx<'_, '_>, _port: PortId, _frame: &DataFrame<'_>) {
    }
    /// A timer scheduled via [`BridgeCtx::schedule`] fired.
    fn on_timer(&mut self, _bc: &mut BridgeCtx<'_, '_>, _user: u32) {}
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Parameters handed to a native switchlet factory.
pub struct NativeInit {
    /// Bridge configuration.
    pub cfg: BridgeConfig,
    /// Bridge station address.
    pub mac: MacAddr,
    /// Port count.
    pub n_ports: usize,
}

/// Creates a native switchlet instance.
pub type NativeFactory = Box<dyn Fn(&NativeInit) -> Box<dyn NativeSwitchlet>>;

enum SwitchletImpl {
    Native(Box<dyn NativeSwitchlet>),
    /// A VM module; its handlers live in `vm_handlers`.
    Vm,
}

/// Which `NativeSwitchlet` entry point a dispatch invokes.
#[derive(Copy, Clone)]
enum DispatchEntry {
    /// `on_registered_frame` (address-registered handlers).
    Registered,
    /// `switch_frame` (the installed switching function).
    Switch,
}

/// A resolved frame-dispatch target (plain indices/values, no borrowed or
/// cloned names, so resolution can happen under an immutable borrow and
/// dispatch under the mutable one).
#[derive(Copy, Clone)]
enum HandlerTarget {
    /// Loaded native switchlet, by slot index.
    Native(usize),
    /// VM handler function.
    Vm(FuncVal),
    /// No runnable handler.
    None,
}

struct Slot {
    name: String,
    imp: Option<SwitchletImpl>,
}

/// The Active Bridge node.
pub struct BridgeNode {
    name: String,
    mac: MacAddr,
    ip: Ipv4Addr,
    cfg: BridgeConfig,
    service: ServiceQueue<(PortId, FrameBuf)>,
    plane: Plane,
    slots: Vec<Slot>,
    by_name: HashMap<String, usize>,
    ns: Namespace,
    vm_handlers: HashMap<String, FuncVal>,
    vm_owner: HashMap<FuncVal, String>,
    vm_timers: Vec<(FuncVal, i64)>,
    factories: HashMap<String, NativeFactory>,
    boot_images: Vec<Vec<u8>>,
    cmds: Vec<BridgeCommand>,
    /// Cumulative VM stats on this node.
    pub vm_instructions: u64,
    ports_known: bool,
    /// Reusable VM stack/locals arena: steady-state switchlet execution
    /// allocates nothing.
    vm_scratch: VmScratch,
    /// Memoized data-plane dispatch target, keyed by the plane's decision
    /// generation — the per-frame name lookups (`by_name` + status) run
    /// only when something that could change the answer happened.
    plane_target: Option<(u64, HandlerTarget)>,
    /// Crash epoch, stamped into every timer token so timers armed before
    /// a crash die with the state they referred to.
    epoch: u8,
    /// Watchdog: traps/fuel exhaustions per VM module since boot.
    trap_counts: HashMap<String, u32>,
    /// Modules the watchdog quarantined (never re-dispatched this epoch).
    quarantined: HashSet<String>,
    /// Storm-control buckets, `[broadcast, unknown-unicast]` per port,
    /// lazily materialized at first policed arrival. Volatile.
    storm: Vec<[Option<StormBucket>; 2]>,
}

impl BridgeNode {
    /// Create a bridge. `n_ports` must match the number of segments the
    /// scenario attaches it to.
    pub fn new(
        name: impl Into<String>,
        mac: MacAddr,
        ip: Ipv4Addr,
        n_ports: usize,
        cfg: BridgeConfig,
    ) -> BridgeNode {
        let mut plane = Plane::new(n_ports, cfg.learn_age);
        plane.learn.reserve(cfg.expected_stations);
        plane.learn.set_bounds(cfg.learn_cap, cfg.learn_port_quota);
        let input_queue = cfg.input_queue;
        BridgeNode {
            name: name.into(),
            mac,
            ip,
            cfg,
            service: ServiceQueue::new(input_queue),
            plane,
            slots: Vec::new(),
            by_name: HashMap::new(),
            ns: Namespace::new(hostmods::host_env()),
            vm_handlers: HashMap::new(),
            vm_owner: HashMap::new(),
            vm_timers: Vec::new(),
            factories: crate::switchlets::default_factories(),
            boot_images: Vec::new(),
            cmds: Vec::new(),
            vm_instructions: 0,
            ports_known: false,
            vm_scratch: VmScratch::new(),
            plane_target: None,
            epoch: 0,
            trap_counts: HashMap::new(),
            quarantined: HashSet::new(),
            storm: Vec::new(),
        }
    }

    /// Queue a switchlet image for the boot loader ("the initial loader
    /// can only load switchlets from disk"). Loaded in order at start.
    pub fn boot_load(&mut self, image: Vec<u8>) {
        self.boot_images.push(image);
    }

    /// Convenience: boot-load a native switchlet by name (wraps it in an
    /// empty carrier module).
    pub fn boot_load_native(&mut self, name: &str) {
        let module = switchlet::ModuleBuilder::new(name).build();
        self.boot_images.push(module.encode());
    }

    /// The bridge's station address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// The bridge's loader IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Forwarding-plane access (for tests and experiment harnesses).
    pub fn plane(&self) -> &Plane {
        &self.plane
    }

    /// Mutable plane access (experiment setup).
    pub fn plane_mut(&mut self) -> &mut Plane {
        &mut self.plane
    }

    /// Register an additional native factory (e.g. defect-injected
    /// variants for the fallback experiment).
    pub fn register_factory(&mut self, name: &str, factory: NativeFactory) {
        self.factories.insert(name.to_owned(), factory);
    }

    /// Arm BPDU guard on `ports`. Guard ports differ per bridge even when
    /// the rest of the config is shared, so scenarios call this after
    /// construction; it must run before the world starts (switchlets
    /// snapshot the config when they install at boot).
    pub fn set_bpdu_guard(&mut self, ports: Vec<usize>) {
        self.cfg.bpdu_guard = ports;
    }

    /// The administrative interface: apply a `switchctl` command from
    /// outside the node (the paper: "Programming can be accomplished
    /// out-of-band, through an administrative interface, or in-band").
    /// Call through [`netsim::World::with_ctx`].
    pub fn administer(&mut self, ctx: &mut Ctx<'_>, cmd: BridgeCommand) {
        self.cmds.push(cmd);
        self.apply_cmds(ctx);
    }

    /// Inspect a loaded native switchlet by concrete type.
    pub fn switchlet<S: NativeSwitchlet>(&self, name: &str) -> Option<&S> {
        let idx = *self.by_name.get(name)?;
        match self.slots[idx].imp.as_ref()? {
            SwitchletImpl::Native(b) => b.as_any().downcast_ref::<S>(),
            SwitchletImpl::Vm => None,
        }
    }

    /// Status of a switchlet.
    pub fn switchlet_status(&self, name: &str) -> Option<SwitchletStatus> {
        self.plane.status_of(name)
    }

    /// Start accumulating per-function VM hot counters (call count and
    /// inclusive fuel) on this bridge — the JIT-tier promotion signal.
    /// Idempotent; profiling never changes results, fuel accounting or
    /// `ExecStats`.
    pub fn enable_vm_profile(&mut self) {
        self.vm_scratch.enable_profile();
    }

    /// The accumulated hot-function profile as
    /// `(module, function, counters)` lines in deterministic
    /// `(instance, func)` order. Empty when profiling was never enabled.
    pub fn hot_functions(&self) -> Vec<(String, String, switchlet::FuncHotCounters)> {
        let Some(profile) = self.vm_scratch.profile() else {
            return Vec::new();
        };
        profile
            .iter()
            .map(|(instance, func, c)| {
                let module = &self.ns.instance(instance).module;
                let fname = module
                    .functions
                    .get(func as usize)
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| format!("fn{func}"));
                (module.name.clone(), fname, c)
            })
            .collect()
    }

    // ---------------------------------------------------------- dispatch

    fn with_slot(
        &mut self,
        ctx: &mut Ctx<'_>,
        idx: usize,
        f: impl FnOnce(&mut dyn NativeSwitchlet, &mut BridgeCtx<'_, '_>),
    ) {
        let Some(imp) = self.slots[idx].imp.take() else {
            return; // re-entered (cannot happen with queued commands)
        };
        match imp {
            SwitchletImpl::Native(mut native) => {
                {
                    let mut bc = BridgeCtx {
                        sim: ctx,
                        plane: &mut self.plane,
                        cfg: &self.cfg,
                        mac: self.mac,
                        ip: self.ip,
                        bridge_name: &self.name,
                        slot: idx,
                        epoch: self.epoch,
                        cmds: &mut self.cmds,
                    };
                    f(native.as_mut(), &mut bc);
                }
                self.slots[idx].imp = Some(SwitchletImpl::Native(native));
            }
            SwitchletImpl::Vm => {
                self.slots[idx].imp = Some(SwitchletImpl::Vm);
            }
        }
    }

    fn call_vm(&mut self, ctx: &mut Ctx<'_>, target: FuncVal, args: Vec<Value>) {
        let exec = ExecConfig {
            fuel: self.cfg.vm_fuel,
            max_depth: 64,
        };
        let owner = self.vm_owner.get(&target).cloned().unwrap_or_default();
        let owner_for_watchdog = owner.clone();
        ctx.probe_exec_begin();
        let mut env = hostmods::HostEnv {
            sim: ctx,
            plane: &mut self.plane,
            cmds: &mut self.cmds,
            vm_handlers: &mut self.vm_handlers,
            vm_owner: &mut self.vm_owner,
            mac: self.mac,
            bridge_name: &self.name,
            module_name: owner,
        };
        match switchlet::call_scratch(
            &self.ns,
            &mut env,
            target,
            args,
            &exec,
            &mut self.vm_scratch,
        ) {
            Ok((_, stats)) => {
                ctx.probe_exec_end(stats.instructions, stats.host_calls);
                self.vm_instructions += stats.instructions;
                self.plane.stats.vm_instructions += stats.instructions;
            }
            Err(e) => {
                // Contained: the switchlet invocation failed, the bridge
                // carries on (the paper's "protect itself from some
                // algorithmic failures").
                ctx.probe_exec_end(0, 0);
                let name = self.name.clone();
                ctx.trace(format!("{name}: vm switchlet trapped: {e}"));
                ctx.bump("bridge.vm_traps", 1);
                self.watchdog_trap(ctx, owner_for_watchdog);
            }
        }
    }

    // ----------------------------------------------------------- watchdog

    /// Record one trap against a VM module; at the configured threshold
    /// the watchdog quarantines it (see [`BridgeNode::quarantine`]).
    fn watchdog_trap(&mut self, ctx: &mut Ctx<'_>, module: String) {
        let threshold = self.cfg.watchdog_traps;
        if threshold == 0 || module.is_empty() || self.quarantined.contains(&module) {
            return;
        }
        let count = self.trap_counts.entry(module.clone()).or_insert(0);
        *count += 1;
        if *count >= threshold {
            self.quarantine(ctx, &module);
        }
    }

    /// Quarantine a repeatedly-trapping module: stop it, release its port
    /// bindings and handlers, and — if it held the data plane — roll back
    /// to the last-known-good switching function, or to dumb flood
    /// forwarding as the final degraded tier, so traffic keeps flowing.
    fn quarantine(&mut self, ctx: &mut Ctx<'_>, module: &str) {
        self.quarantined.insert(module.to_owned());
        self.plane
            .set_status(module.to_owned(), SwitchletStatus::Stopped);
        self.plane.unbind_all(module);
        // Drop every handler the module registered: a quarantined
        // switchlet must never run again, on any path.
        let doomed: Vec<FuncVal> = self
            .vm_owner
            .iter()
            .filter(|&(_, owner)| owner == module)
            .map(|(&fv, _)| fv)
            .collect();
        self.vm_handlers.retain(|_, fv| !doomed.contains(fv));
        for fv in &doomed {
            self.vm_owner.remove(fv);
        }
        if self.sel_is_quarantined(&self.plane.data_plane().clone()) {
            // `None` (the bare-loader state) is not a known-good plane:
            // rolling back to it would blackhole traffic.
            let rollback = self
                .plane
                .prev_data_plane()
                .cloned()
                .filter(|sel| *sel != DataPlaneSel::None && !self.sel_is_quarantined(sel));
            let n = self.name.clone();
            match rollback {
                Some(sel) => {
                    ctx.trace(format!("{n}: watchdog rollback to last-known-good plane"));
                    self.plane.set_data_plane(sel);
                }
                None => {
                    ctx.trace(format!("{n}: watchdog fallback to dumb flood forwarding"));
                    use crate::switchlets::dumb;
                    if self.by_name.contains_key(dumb::NAME) {
                        // Already loaded (install_native would no-op):
                        // revive and reinstall it directly.
                        self.plane.set_status(dumb::NAME, SwitchletStatus::Running);
                        self.plane
                            .set_data_plane(DataPlaneSel::Native(dumb::NAME.into()));
                    } else {
                        self.install_native(ctx, dumb::NAME);
                    }
                }
            }
        }
        self.plane_target = None;
        ctx.bump("bridge.quarantines", 1);
        ctx.probe_quarantine();
        let n = self.name.clone();
        ctx.trace(format!("{n}: watchdog quarantined {module}"));
    }

    /// Does this data-plane selection belong to a quarantined module? A
    /// VM handler whose owner is unknown (already evicted) counts as
    /// quarantined — it must not be rolled back to.
    fn sel_is_quarantined(&self, sel: &DataPlaneSel) -> bool {
        match sel {
            DataPlaneSel::None => false,
            DataPlaneSel::Native(name) => self.quarantined.contains(name),
            DataPlaneSel::Vm(fv) => self
                .vm_owner
                .get(fv)
                .is_none_or(|owner| self.quarantined.contains(owner)),
        }
    }

    /// Has the watchdog quarantined this module?
    pub fn is_quarantined(&self, module: &str) -> bool {
        self.quarantined.contains(module)
    }

    /// Resolve a handler name to an invocable target without holding (or
    /// cloning) any borrowed strings — the hot path must not allocate.
    fn resolve_handler(&self, name: &str) -> HandlerTarget {
        if let Some(key) = name.strip_prefix("vm:") {
            return match self.vm_handlers.get(key) {
                Some(&fv) => HandlerTarget::Vm(fv),
                None => HandlerTarget::None,
            };
        }
        match self.by_name.get(name) {
            Some(&idx) if self.plane.is_running(name) => HandlerTarget::Native(idx),
            _ => HandlerTarget::None,
        }
    }

    /// Invoke a resolved target with one frame: VM handlers get the frame
    /// copied into a `Value::Str` (the VM boundary is the data plane's
    /// one deliberate copy), native switchlets get the already-parsed
    /// [`DataFrame`] view (frames are parsed once per arrival, in
    /// [`BridgeNode::process_frame`]). `entry` selects which trait method
    /// the native path calls.
    fn dispatch_target(
        &mut self,
        ctx: &mut Ctx<'_>,
        target: HandlerTarget,
        port: PortId,
        frame: &DataFrame<'_>,
        entry: DispatchEntry,
    ) {
        match target {
            HandlerTarget::Vm(fv) => {
                let args = vec![Value::str(frame.buf().to_vec()), Value::Int(port.0 as i64)];
                self.call_vm(ctx, fv, args);
            }
            HandlerTarget::Native(idx) => {
                self.with_slot(ctx, idx, |s, bc| match entry {
                    DispatchEntry::Registered => s.on_registered_frame(bc, port, frame),
                    DispatchEntry::Switch => s.switch_frame(bc, port, frame),
                });
            }
            HandlerTarget::None => {}
        }
    }

    fn dispatch_registered(
        &mut self,
        ctx: &mut Ctx<'_>,
        target: HandlerTarget,
        port: PortId,
        frame: &DataFrame<'_>,
    ) {
        self.dispatch_target(ctx, target, port, frame, DispatchEntry::Registered);
    }

    fn dispatch_data_plane(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &DataFrame<'_>) {
        // Resolve the switching function once per decision generation: in
        // steady state this is a compare, not two string-keyed hash
        // lookups per frame.
        let gen = self.plane.generation();
        let target = match self.plane_target {
            Some((g, t)) if g == gen => t,
            _ => {
                let t = match self.plane.data_plane() {
                    DataPlaneSel::None => HandlerTarget::None,
                    DataPlaneSel::Native(name) => match self.by_name.get(name) {
                        Some(&idx) if self.plane.is_running(name) => HandlerTarget::Native(idx),
                        _ => HandlerTarget::None,
                    },
                    DataPlaneSel::Vm(fv) => HandlerTarget::Vm(*fv),
                };
                self.plane_target = Some((gen, t));
                t
            }
        };
        if matches!(target, HandlerTarget::None) {
            self.plane.stats.no_plane += 1;
            return;
        }
        self.dispatch_target(ctx, target, port, frame, DispatchEntry::Switch);
    }

    /// The demultiplexer (Figure 5 step 4 entry): address-registered
    /// handlers first, then the switching function.
    fn process_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: FrameBuf) {
        // One parse per arrival; every consumer below shares the view.
        let Ok(parsed) = DataFrame::parse(&frame) else {
            return;
        };
        let (dst, ethertype) = (parsed.dst(), parsed.ethertype());
        if let Some(target) = self
            .plane
            .addr_handler(dst)
            .map(|name| self.resolve_handler(name))
        {
            self.plane.stats.registered += 1;
            self.dispatch_registered(ctx, target, port, &parsed);
            self.apply_cmds(ctx);
            return;
        }
        // The loader endpoint also hears broadcast ARP (hosts resolving
        // the bridge's loader address); the frame is still bridged.
        if dst.is_broadcast() && ethertype == EtherType::ARP {
            if let Some(target) = self
                .plane
                .addr_handler(self.mac)
                .map(|name| self.resolve_handler(name))
            {
                self.plane.stats.to_loader += 1;
                self.dispatch_registered(ctx, target, port, &parsed);
            }
        }
        // Storm control polices flooded classes ahead of the switching
        // function: a dropped frame is never switched and never learned.
        if self.police_frame(ctx, port, &parsed) {
            self.apply_cmds(ctx);
            return;
        }
        self.dispatch_data_plane(ctx, port, &parsed);
        self.apply_cmds(ctx);
    }

    /// The storm-control stage: deterministic per-port token buckets for
    /// broadcast/multicast and unknown-unicast ingress. Returns `true`
    /// when the frame must be dropped (port-class suppressed, or over
    /// budget). Known unicast exits on one learned port — it cannot
    /// storm — and is never policed.
    fn police_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &DataFrame<'_>) -> bool {
        if self.cfg.storm_broadcast.is_none() && self.cfg.storm_unknown.is_none() {
            return false;
        }
        let now = ctx.now();
        let dst = frame.dst();
        let (class, class_cfg) = if dst.is_multicast() {
            (STORM_BROADCAST, self.cfg.storm_broadcast)
        } else if self.plane.learn.peek(dst, now) {
            return false;
        } else {
            (STORM_UNKNOWN, self.cfg.storm_unknown)
        };
        let Some(scfg) = class_cfg else {
            return false;
        };
        if self.storm.len() <= port.0 {
            self.storm.resize(port.0 + 1, [None; 2]);
        }
        let bucket = self.storm[port.0][class].get_or_insert(StormBucket {
            tokens_nano: scfg.burst.saturating_mul(NANO_PER_FRAME),
            last: now,
            strikes: 0,
            suppressed: false,
        });
        if bucket.suppressed {
            return true;
        }
        let elapsed = now.saturating_since(bucket.last).as_ns();
        bucket.last = now;
        bucket.tokens_nano = bucket
            .tokens_nano
            .saturating_add(elapsed.saturating_mul(scfg.rate_pps))
            .min(scfg.burst.saturating_mul(NANO_PER_FRAME));
        if bucket.tokens_nano >= NANO_PER_FRAME {
            bucket.tokens_nano -= NANO_PER_FRAME;
            bucket.strikes = 0;
            return false;
        }
        bucket.strikes += 1;
        if bucket.strikes >= scfg.trip {
            bucket.suppressed = true;
            bucket.strikes = 0;
            self.plane.stats.storm_suppressions += 1;
            ctx.bump("bridge.storm_suppressions", 1);
            ctx.probe_port_suppressed(port);
            ctx.schedule(scfg.hold_down, storm_token(self.epoch, port.0, class));
            let n = self.name.clone();
            let cls = if class == STORM_BROADCAST {
                "broadcast"
            } else {
                "unknown-unicast"
            };
            ctx.trace(format!(
                "{n}: storm control suppressed port {} ({cls})",
                port.0
            ));
        }
        true
    }

    // ------------------------------------------------------ switchlet mgmt

    fn install_native(&mut self, ctx: &mut Ctx<'_>, name: &str) {
        if self.by_name.contains_key(name) {
            let n = self.name.clone();
            ctx.trace(format!("{n}: switchlet {name} already loaded"));
            return;
        }
        let Some(factory) = self.factories.get(name) else {
            let n = self.name.clone();
            ctx.trace(format!("{n}: no native implementation for {name}"));
            self.plane.stats.images_rejected += 1;
            return;
        };
        let init = NativeInit {
            cfg: self.cfg.clone(),
            mac: self.mac,
            n_ports: self.plane.num_ports(),
        };
        let imp = factory(&init);
        let idx = self.slots.len();
        self.slots.push(Slot {
            name: name.to_owned(),
            imp: Some(SwitchletImpl::Native(imp)),
        });
        self.by_name.insert(name.to_owned(), idx);
        self.plane.set_status(name, SwitchletStatus::Running);
        let n = self.name.clone();
        ctx.trace(format!("{n}: installed switchlet {name}"));
        self.with_slot(ctx, idx, |s, bc| s.on_install(bc));
    }

    fn load_image(&mut self, ctx: &mut Ctx<'_>, image: &[u8]) {
        // Decode first so digest/tamper checks apply to native carriers
        // exactly as to VM modules.
        let module = match Module::decode(image) {
            Ok(m) => m,
            Err(e) => {
                let n = self.name.clone();
                ctx.trace(format!("{n}: rejected switchlet image: {e}"));
                self.plane.stats.images_rejected += 1;
                return;
            }
        };
        self.plane.stats.images_loaded += 1;
        if self.factories.contains_key(module.name.as_str()) && module.functions.is_empty() {
            let name = module.name.clone();
            self.install_native(ctx, &name);
            return;
        }
        // A real VM module: link, verify, run its init.
        let exec = ExecConfig {
            fuel: self.cfg.vm_fuel,
            max_depth: 64,
        };
        let name = module.name.clone();
        let image_owned = image.to_vec();
        let mut env = hostmods::HostEnv {
            sim: ctx,
            plane: &mut self.plane,
            cmds: &mut self.cmds,
            vm_handlers: &mut self.vm_handlers,
            vm_owner: &mut self.vm_owner,
            mac: self.mac,
            bridge_name: &self.name,
            module_name: name.clone(),
        };
        match self.ns.load_and_init(&image_owned, &mut env, &exec) {
            Ok((_, stats)) => {
                self.vm_instructions += stats.instructions;
                let idx = self.slots.len();
                self.slots.push(Slot {
                    name: name.clone(),
                    imp: Some(SwitchletImpl::Vm),
                });
                self.by_name.insert(name.clone(), idx);
                self.plane
                    .set_status(name.clone(), SwitchletStatus::Running);
                let n = self.name.clone();
                ctx.trace(format!("{n}: loaded vm switchlet {name}"));
            }
            Err(e) => {
                self.plane.stats.images_rejected += 1;
                self.plane.stats.images_loaded -= 1;
                let n = self.name.clone();
                ctx.trace(format!("{n}: rejected switchlet {name}: {e}"));
                ctx.bump("bridge.load_rejects", 1);
            }
        }
    }

    fn apply_cmds(&mut self, ctx: &mut Ctx<'_>) {
        while !self.cmds.is_empty() {
            let batch: Vec<BridgeCommand> = self.cmds.drain(..).collect();
            for cmd in batch {
                match cmd {
                    BridgeCommand::Suspend(name) => {
                        if let Some(&idx) = self.by_name.get(&name) {
                            if self.plane.is_running(&name) {
                                self.plane
                                    .set_status(name.clone(), SwitchletStatus::Suspended);
                                self.with_slot(ctx, idx, |s, bc| s.on_suspend(bc));
                                let n = self.name.clone();
                                ctx.trace(format!("{n}: suspended {name}"));
                            }
                        }
                    }
                    BridgeCommand::Resume(name) => {
                        if let Some(&idx) = self.by_name.get(&name) {
                            if self.plane.status_of(&name) == Some(SwitchletStatus::Suspended) {
                                self.plane
                                    .set_status(name.clone(), SwitchletStatus::Running);
                                self.with_slot(ctx, idx, |s, bc| s.on_resume(bc));
                                let n = self.name.clone();
                                ctx.trace(format!("{n}: resumed {name}"));
                            }
                        }
                    }
                    BridgeCommand::Stop(name) => {
                        if self.by_name.contains_key(&name) {
                            self.plane
                                .set_status(name.clone(), SwitchletStatus::Stopped);
                            let n = self.name.clone();
                            ctx.trace(format!("{n}: stopped {name}"));
                        }
                    }
                    BridgeCommand::LoadImage(image) => {
                        self.load_image(ctx, &image);
                    }
                    BridgeCommand::VmTimer {
                        callback,
                        after,
                        token,
                    } => {
                        let idx = self.vm_timers.len();
                        self.vm_timers.push((callback, token));
                        ctx.schedule(after, vm_timer_token(self.epoch, idx));
                    }
                }
            }
        }
    }
}

impl Node for BridgeNode {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        assert_eq!(
            ctx.num_ports(),
            self.plane.num_ports(),
            "bridge {} configured for {} ports but attached to {}",
            self.name,
            self.plane.num_ports(),
            ctx.num_ports()
        );
        self.ports_known = true;
        // The boot loader: load the "disk" images in order. They are
        // retained (not drained) so a crash-restart can replay the same
        // cold boot.
        let images = self.boot_images.clone();
        for image in images {
            self.load_image(ctx, &image);
            self.apply_cmds(ctx);
        }
    }

    fn on_crash(&mut self, ctx: &mut Ctx<'_>) {
        // Volatile state dies with the power: the forwarding tables and
        // decision cache (inside `plane`), STP engine state (inside the
        // STP switchlet instance), queued frames, VM instances and
        // scratch, pending commands, and the watchdog's history. The
        // epoch bump orphans every timer already in flight.
        self.epoch = self.epoch.wrapping_add(1);
        self.service = ServiceQueue::new(self.cfg.input_queue);
        let mut plane = Plane::new(self.plane.num_ports(), self.cfg.learn_age);
        plane.learn.reserve(self.cfg.expected_stations);
        plane
            .learn
            .set_bounds(self.cfg.learn_cap, self.cfg.learn_port_quota);
        self.plane = plane;
        self.plane_target = None;
        self.storm.clear();
        self.slots.clear();
        self.by_name.clear();
        self.ns = Namespace::new(hostmods::host_env());
        self.vm_handlers.clear();
        self.vm_owner.clear();
        self.vm_timers.clear();
        self.cmds.clear();
        self.trap_counts.clear();
        self.quarantined.clear();
        let profiling = self.vm_scratch.profile().is_some();
        self.vm_scratch = VmScratch::new();
        if profiling {
            self.vm_scratch.enable_profile();
        }
        let n = self.name.clone();
        ctx.trace(format!("{n}: crashed (volatile state lost)"));
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        let n = self.name.clone();
        ctx.trace(format!("{n}: restarting from boot images"));
        // Cold boot: exactly the `on_start` load sequence, replayed
        // against the fresh state `on_crash` left behind.
        let images = self.boot_images.clone();
        for image in images {
            self.load_image(ctx, &image);
            self.apply_cmds(ctx);
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: FrameBuf) {
        self.plane.stats.frames_in += 1;
        let service_time = self.cfg.cost.service_time(frame.len());
        // Null-event elision, as on the host receive path: a zero-cost
        // software path with an idle input queue forwards synchronously
        // instead of bouncing through a zero-delay service timer.
        // Calibrated cost models (the paper's bridges) still serialize
        // through the single-server queue.
        if service_time.is_zero() && self.service.head().is_none() {
            self.process_frame(ctx, port, frame);
            return;
        }
        match self.service.offer((port, frame)) {
            Offer::Started => {
                ctx.schedule(service_time, service_token(self.epoch));
            }
            Offer::Queued => {}
            Offer::Dropped => {
                self.plane.stats.queue_drops += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: TimerToken) {
        if ((token.0 >> 48) & 0xFF) as u8 != self.epoch {
            // Armed before a crash: the queue entry, slot or VM timer it
            // referred to died with the old epoch.
            return;
        }
        let kind = token.0 >> 56;
        match kind {
            KIND_SERVICE => {
                let ((port, frame), next) = self.service.complete();
                if let Some((_, next_frame)) = next {
                    let t = self.cfg.cost.service_time(next_frame.len());
                    ctx.schedule(t, service_token(self.epoch));
                }
                self.process_frame(ctx, port, frame);
            }
            KIND_SWITCHLET => {
                let slot = ((token.0 >> 32) & 0xFFFF) as usize;
                let user = (token.0 & 0xFFFF_FFFF) as u32;
                if slot < self.slots.len() {
                    let name = self.slots[slot].name.clone();
                    if self.plane.is_running(&name) {
                        // A timer handler may mutate decision inputs the
                        // plane cannot see (switchlet-private state), so
                        // every delivery invalidates cached verdicts.
                        self.plane.bump_generation();
                        self.with_slot(ctx, slot, |s, bc| s.on_timer(bc, user));
                    }
                }
                self.apply_cmds(ctx);
            }
            KIND_VM_TIMER => {
                let idx = (token.0 & 0xFFFF_FFFF) as usize;
                if let Some((fv, user)) = self.vm_timers.get(idx).copied() {
                    self.plane.bump_generation();
                    self.call_vm(ctx, fv, vec![Value::Int(user)]);
                }
                self.apply_cmds(ctx);
            }
            KIND_STORM => {
                let port = (token.0 & 0xFFFF) as usize;
                let class = ((token.0 >> 16) & 0xFF) as usize;
                let scfg = if class == STORM_BROADCAST {
                    self.cfg.storm_broadcast
                } else {
                    self.cfg.storm_unknown
                };
                if let (Some(scfg), Some(bucket)) = (
                    scfg,
                    self.storm
                        .get_mut(port)
                        .and_then(|classes| classes.get_mut(class))
                        .and_then(|slot| slot.as_mut()),
                ) {
                    if bucket.suppressed {
                        // Hold-down expired: re-enable with a full bucket
                        // so a still-running storm re-trips cleanly
                        // instead of flapping per frame.
                        bucket.suppressed = false;
                        bucket.strikes = 0;
                        bucket.tokens_nano = scfg.burst.saturating_mul(NANO_PER_FRAME);
                        bucket.last = ctx.now();
                        ctx.bump("bridge.storm_releases", 1);
                        ctx.probe_port_released(PortId(port));
                        let n = self.name.clone();
                        ctx.trace(format!("{n}: storm control released port {port}"));
                    }
                }
            }
            _ => unreachable!("unknown bridge timer kind {kind}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
