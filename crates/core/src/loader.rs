//! The network loader (paper Section 5.2).
//!
//! "When the loader first starts, it is limited to those capabilities
//! required to continue the loading process ... the initial loader can
//! only load switchlets from disk. To overcome this limitation, we load a
//! network loader. It consists of four layers": the Ethernet demux (the
//! bridge's demultiplexer, at which this switchlet registers the bridge's
//! own station address), a minimal IP, a minimal UDP, and a TFTP server
//! that only services binary write requests. "Any such file is taken to
//! be a ... byte code file and, upon successful receipt, an attempt is
//! made to dynamically load and evaluate the file."

use bytes::Bytes;
use ether::{EtherType, FrameBuilder, MacAddr};
use netsim::PortId;
use netstack::ipv4::Protocol;
use netstack::{ArpOp, ArpPacket, TftpPacket, TftpServer, UdpDatagram};

use crate::bridge::{BridgeCommand, BridgeCtx, DataFrame, NativeSwitchlet};

/// The switchlet's unit name.
pub const NAME: &str = "netloader";

/// The UDP port the TFTP server listens on.
pub const TFTP_PORT: u16 = 69;

/// The network-loader switchlet.
pub struct NetLoader {
    tftp: TftpServer,
    ip_ident: u16,
    /// Images received over the network.
    pub images_received: u64,
    /// Sealed images whose envelope failed verification — counted here
    /// *and* in [`crate::plane::BridgeStats::images_rejected`]; the
    /// payload never reaches decode or evaluation.
    pub integrity_rejects: u64,
}

impl Default for NetLoader {
    fn default() -> Self {
        NetLoader {
            tftp: TftpServer::new(),
            ip_ident: 1,
            images_received: 0,
            integrity_rejects: 0,
        }
    }
}

impl NetLoader {
    fn send_udp(
        &mut self,
        bc: &mut BridgeCtx<'_, '_>,
        port: PortId,
        dst_mac: MacAddr,
        dst_ip: std::net::Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
    ) {
        let udp = netstack::udp::emit(bc.ip, TFTP_PORT, dst_ip, dst_port, payload);
        let ip =
            match netstack::ipv4::emit(bc.ip, dst_ip, Protocol::UDP, self.ip_ident, 64, &udp, 1500)
            {
                Ok(p) => p,
                Err(_) => return, // reply exceeds MTU: drop (no fragmentation)
            };
        self.ip_ident = self.ip_ident.wrapping_add(1);
        let frame = FrameBuilder::new(dst_mac, bc.mac, EtherType::IPV4)
            .payload(&ip)
            .build();
        bc.send_frame(port, frame);
    }
}

impl NativeSwitchlet for NetLoader {
    fn name(&self) -> &'static str {
        NAME
    }

    fn on_install(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        // Register for frames "destined for an Ethernet card installed on
        // this machine". (Broadcast ARP is steered here by the bridge.)
        let mac = bc.mac;
        bc.plane.register_addr(mac, NAME);
        let ip = bc.ip;
        bc.log(format!("network loader ready at {ip} (tftp/{TFTP_PORT})"));
    }

    fn on_registered_frame(
        &mut self,
        bc: &mut BridgeCtx<'_, '_>,
        port: PortId,
        frame: &DataFrame<'_>,
    ) {
        match frame.ethertype() {
            EtherType::ARP => {
                let Ok(arp) = ArpPacket::parse(frame.payload()) else {
                    return;
                };
                if arp.op == ArpOp::Request && arp.tpa == bc.ip {
                    let reply = arp.reply_with(bc.mac);
                    let out = FrameBuilder::new(arp.sha, bc.mac, EtherType::ARP)
                        .payload(&reply.emit())
                        .build();
                    bc.send_frame(port, out);
                }
            }
            EtherType::IPV4 => {
                let Ok(ip) = netstack::ipv4::Packet::parse(frame.payload()) else {
                    return;
                };
                if ip.dst() != bc.ip || ip.protocol() != Protocol::UDP {
                    return;
                }
                let Ok(udp) = UdpDatagram::parse(ip.payload(), ip.src(), ip.dst()) else {
                    return;
                };
                if udp.dst_port() != TFTP_PORT {
                    return;
                }
                let peer = (ip.src(), udp.src_port());
                let now_ns = bc.now().as_ns();
                let (mut reply, file) = self.tftp.on_packet_at(peer, udp.payload(), now_ns);
                // The integrity gate: a digest-sealed envelope is
                // verified *before* any decode or evaluation touches the
                // payload. On a corrupted image the final ACK is replaced
                // by a TFTP error whose message lets the sender classify
                // the failure as `IntegrityReject` and re-send; the data
                // plane keeps running the last known-good selection. Bare
                // images (no envelope magic) take the legacy path
                // untouched.
                let mut accepted = None;
                let mut rejected = None;
                if let Some(file) = file {
                    if switchlet::is_enveloped(&file.data) {
                        match switchlet::unseal(&file.data) {
                            Ok(payload) => accepted = Some((file.filename, payload.to_vec())),
                            Err(e) => {
                                reply = Some(
                                    TftpPacket::Error {
                                        code: 0,
                                        msg: &format!("integrity check failed: {e}"),
                                    }
                                    .emit(),
                                );
                                rejected = Some((file.filename, file.data.len(), e));
                            }
                        }
                    } else {
                        accepted = Some((file.filename, file.data));
                    }
                }
                if let Some(reply) = reply {
                    let dst_mac = frame.src();
                    self.send_udp(bc, port, dst_mac, peer.0, peer.1, &reply);
                }
                if let Some((filename, len, e)) = rejected {
                    self.integrity_rejects += 1;
                    bc.plane.stats.images_rejected += 1;
                    bc.log(format!("loader: rejected {filename} ({len} bytes): {e}"));
                }
                if let Some((filename, image)) = accepted {
                    self.images_received += 1;
                    bc.log(format!(
                        "loader: received {filename} ({} bytes); loading",
                        image.len()
                    ));
                    // "... an attempt is made to dynamically load and
                    // evaluate the file."
                    bc.command(BridgeCommand::LoadImage(image));
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}

/// Build the Ethernet frame a host sends to upload `payload` to a
/// bridge's TFTP loader (used by `hostsim`'s uploader and by tests).
pub fn wrap_tftp_packet(
    src_mac: MacAddr,
    src_ip: std::net::Ipv4Addr,
    src_port: u16,
    dst_mac: MacAddr,
    dst_ip: std::net::Ipv4Addr,
    ident: u16,
    tftp_payload: &[u8],
) -> Bytes {
    let udp = netstack::udp::emit(src_ip, src_port, dst_ip, TFTP_PORT, tftp_payload);
    let ip = netstack::ipv4::emit(src_ip, dst_ip, Protocol::UDP, ident, 64, &udp, 1500)
        .expect("tftp packets fit the MTU");
    FrameBuilder::new(dst_mac, src_mac, EtherType::IPV4)
        .payload(&ip)
        .build()
}
