//! Topology-building primitives for bridges and LANs.
//!
//! The canonical public path is `ab_scenario::*`: that crate re-exports
//! these primitives and layers the parametric topology generators,
//! workload batteries and the scenario runner on top. (The old
//! `active_bridge::scenario` shim is gone.)
//!
//! The helpers themselves must live in this crate (not `ab_scenario`)
//! because they construct [`BridgeNode`]s: `ab_scenario` depends on
//! `active_bridge`, so hoisting them out would create a dependency cycle.
//! Import them through `ab_scenario`.

use std::net::Ipv4Addr;

use ether::MacAddr;
use netsim::{NodeId, SegId, SegmentConfig, World};

use crate::bridge::BridgeNode;
use crate::config::BridgeConfig;

/// Deterministic station address for bridge `n`.
pub fn bridge_mac(n: u32) -> MacAddr {
    MacAddr::local(0x1000 + n)
}

/// Deterministic loader address for bridge `n` (10.0.0.0/16 block).
pub fn bridge_ip(n: u32) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, (n >> 8) as u8, (n & 0xFF) as u8)
}

/// Deterministic station address for host `n`.
pub fn host_mac(n: u32) -> MacAddr {
    MacAddr::local(0x2000 + n)
}

/// Deterministic address for host `n` (10.1.0.0/16 block).
pub fn host_ip(n: u32) -> Ipv4Addr {
    Ipv4Addr::new(10, 1, (n >> 8) as u8, (n & 0xFF) as u8)
}

/// Create `n` standard 100 Mb/s LAN segments named `lan0..`.
pub fn lans(world: &mut World, n: usize) -> Vec<SegId> {
    (0..n)
        .map(|i| world.add_segment(SegmentConfig::named(format!("lan{i}"))))
        .collect()
}

/// Build a bridge attached to the given segments, boot-loading the named
/// native switchlets (always starting with the network loader).
pub fn bridge(
    world: &mut World,
    index: u32,
    segs: &[SegId],
    cfg: BridgeConfig,
    boot: &[&str],
) -> NodeId {
    let mut node = BridgeNode::new(
        format!("bridge{index}"),
        bridge_mac(index),
        bridge_ip(index),
        segs.len(),
        cfg,
    );
    node.boot_load_native(crate::loader::NAME);
    for name in boot {
        node.boot_load_native(name);
    }
    let id = world.add_node(node);
    for &seg in segs {
        world.attach(id, seg);
    }
    id
}

/// A ring of `n` bridges over `n` segments: bridge `i` connects segment
/// `i` and segment `(i+1) % n` — the Section 7.5 agility topology.
///
/// Superseded by `ab_scenario::topo` (shape `Ring`), which generates the
/// same wiring parametrically; kept for callers that want the two-line
/// version.
pub fn ring(
    world: &mut World,
    n: usize,
    cfg: &BridgeConfig,
    boot: &[&str],
) -> (Vec<SegId>, Vec<NodeId>) {
    let segs = lans(world, n);
    let bridges = (0..n)
        .map(|i| {
            bridge(
                world,
                i as u32,
                &[segs[i], segs[(i + 1) % n]],
                cfg.clone(),
                boot,
            )
        })
        .collect();
    (segs, bridges)
}

/// A line of `n` bridges over `n + 1` segments: bridge `i` connects
/// segment `i` and segment `i + 1` — the extended-LAN topology.
///
/// Superseded by `ab_scenario::topo` (shape `Line`); see [`ring`].
pub fn line(
    world: &mut World,
    n: usize,
    cfg: &BridgeConfig,
    boot: &[&str],
) -> (Vec<SegId>, Vec<NodeId>) {
    let segs = lans(world, n + 1);
    let bridges = (0..n)
        .map(|i| bridge(world, i as u32, &[segs[i], segs[i + 1]], cfg.clone(), boot))
        .collect();
    (segs, bridges)
}
