//! Switchlet 3: spanning tree — the protocol engine, both wire codecs,
//! and the switchlet wrappers for the IEEE 802.1D and DEC-style variants.

pub mod bpdu;
pub mod engine;

use ether::{EtherType, Frame, FrameBuilder, Llc, MacAddr};
use netsim::{PortId, SimDuration};

use crate::bridge::{BridgeCommand, BridgeCtx, DataFrame, NativeSwitchlet};
use crate::plane::PortFlags;
use crate::switchlets::stp::bpdu::{Bpdu, BridgeId, StpVariant};
use crate::switchlets::stp::engine::{Defect, StpAction, StpEngine};

/// Unit name of the IEEE 802.1D switchlet (the "new" protocol).
pub const IEEE_NAME: &str = "stp_ieee";
/// Unit name of the DEC-style switchlet (the "old" protocol).
pub const DEC_NAME: &str = "stp_dec";

const TICK_TOKEN: u32 = 1;
const TICK: SimDuration = SimDuration::from_secs(1);

/// The spanning-tree switchlet: one engine behind one of two codecs.
pub struct StpSwitchlet {
    variant: StpVariant,
    engine: Option<StpEngine>,
    defect: Defect,
    tick: Option<netsim::TimerHandle>,
    /// BPDU-guard err-disabled ports (sticky for the life of this
    /// switchlet instance; a crash recreates the instance, which re-arms
    /// the guard fresh — matching the rest of the volatile plane).
    tripped: Vec<bool>,
}

impl StpSwitchlet {
    /// IEEE 802.1D flavour.
    pub fn ieee() -> StpSwitchlet {
        StpSwitchlet {
            variant: StpVariant::Ieee,
            engine: None,
            defect: Defect::None,
            tick: None,
            tripped: Vec::new(),
        }
    }

    /// DEC-style flavour.
    pub fn dec() -> StpSwitchlet {
        StpSwitchlet {
            variant: StpVariant::Dec,
            engine: None,
            defect: Defect::None,
            tick: None,
            tripped: Vec::new(),
        }
    }

    /// Inject a defect into the election (the paper's "bug in the new
    /// protocol implementation" for the fallback experiment).
    pub fn with_defect(mut self, defect: Defect) -> StpSwitchlet {
        self.defect = defect;
        self
    }

    /// The running engine, if any (tests/experiments).
    pub fn engine(&self) -> Option<&StpEngine> {
        self.engine.as_ref()
    }

    fn unit_name(&self) -> &'static str {
        match self.variant {
            StpVariant::Ieee => IEEE_NAME,
            StpVariant::Dec => DEC_NAME,
        }
    }

    /// True when BPDU guard has err-disabled `port`.
    pub fn is_tripped(&self, port: usize) -> bool {
        self.tripped.get(port).copied().unwrap_or(false)
    }

    fn start(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        let bridge_id = BridgeId::new(bc.cfg.priority, bc.mac);
        let (mut engine, actions) =
            StpEngine::new(bridge_id, bc.num_ports(), 100, bc.cfg.stp, bc.now());
        engine.set_defect(self.defect);
        self.engine = Some(engine);
        bc.plane
            .register_addr(self.variant.group_addr(), self.unit_name());
        self.apply(bc, actions);
        self.tick = Some(bc.schedule(TICK, TICK_TOKEN));
        let name = self.unit_name();
        bc.log(format!("{name}: protocol started"));
    }

    fn emit_config(&self, bc: &mut BridgeCtx<'_, '_>, port: usize, bpdu: &Bpdu) {
        let payload = self.variant.emit(bpdu);
        let frame = match self.variant {
            StpVariant::Ieee => FrameBuilder::new_llc(MacAddr::ALL_BRIDGES, bc.mac)
                .payload(&Llc::BPDU.wrap(&payload))
                .build(),
            StpVariant::Dec => FrameBuilder::new(MacAddr::DEC_BRIDGES, bc.mac, EtherType::DEC_STP)
                .payload(&payload)
                .build(),
        };
        bc.send_frame(PortId(port), frame);
    }

    fn apply(&mut self, bc: &mut BridgeCtx<'_, '_>, actions: Vec<StpAction>) {
        for action in actions {
            // An err-disabled port is dead to the protocol: the engine
            // may still compute actions for it, but nothing it decides
            // can transmit on or re-enable a guarded-down port.
            match action {
                StpAction::SendConfig { port, config } => {
                    if self.is_tripped(port) {
                        continue;
                    }
                    self.emit_config(bc, port, &Bpdu::Config(config));
                }
                StpAction::SetPortState { port, state } => {
                    if self.is_tripped(port) {
                        continue;
                    }
                    bc.plane.set_port_flags(
                        port,
                        PortFlags {
                            forward: state.forwards(),
                            learn: state.learns(),
                        },
                    );
                }
            }
        }
        if let Some(engine) = &self.engine {
            bc.plane
                .published
                .insert(self.unit_name().to_owned(), engine.snapshot());
        }
    }

    fn decode(&self, frame: &Frame<'_>) -> Option<Bpdu> {
        match self.variant {
            StpVariant::Ieee => {
                let (llc, rest) = Llc::parse(frame.payload())?;
                if llc != Llc::BPDU {
                    return None;
                }
                StpVariant::Ieee.parse(rest)
            }
            StpVariant::Dec => {
                if frame.ethertype() != EtherType::DEC_STP {
                    return None;
                }
                StpVariant::Dec.parse(frame.payload())
            }
        }
    }
}

impl NativeSwitchlet for StpSwitchlet {
    fn name(&self) -> &'static str {
        self.unit_name()
    }

    fn on_install(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        // The paper's deployment story: the new protocol is loaded while
        // the old one operates, and stays dormant — "It checks that the
        // DEC switchlet is operating and that the 802.1D switchlet is
        // not." If the other variant is already running, install
        // suspended and wait for the control switchlet.
        let other = match self.variant {
            StpVariant::Ieee => DEC_NAME,
            StpVariant::Dec => IEEE_NAME,
        };
        if bc.plane.is_running(other) {
            bc.log(format!(
                "{}: loaded dormant ({other} is operating)",
                self.unit_name()
            ));
            let name = self.unit_name().to_owned();
            bc.command(BridgeCommand::Suspend(name));
            return;
        }
        self.start(bc);
    }

    fn on_suspend(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        // Halt the protocol; the engine's last snapshot stays published
        // (the control switchlet captures it at suspension time).
        self.engine = None;
        if let Some(handle) = self.tick.take() {
            bc.cancel(handle);
        }
        let name = self.unit_name();
        bc.log(format!("{name}: protocol halted"));
    }

    fn on_resume(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        // Restart fresh: a resumed protocol re-elects from scratch.
        self.start(bc);
    }

    fn on_registered_frame(
        &mut self,
        bc: &mut BridgeCtx<'_, '_>,
        port: PortId,
        frame: &DataFrame<'_>,
    ) {
        // BPDU guard: an access port must never speak spanning tree. Any
        // BPDU on a guarded port err-disables it before the frame reaches
        // the decoder — a forged superior BPDU cannot touch the election.
        if bc.cfg.bpdu_guard.contains(&port.0) {
            if !self.is_tripped(port.0) {
                if self.tripped.len() <= port.0 {
                    self.tripped.resize(port.0 + 1, false);
                }
                self.tripped[port.0] = true;
                bc.plane.set_port_flags(
                    port.0,
                    PortFlags {
                        forward: false,
                        learn: false,
                    },
                );
                bc.plane.stats.bpdu_guard_trips += 1;
                bc.sim.bump("bridge.bpdu_guard_trips", 1);
                bc.sim.probe_bpdu_guard(port);
                let name = self.unit_name();
                bc.log(format!("{name}: BPDU guard err-disabled port {}", port.0));
            }
            return;
        }
        let Some(bpdu) = self.decode(frame.view()) else {
            return;
        };
        let Some(engine) = &mut self.engine else {
            return;
        };
        match bpdu {
            Bpdu::Config(config) => {
                let now = bc.now();
                let actions = engine.on_config(port.0, &config, now);
                self.apply(bc, actions);
            }
            Bpdu::Tcn => {
                // Topology-change notifications shorten learning-table
                // aging in full 802.1D; flushing is the conservative
                // equivalent at our scale.
                bc.plane.learn.flush();
            }
        }
    }

    fn on_timer(&mut self, bc: &mut BridgeCtx<'_, '_>, user: u32) {
        if user != TICK_TOKEN {
            return;
        }
        let Some(engine) = &mut self.engine else {
            return;
        };
        let now = bc.now();
        let actions = engine.on_tick(now);
        self.apply(bc, actions);
        self.tick = Some(bc.schedule(TICK, TICK_TOKEN));
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}
