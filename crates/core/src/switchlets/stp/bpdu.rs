//! Spanning-tree BPDU wire formats: IEEE 802.1D, and the DEC-style variant
//! the paper built for its protocol-transition experiment.
//!
//! The paper (footnote 4): "To completely implement the DEC protocol would
//! require changing some timings and states as well. We did not do this.
//! We simply required an incompatible packet format so that we could make
//! a transition." We follow suit: the DEC codec below carries the same
//! semantic fields in a deliberately incompatible layout, travels to a
//! different multicast address ([`ether::MacAddr::DEC_BRIDGES`]) under its
//! own EtherType, and cannot be confused with an 802.1D BPDU.

use ether::MacAddr;

/// A bridge identifier: 2-byte priority then 6-byte MAC, compared
/// lexicographically (lower wins elections).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BridgeId {
    /// Management priority (default 0x8000).
    pub priority: u16,
    /// The bridge's MAC address.
    pub mac: MacAddr,
}

impl BridgeId {
    /// Construct.
    pub fn new(priority: u16, mac: MacAddr) -> BridgeId {
        BridgeId { priority, mac }
    }

    /// Wire encoding (8 bytes).
    pub fn encode(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..2].copy_from_slice(&self.priority.to_be_bytes());
        out[2..].copy_from_slice(&self.mac.octets());
        out
    }

    /// Decode 8 bytes.
    pub fn decode(buf: &[u8]) -> Option<BridgeId> {
        if buf.len() < 8 {
            return None;
        }
        Some(BridgeId {
            priority: u16::from_be_bytes([buf[0], buf[1]]),
            mac: MacAddr::from_slice(&buf[2..8]).unwrap(),
        })
    }
}

impl core::fmt::Display for BridgeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:04x}.{}", self.priority, self.mac)
    }
}

/// The semantic content of a configuration BPDU (shared by both codecs).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ConfigBpdu {
    /// The transmitter's idea of the root.
    pub root: BridgeId,
    /// Its cost to that root.
    pub root_cost: u32,
    /// The transmitting bridge.
    pub bridge: BridgeId,
    /// The transmitting port (1-based, per 802.1D convention).
    pub port: u16,
    /// Age of the information in seconds (incremented per hop).
    pub message_age: u16,
    /// Lifetime bound in seconds.
    pub max_age: u16,
    /// Root's hello interval in seconds.
    pub hello_time: u16,
    /// Root's forward delay in seconds.
    pub forward_delay: u16,
    /// Topology-change flag.
    pub tc: bool,
    /// Topology-change acknowledgement flag.
    pub tca: bool,
}

/// A parsed BPDU of either kind.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Bpdu {
    /// Configuration BPDU.
    Config(ConfigBpdu),
    /// Topology-change notification.
    Tcn,
}

/// IEEE 802.1D encoding (35 bytes, carried over LLC SAP 0x42 to the
/// All Bridges address).
pub mod ieee {
    use super::{Bpdu, BridgeId, ConfigBpdu};

    /// Encoded length of a configuration BPDU.
    pub const CONFIG_LEN: usize = 35;

    /// Encode.
    pub fn emit(bpdu: &Bpdu) -> Vec<u8> {
        match bpdu {
            Bpdu::Tcn => vec![0, 0, 0, 0x80],
            Bpdu::Config(c) => {
                let mut out = Vec::with_capacity(CONFIG_LEN);
                out.extend_from_slice(&[0, 0]); // protocol id
                out.push(0); // version
                out.push(0); // type: config
                let mut flags = 0u8;
                if c.tc {
                    flags |= 0x01;
                }
                if c.tca {
                    flags |= 0x80;
                }
                out.push(flags);
                out.extend_from_slice(&c.root.encode());
                out.extend_from_slice(&c.root_cost.to_be_bytes());
                out.extend_from_slice(&c.bridge.encode());
                out.extend_from_slice(&c.port.to_be_bytes());
                // 802.1D carries times in 1/256ths of a second.
                for t in [c.message_age, c.max_age, c.hello_time, c.forward_delay] {
                    out.extend_from_slice(&(t * 256).to_be_bytes());
                }
                out
            }
        }
    }

    /// Decode; `None` if this is not a well-formed 802.1D BPDU.
    pub fn parse(buf: &[u8]) -> Option<Bpdu> {
        if buf.len() < 4 || buf[0] != 0 || buf[1] != 0 || buf[2] != 0 {
            return None;
        }
        match buf[3] {
            0x80 => Some(Bpdu::Tcn),
            0x00 => {
                if buf.len() < CONFIG_LEN {
                    return None;
                }
                let flags = buf[4];
                Some(Bpdu::Config(ConfigBpdu {
                    tc: flags & 0x01 != 0,
                    tca: flags & 0x80 != 0,
                    root: BridgeId::decode(&buf[5..13])?,
                    root_cost: u32::from_be_bytes(buf[13..17].try_into().ok()?),
                    bridge: BridgeId::decode(&buf[17..25])?,
                    port: u16::from_be_bytes([buf[25], buf[26]]),
                    message_age: u16::from_be_bytes([buf[27], buf[28]]) / 256,
                    max_age: u16::from_be_bytes([buf[29], buf[30]]) / 256,
                    hello_time: u16::from_be_bytes([buf[31], buf[32]]) / 256,
                    forward_delay: u16::from_be_bytes([buf[33], buf[34]]) / 256,
                }))
            }
            _ => None,
        }
    }
}

/// The DEC-style encoding: same fields, incompatible layout (magic-tagged,
/// little-endian, different field order), carried under EtherType 0x8038
/// to the DEC bridge multicast address.
pub mod dec {
    use super::{Bpdu, BridgeId, ConfigBpdu};
    use ether::MacAddr;

    /// Magic first byte.
    pub const MAGIC: u8 = 0xE1;
    /// Encoded length of a configuration message: magic(1) + type(1) +
    /// bridge(8) + root(8) + cost(4) + port(2) + four timer bytes + two
    /// flag bytes.
    pub const CONFIG_LEN: usize = 30;

    /// Encode.
    pub fn emit(bpdu: &Bpdu) -> Vec<u8> {
        match bpdu {
            Bpdu::Tcn => vec![MAGIC, 0x02],
            Bpdu::Config(c) => {
                let mut out = Vec::with_capacity(CONFIG_LEN);
                out.push(MAGIC);
                out.push(0x01); // type: config
                                // DEC-style: bridge first, then root (opposite of IEEE),
                                // little-endian scalars, raw seconds.
                out.extend_from_slice(&c.bridge.priority.to_le_bytes());
                out.extend_from_slice(&c.bridge.mac.octets());
                out.extend_from_slice(&c.root.priority.to_le_bytes());
                out.extend_from_slice(&c.root.mac.octets());
                out.extend_from_slice(&c.root_cost.to_le_bytes());
                out.extend_from_slice(&c.port.to_le_bytes());
                out.push(c.message_age as u8);
                out.push(c.max_age as u8);
                out.push(c.hello_time as u8);
                out.push(c.forward_delay as u8);
                out.push(if c.tc { 1 } else { 0 });
                out.push(if c.tca { 1 } else { 0 });
                out
            }
        }
    }

    /// Decode; `None` if this is not a DEC-style message.
    pub fn parse(buf: &[u8]) -> Option<Bpdu> {
        if buf.len() < 2 || buf[0] != MAGIC {
            return None;
        }
        match buf[1] {
            0x02 => Some(Bpdu::Tcn),
            0x01 => {
                if buf.len() < CONFIG_LEN {
                    return None;
                }
                let bridge = BridgeId {
                    priority: u16::from_le_bytes([buf[2], buf[3]]),
                    mac: MacAddr::from_slice(&buf[4..10]).unwrap(),
                };
                let root = BridgeId {
                    priority: u16::from_le_bytes([buf[10], buf[11]]),
                    mac: MacAddr::from_slice(&buf[12..18]).unwrap(),
                };
                Some(Bpdu::Config(ConfigBpdu {
                    root,
                    root_cost: u32::from_le_bytes(buf[18..22].try_into().ok()?),
                    bridge,
                    port: u16::from_le_bytes([buf[22], buf[23]]),
                    message_age: buf[24] as u16,
                    max_age: buf[25] as u16,
                    hello_time: buf[26] as u16,
                    forward_delay: buf[27] as u16,
                    tc: buf[28] != 0,
                    tca: buf[29] != 0,
                }))
            }
            _ => None,
        }
    }
}

/// Which protocol family a BPDU belongs to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StpVariant {
    /// IEEE 802.1D.
    Ieee,
    /// The DEC-style variant.
    Dec,
}

impl StpVariant {
    /// The destination group address this variant uses.
    pub fn group_addr(self) -> MacAddr {
        match self {
            StpVariant::Ieee => MacAddr::ALL_BRIDGES,
            StpVariant::Dec => MacAddr::DEC_BRIDGES,
        }
    }

    /// Encode a BPDU in this variant's format.
    pub fn emit(self, bpdu: &Bpdu) -> Vec<u8> {
        match self {
            StpVariant::Ieee => ieee::emit(bpdu),
            StpVariant::Dec => dec::emit(bpdu),
        }
    }

    /// Decode a BPDU in this variant's format.
    pub fn parse(self, buf: &[u8]) -> Option<Bpdu> {
        match self {
            StpVariant::Ieee => ieee::parse(buf),
            StpVariant::Dec => dec::parse(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfigBpdu {
        ConfigBpdu {
            root: BridgeId::new(0x8000, MacAddr::local(1)),
            root_cost: 100,
            bridge: BridgeId::new(0x8000, MacAddr::local(2)),
            port: 2,
            message_age: 1,
            max_age: 20,
            hello_time: 2,
            forward_delay: 15,
            tc: false,
            tca: false,
        }
    }

    #[test]
    fn ieee_roundtrip() {
        let b = Bpdu::Config(sample());
        assert_eq!(ieee::parse(&ieee::emit(&b)), Some(b));
        assert_eq!(ieee::parse(&ieee::emit(&Bpdu::Tcn)), Some(Bpdu::Tcn));
    }

    #[test]
    fn dec_roundtrip() {
        let b = Bpdu::Config(sample());
        assert_eq!(dec::parse(&dec::emit(&b)), Some(b));
        assert_eq!(dec::parse(&dec::emit(&Bpdu::Tcn)), Some(Bpdu::Tcn));
    }

    #[test]
    fn formats_are_mutually_unintelligible() {
        let b = Bpdu::Config(sample());
        assert_eq!(dec::parse(&ieee::emit(&b)), None);
        assert_eq!(ieee::parse(&dec::emit(&b)), None);
    }

    #[test]
    fn bridge_id_ordering() {
        let low_prio = BridgeId::new(0x1000, MacAddr::local(9));
        let high_prio = BridgeId::new(0x8000, MacAddr::local(1));
        assert!(low_prio < high_prio, "priority dominates");
        let a = BridgeId::new(0x8000, MacAddr::local(1));
        let b = BridgeId::new(0x8000, MacAddr::local(2));
        assert!(a < b, "mac breaks ties");
    }

    #[test]
    fn variant_addresses_differ() {
        assert_ne!(StpVariant::Ieee.group_addr(), StpVariant::Dec.group_addr());
    }

    #[test]
    fn truncated_rejected() {
        let b = Bpdu::Config(sample());
        let enc = ieee::emit(&b);
        assert_eq!(ieee::parse(&enc[..20]), None);
        let enc = dec::emit(&b);
        assert_eq!(dec::parse(&enc[..10]), None);
    }

    #[test]
    fn tc_flags_roundtrip() {
        let mut c = sample();
        c.tc = true;
        c.tca = true;
        let b = Bpdu::Config(c);
        assert_eq!(ieee::parse(&ieee::emit(&b)), Some(b));
        assert_eq!(dec::parse(&dec::emit(&b)), Some(b));
    }
}
