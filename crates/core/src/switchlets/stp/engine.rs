//! The spanning-tree protocol engine (classic 802.1D semantics).
//!
//! A pure state machine: inputs are received configuration BPDUs and a
//! 1 Hz tick; outputs are [`StpAction`]s (BPDUs to transmit, port-state
//! changes to apply through the bridge's access points). Both the IEEE
//! switchlet and the DEC-style switchlet wrap the same engine with
//! different codecs and group addresses — exactly the paper's construction,
//! which changed only the packet format (footnote 4).
//!
//! The algorithm is Perlman's distributed spanning tree:
//!
//! 1. every bridge initially believes it is the root;
//! 2. configuration BPDUs carry `(root, cost, bridge, port)` vectors,
//!    compared lexicographically (lower is better);
//! 3. each port remembers the best vector it has heard (aged out after
//!    `max_age`); the best of those + the port's path cost elects the
//!    root and the root port;
//! 4. a port on which our own vector beats everything heard is
//!    *designated* and transmits; everything else blocks;
//! 5. newly active ports walk Blocking → Listening → Learning →
//!    Forwarding, each stage taking `forward_delay` — the source of the
//!    paper's ~30 s re-convergence figure (Section 7.5).

use netsim::{SimDuration, SimTime};

use crate::config::StpTimers;
use crate::switchlets::stp::bpdu::{BridgeId, ConfigBpdu};

/// Port states, as in 802.1D.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PortState {
    /// Administratively down (not used by the engine itself).
    Disabled,
    /// Receives BPDUs only; no learning, no forwarding.
    Blocking,
    /// Transitional: participates in STP, still no learning/forwarding.
    Listening,
    /// Learns addresses, does not forward.
    Learning,
    /// Full operation.
    Forwarding,
}

impl PortState {
    /// May data frames be forwarded to/from this port?
    pub fn forwards(self) -> bool {
        matches!(self, PortState::Forwarding)
    }

    /// May source addresses be learned on this port?
    pub fn learns(self) -> bool {
        matches!(self, PortState::Learning | PortState::Forwarding)
    }
}

/// Port roles.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PortRole {
    /// Path toward the root.
    Root,
    /// We transmit configuration BPDUs here.
    Designated,
    /// Redundant path: blocked.
    Blocked,
}

/// The priority vector carried in configuration BPDUs.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct PriorityVector {
    /// Claimed root.
    pub root: BridgeId,
    /// Cost to that root.
    pub cost: u32,
    /// Transmitting bridge.
    pub bridge: BridgeId,
    /// Transmitting port.
    pub port: u16,
}

/// What the engine wants done.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StpAction {
    /// Transmit a configuration BPDU on a port.
    SendConfig {
        /// Engine port index (0-based).
        port: usize,
        /// The BPDU.
        config: ConfigBpdu,
    },
    /// Apply a port state through the bridge access points.
    SetPortState {
        /// Engine port index (0-based).
        port: usize,
        /// New state.
        state: PortState,
    },
}

#[derive(Clone, Debug)]
struct StpPort {
    path_cost: u32,
    role: PortRole,
    state: PortState,
    /// When the current transitional state was entered.
    state_since: SimTime,
    /// Best information heard on this port, with its expiry.
    stored: Option<(PriorityVector, SimTime)>,
}

/// Injectable defect for the paper's fallback experiment ("If the spanning
/// tree does not converge to the expected values ... there must be a bug
/// in the new protocol implementation").
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Defect {
    /// Correct behaviour.
    #[default]
    None,
    /// The election comparator is inverted: the *worst* root wins. The
    /// protocol still runs and converges — to the wrong tree.
    InvertedElection,
}

/// The engine.
#[derive(Clone, Debug)]
pub struct StpEngine {
    bridge_id: BridgeId,
    timers: StpTimers,
    ports: Vec<StpPort>,
    root: BridgeId,
    root_cost: u32,
    root_port: Option<usize>,
    last_hello: SimTime,
    defect: Defect,
    /// BPDUs processed (stats).
    pub bpdus_received: u64,
    /// BPDUs emitted (stats).
    pub bpdus_sent: u64,
}

/// A comparable summary of the tree this node computed — what the paper's
/// control switchlet captures from the old protocol and checks against the
/// new one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StpSnapshot {
    /// Elected root (MAC only: the two protocols may use different
    /// priority encodings, the physical root must agree).
    pub root_mac: ether::MacAddr,
    /// Our cost to the root.
    pub root_cost: u32,
    /// Our root port.
    pub root_port: Option<usize>,
    /// Role of every port.
    pub roles: Vec<PortRole>,
}

impl StpEngine {
    /// Create an engine for `n_ports` ports with uniform `path_cost`
    /// (100 is the classic 10 Mb/s-era constant; the port cost only needs
    /// to be consistent across bridges for tree agreement).
    pub fn new(
        bridge_id: BridgeId,
        n_ports: usize,
        path_cost: u32,
        timers: StpTimers,
        now: SimTime,
    ) -> (StpEngine, Vec<StpAction>) {
        let mut engine = StpEngine {
            bridge_id,
            timers,
            ports: (0..n_ports)
                .map(|_| StpPort {
                    path_cost,
                    role: PortRole::Designated,
                    state: PortState::Blocking,
                    state_since: now,
                    stored: None,
                })
                .collect(),
            root: bridge_id,
            root_cost: 0,
            root_port: None,
            last_hello: now,
            defect: Defect::None,
            bpdus_received: 0,
            bpdus_sent: 0,
        };
        let mut actions = engine.recompute(now);
        // Startup hello burst: announce ourselves as root.
        actions.extend(engine.send_hellos(now));
        (engine, actions)
    }

    /// Inject a defect (for the fallback experiment).
    pub fn set_defect(&mut self, defect: Defect) {
        self.defect = defect;
    }

    /// Our bridge id.
    pub fn bridge_id(&self) -> BridgeId {
        self.bridge_id
    }

    /// The elected root.
    pub fn root(&self) -> BridgeId {
        self.root
    }

    /// True if we believe we are the root.
    pub fn is_root(&self) -> bool {
        self.root == self.bridge_id
    }

    /// Current state of a port.
    pub fn port_state(&self, port: usize) -> PortState {
        self.ports[port].state
    }

    /// Current role of a port.
    pub fn port_role(&self, port: usize) -> PortRole {
        self.ports[port].role
    }

    /// Comparable summary of the computed tree.
    pub fn snapshot(&self) -> StpSnapshot {
        StpSnapshot {
            root_mac: self.root.mac,
            root_cost: self.root_cost,
            root_port: self.root_port,
            roles: self.ports.iter().map(|p| p.role).collect(),
        }
    }

    fn better(&self, a: &PriorityVector, b: &PriorityVector) -> bool {
        match self.defect {
            Defect::None => a < b,
            Defect::InvertedElection => {
                // Invert only the root comparison — the defect converges
                // to a wrong-rooted tree instead of diverging entirely.
                if a.root != b.root {
                    a.root > b.root
                } else {
                    (a.cost, a.bridge, a.port) < (b.cost, b.bridge, b.port)
                }
            }
        }
    }

    /// Our advertisement on `port`.
    fn our_vector(&self, port: usize) -> PriorityVector {
        PriorityVector {
            root: self.root,
            cost: self.root_cost,
            bridge: self.bridge_id,
            port: (port + 1) as u16,
        }
    }

    /// Handle a received configuration BPDU.
    pub fn on_config(&mut self, port: usize, config: &ConfigBpdu, now: SimTime) -> Vec<StpAction> {
        self.bpdus_received += 1;
        let vector = PriorityVector {
            root: config.root,
            cost: config.root_cost,
            bridge: config.bridge,
            port: config.port,
        };
        let life_s = config.max_age.saturating_sub(config.message_age).max(1) as u64;
        let expires = now + SimDuration::from_secs(life_s);
        let p = &mut self.ports[port];
        let replace = match &p.stored {
            None => true,
            Some((stored, _)) => {
                let stored = *stored;
                // Fresh info from the same transmitter always refreshes;
                // otherwise only superior info displaces the stored vector.
                stored.bridge == vector.bridge && stored.port == vector.port
                    || self.better(&vector, &stored)
            }
        };
        if replace {
            self.ports[port].stored = Some((vector, expires));
        }
        let mut actions = self.recompute(now);
        // Classic relay: information from the root port propagates out of
        // the designated ports immediately.
        if self.root_port == Some(port) {
            actions.extend(self.send_hellos(now));
        } else if self.ports[port].role == PortRole::Designated {
            // Someone inferior is transmitting on our designated segment:
            // answer with our own (superior) configuration.
            let cfg = self.config_for(port);
            self.bpdus_sent += 1;
            actions.push(StpAction::SendConfig { port, config: cfg });
        }
        actions
    }

    /// 1 Hz housekeeping tick: expiry, state progression, hellos.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<StpAction> {
        let mut actions = Vec::new();
        // Expire stored information.
        let mut expired_any = false;
        for p in &mut self.ports {
            if let Some((_, expires)) = p.stored {
                if expires <= now {
                    p.stored = None;
                    expired_any = true;
                }
            }
        }
        if expired_any {
            actions.extend(self.recompute(now));
        }
        // Progress transitional states.
        for i in 0..self.ports.len() {
            let p = &self.ports[i];
            if matches!(p.role, PortRole::Root | PortRole::Designated) {
                let elapsed = now.saturating_since(p.state_since);
                let next = match p.state {
                    PortState::Listening if elapsed >= self.timers.forward_delay => {
                        Some(PortState::Learning)
                    }
                    PortState::Learning if elapsed >= self.timers.forward_delay => {
                        Some(PortState::Forwarding)
                    }
                    _ => None,
                };
                if let Some(state) = next {
                    self.ports[i].state = state;
                    self.ports[i].state_since = now;
                    actions.push(StpAction::SetPortState { port: i, state });
                }
            }
        }
        // Root sends hellos.
        if self.is_root() && now.saturating_since(self.last_hello) >= self.timers.hello {
            actions.extend(self.send_hellos(now));
        }
        actions
    }

    fn config_for(&self, port: usize) -> ConfigBpdu {
        // Message age: zero from the root; one hop added per relay.
        let message_age = if self.is_root() { 0 } else { 1 };
        ConfigBpdu {
            root: self.root,
            root_cost: self.root_cost,
            bridge: self.bridge_id,
            port: (port + 1) as u16,
            message_age,
            max_age: (self.timers.max_age.as_ns() / 1_000_000_000) as u16,
            hello_time: (self.timers.hello.as_ns() / 1_000_000_000) as u16,
            forward_delay: (self.timers.forward_delay.as_ns() / 1_000_000_000) as u16,
            tc: false,
            tca: false,
        }
    }

    fn send_hellos(&mut self, now: SimTime) -> Vec<StpAction> {
        self.last_hello = now;
        let mut out = Vec::new();
        for i in 0..self.ports.len() {
            if self.ports[i].role == PortRole::Designated
                && self.ports[i].state != PortState::Disabled
            {
                self.bpdus_sent += 1;
                out.push(StpAction::SendConfig {
                    port: i,
                    config: self.config_for(i),
                });
            }
        }
        out
    }

    /// Re-run the election and role assignment; emit state changes.
    fn recompute(&mut self, now: SimTime) -> Vec<StpAction> {
        // Elect the root.
        let mut best: Option<(PriorityVector, usize)> = None;
        for (i, p) in self.ports.iter().enumerate() {
            if let Some((stored, _)) = &p.stored {
                let mut candidate = *stored;
                candidate.cost = candidate.cost.saturating_add(p.path_cost);
                let is_better = match &best {
                    None => true,
                    Some((b, bi)) => self.better(&candidate, b) || (candidate == *b && i < *bi),
                };
                if is_better {
                    best = Some((candidate, i));
                }
            }
        }
        let we_are_root = match &best {
            None => true,
            // Compare root claims: our id vs the best heard root.
            Some((b, _)) => match self.defect {
                Defect::None => self.bridge_id <= b.root,
                Defect::InvertedElection => self.bridge_id >= b.root,
            },
        };
        if we_are_root {
            self.root = self.bridge_id;
            self.root_cost = 0;
            self.root_port = None;
        } else {
            let (b, i) = best.expect("non-root implies a best candidate");
            self.root = b.root;
            self.root_cost = b.cost;
            self.root_port = Some(i);
        }

        // Assign roles.
        let mut actions = Vec::new();
        for i in 0..self.ports.len() {
            let role = if Some(i) == self.root_port {
                PortRole::Root
            } else {
                let ours = self.our_vector(i);
                let designated = match &self.ports[i].stored {
                    None => true,
                    Some((stored, _)) => {
                        stored.bridge == self.bridge_id || self.better(&ours, stored)
                    }
                };
                if designated {
                    PortRole::Designated
                } else {
                    PortRole::Blocked
                }
            };
            let p = &mut self.ports[i];
            let old_role = p.role;
            p.role = role;
            match role {
                PortRole::Blocked => {
                    if p.state != PortState::Blocking {
                        p.state = PortState::Blocking;
                        p.state_since = now;
                        actions.push(StpAction::SetPortState {
                            port: i,
                            state: PortState::Blocking,
                        });
                    }
                }
                PortRole::Root | PortRole::Designated => {
                    if p.state == PortState::Blocking
                        || (old_role == PortRole::Blocked && p.state == PortState::Disabled)
                    {
                        p.state = PortState::Listening;
                        p.state_since = now;
                        actions.push(StpAction::SetPortState {
                            port: i,
                            state: PortState::Listening,
                        });
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ether::MacAddr;

    fn id(n: u32) -> BridgeId {
        BridgeId::new(0x8000, MacAddr::local(n))
    }

    fn timers() -> StpTimers {
        StpTimers::default()
    }

    /// Drive a set of engines on shared segments until quiescent.
    /// `wiring[b][p]` = segment index of bridge b's port p.
    fn converge(engines: &mut [StpEngine], wiring: &[Vec<usize>], seconds: u64) {
        let mut now = SimTime::ZERO;
        for _ in 0..seconds {
            now += SimDuration::from_secs(1);
            // Collect tick actions, then deliver SendConfigs.
            let mut deliveries: Vec<(usize, usize, ConfigBpdu)> = Vec::new(); // (to_bridge, to_port, bpdu)
            for (b, engine) in engines.iter_mut().enumerate() {
                for action in engine.on_tick(now) {
                    if let StpAction::SendConfig { port, config } = action {
                        let seg = wiring[b][port];
                        for (ob, ports) in wiring.iter().enumerate() {
                            if ob == b {
                                continue;
                            }
                            for (op, oseg) in ports.iter().enumerate() {
                                if *oseg == seg {
                                    deliveries.push((ob, op, config));
                                }
                            }
                        }
                    }
                }
            }
            // Deliver, possibly generating relays, for a few rounds.
            let mut rounds = 0;
            while !deliveries.is_empty() && rounds < 8 {
                rounds += 1;
                let mut next = Vec::new();
                for (b, p, cfg) in deliveries.drain(..) {
                    for action in engines[b].on_config(p, &cfg, now) {
                        if let StpAction::SendConfig { port, config } = action {
                            let seg = wiring[b][port];
                            for (ob, ports) in wiring.iter().enumerate() {
                                if ob == b {
                                    continue;
                                }
                                for (op, oseg) in ports.iter().enumerate() {
                                    if *oseg == seg {
                                        next.push((ob, op, config));
                                    }
                                }
                            }
                        }
                    }
                }
                deliveries = next;
            }
        }
    }

    #[test]
    fn lone_bridge_is_root_and_forwards() {
        let (mut e, actions) = StpEngine::new(id(1), 2, 100, timers(), SimTime::ZERO);
        assert!(e.is_root());
        // Starts listening on both designated ports.
        assert!(actions.iter().any(|a| matches!(
            a,
            StpAction::SetPortState {
                state: PortState::Listening,
                ..
            }
        )));
        // After 2 x forward_delay of ticks, both ports forward.
        let mut now = SimTime::ZERO;
        for _ in 0..31 {
            now += SimDuration::from_secs(1);
            e.on_tick(now);
        }
        assert_eq!(e.port_state(0), PortState::Forwarding);
        assert_eq!(e.port_state(1), PortState::Forwarding);
    }

    #[test]
    fn two_bridges_elect_lower_id() {
        let mut engines = [
            StpEngine::new(id(1), 2, 100, timers(), SimTime::ZERO).0,
            StpEngine::new(id(2), 2, 100, timers(), SimTime::ZERO).0,
        ];
        // a.port1 and b.port0 share segment 1; a.port0 on seg 0, b.port1 on seg 2.
        let wiring = vec![vec![0, 1], vec![1, 2]];
        converge(&mut engines, &wiring, 5);
        assert!(engines[0].is_root());
        assert!(!engines[1].is_root());
        assert_eq!(engines[1].root(), id(1));
        assert_eq!(engines[1].snapshot().root_port, Some(0));
    }

    #[test]
    fn ring_of_three_blocks_exactly_one_port() {
        // Three bridges in a ring: segments 0,1,2; bridge i has ports on
        // segments i and (i+1)%3.
        let mut engines: Vec<StpEngine> = (0..3)
            .map(|i| StpEngine::new(id(i as u32 + 1), 2, 100, timers(), SimTime::ZERO).0)
            .collect();
        let wiring = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        converge(&mut engines, &wiring, 40);
        // Bridge 1 (lowest id) is root.
        assert!(engines[0].is_root());
        assert!(!engines[1].is_root());
        assert!(!engines[2].is_root());
        // Exactly one port in the whole ring is blocked.
        let blocked: usize = engines
            .iter()
            .map(|e| {
                e.snapshot()
                    .roles
                    .iter()
                    .filter(|r| **r == PortRole::Blocked)
                    .count()
            })
            .sum();
        assert_eq!(blocked, 1, "a ring must block exactly one port");
        // Everything not blocked eventually forwards.
        for e in &engines {
            for p in 0..2 {
                if e.port_role(p) != PortRole::Blocked {
                    assert_eq!(
                        e.port_state(p),
                        PortState::Forwarding,
                        "port {p} of {} should forward",
                        e.bridge_id()
                    );
                }
            }
        }
    }

    #[test]
    fn snapshots_agree_across_ring() {
        let mut engines: Vec<StpEngine> = (0..3)
            .map(|i| StpEngine::new(id(i as u32 + 1), 2, 100, timers(), SimTime::ZERO).0)
            .collect();
        let wiring = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        converge(&mut engines, &wiring, 40);
        for e in &engines {
            assert_eq!(e.snapshot().root_mac, MacAddr::local(1));
        }
    }

    #[test]
    fn inverted_election_picks_wrong_root() {
        let mut engines: Vec<StpEngine> = (0..3)
            .map(|i| {
                let (mut e, _) = StpEngine::new(id(i as u32 + 1), 2, 100, timers(), SimTime::ZERO);
                e.set_defect(Defect::InvertedElection);
                e
            })
            .collect();
        let wiring = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        converge(&mut engines, &wiring, 40);
        // The defective protocol converges — to the *highest* id.
        assert_eq!(engines[0].snapshot().root_mac, MacAddr::local(3));
        assert_eq!(engines[2].snapshot().root_mac, MacAddr::local(3));
    }

    #[test]
    fn stored_info_expires_and_reverts_to_root_claim() {
        let (mut e, _) = StpEngine::new(id(5), 1, 100, timers(), SimTime::ZERO);
        let cfg = ConfigBpdu {
            root: id(1),
            root_cost: 0,
            bridge: id(1),
            port: 1,
            message_age: 0,
            max_age: 20,
            hello_time: 2,
            forward_delay: 15,
            tc: false,
            tca: false,
        };
        e.on_config(0, &cfg, SimTime::from_secs(1));
        assert!(!e.is_root());
        // No refresh: after max_age the info dies and we claim root again.
        let mut now = SimTime::from_secs(1);
        for _ in 0..25 {
            now += SimDuration::from_secs(1);
            e.on_tick(now);
        }
        assert!(e.is_root(), "expired info must revert to own root claim");
    }

    #[test]
    fn designated_port_answers_inferior_transmitter() {
        let (mut e, _) = StpEngine::new(id(1), 1, 100, timers(), SimTime::ZERO);
        // An inferior bridge claims root on our segment.
        let cfg = ConfigBpdu {
            root: id(9),
            root_cost: 0,
            bridge: id(9),
            port: 1,
            message_age: 0,
            max_age: 20,
            hello_time: 2,
            forward_delay: 15,
            tc: false,
            tca: false,
        };
        let actions = e.on_config(0, &cfg, SimTime::from_secs(1));
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, StpAction::SendConfig { port: 0, .. })),
            "designated port must respond to an inferior claim"
        );
        assert!(e.is_root());
    }
}
