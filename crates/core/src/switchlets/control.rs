//! The control switchlet: automatic protocol transition with validation
//! and fallback (paper Section 5.4, Table 1).
//!
//! Preconditions (checked at load): the DEC switchlet is operating, the
//! 802.1D switchlet is loaded but not. The control switchlet then owns
//! the All Bridges address and waits.
//!
//! | event           | DEC       | IEEE    | control action |
//! |-----------------|-----------|---------|----------------|
//! | load/start      | running   | loaded  | monitor        |
//! | recv IEEE packet| suspended | running | suspend DEC; capture DEC state; start IEEE |
//! | 30 seconds      | loaded    | running | suppress DEC packets |
//! | 60 seconds      | loaded    | running | perform tests  |
//! | pass tests      | loaded    | running | terminate      |
//! | fail tests / late DEC packet | running | loaded | stop IEEE; start DEC; fall back (stable until human intervention) |
//!
//! Validation uses "information unavailable to the implementors of either
//! protocol": the operator knows the two protocols must compute the same
//! tree on this topology, so the control switchlet captures the DEC
//! engine's snapshot at suspension and compares the IEEE engine's
//! snapshot against it at the 60-second mark.

use ether::MacAddr;
use netsim::{PortId, SimTime};

use crate::bridge::{BridgeCommand, BridgeCtx, DataFrame, NativeSwitchlet};
use crate::switchlets::stp::engine::StpSnapshot;
use crate::switchlets::stp::{DEC_NAME, IEEE_NAME};

/// The switchlet's unit name.
pub const NAME: &str = "control";

const TOKEN_TEST: u32 = 1;
const TOKEN_SUPPRESS_END: u32 = 2;

/// Where the transition stands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for the first new-protocol packet.
    Monitoring,
    /// New protocol running; old packets suppressed; tests pending.
    Transition {
        /// When the transition began.
        started: SimTime,
    },
    /// Terminal state.
    Stable {
        /// True if the transition was rolled back.
        fallback: bool,
    },
}

/// One Table 1 row as it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionEvent {
    /// When.
    pub at: SimTime,
    /// What ("recv IEEE packet", "pass tests", ...).
    pub what: String,
}

/// The control switchlet.
pub struct ControlSwitchlet {
    phase: Phase,
    captured: Option<StpSnapshot>,
    /// DEC packets suppressed during the transition window.
    pub dec_suppressed: u64,
    /// IEEE packets suppressed after a fallback.
    pub ieee_suppressed: u64,
    /// The event log (drives the Table 1 reproduction).
    pub events: Vec<TransitionEvent>,
}

impl Default for ControlSwitchlet {
    fn default() -> Self {
        ControlSwitchlet {
            phase: Phase::Monitoring,
            captured: None,
            dec_suppressed: 0,
            ieee_suppressed: 0,
            events: Vec::new(),
        }
    }
}

impl ControlSwitchlet {
    /// Current phase.
    pub fn phase(&self) -> &Phase {
        &self.phase
    }

    /// The DEC snapshot captured at suspension.
    pub fn captured(&self) -> Option<&StpSnapshot> {
        self.captured.as_ref()
    }

    fn record(&mut self, bc: &mut BridgeCtx<'_, '_>, what: impl Into<String>) {
        let what = what.into();
        bc.log(format!("control: {what}"));
        self.events.push(TransitionEvent { at: bc.now(), what });
    }

    fn begin_transition(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        // Capture the old protocol's accumulated spanning-tree state at
        // the moment of its termination.
        self.captured = bc.plane.published.get(DEC_NAME).cloned();
        self.record(bc, "recv IEEE packet: suspend DEC; capture DEC state");
        bc.command(BridgeCommand::Suspend(DEC_NAME.into()));
        bc.command(BridgeCommand::Resume(IEEE_NAME.into()));
        // Hand the All Bridges address to 802.1D; listen to DEC's address
        // ourselves (to suppress and to detect stragglers).
        bc.plane.register_addr(MacAddr::ALL_BRIDGES, IEEE_NAME);
        bc.plane.register_addr(MacAddr::DEC_BRIDGES, NAME);
        self.record(bc, "start IEEE");
        self.phase = Phase::Transition { started: bc.now() };
        bc.schedule(bc.cfg.transition.suppress_window, TOKEN_SUPPRESS_END);
        bc.schedule(bc.cfg.transition.test_at, TOKEN_TEST);
    }

    fn fall_back(&mut self, bc: &mut BridgeCtx<'_, '_>, why: &str) {
        self.record(bc, format!("fallback ({why}): stop IEEE; start DEC"));
        bc.command(BridgeCommand::Suspend(IEEE_NAME.into()));
        bc.command(BridgeCommand::Resume(DEC_NAME.into()));
        // The old protocol listens to its own address again; we take the
        // new protocol's address and suppress whatever arrives there.
        bc.plane.register_addr(MacAddr::DEC_BRIDGES, DEC_NAME);
        bc.plane.register_addr(MacAddr::ALL_BRIDGES, NAME);
        // "Once this fallback has occurred, the network is considered
        // stable and no further transition will occur without human
        // intervention."
        self.phase = Phase::Stable { fallback: true };
    }

    fn perform_tests(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        self.record(bc, "60 seconds: perform tests");
        let ieee = bc.plane.published.get(IEEE_NAME).cloned();
        let passed = match (&self.captured, &ieee) {
            (Some(old), Some(new)) => {
                // The operator's local knowledge: on this topology the
                // trees must agree exactly.
                old.root_mac == new.root_mac
                    && old.root_cost == new.root_cost
                    && old.root_port == new.root_port
                    && old.roles == new.roles
            }
            _ => false,
        };
        if passed {
            self.record(bc, "pass tests: terminate");
            // 802.1D keeps the All Bridges address; nobody needs the DEC
            // address any more.
            bc.plane.unregister_addr(MacAddr::DEC_BRIDGES);
            self.phase = Phase::Stable { fallback: false };
            bc.command(BridgeCommand::Stop(NAME.into()));
        } else {
            self.fall_back(bc, "spanning tree did not converge to expected values");
        }
    }
}

impl NativeSwitchlet for ControlSwitchlet {
    fn name(&self) -> &'static str {
        NAME
    }

    fn on_install(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        // "In order to load the control switchlet, both the 802.1D
        // switchlet and the DEC switchlet must already be loaded. It
        // checks that the DEC switchlet is operating and that the 802.1D
        // switchlet is not."
        if !bc.plane.is_running(DEC_NAME) {
            self.record(bc, "precondition failed: DEC not operating; stopping");
            bc.command(BridgeCommand::Stop(NAME.into()));
            return;
        }
        if !bc.plane.is_loaded(IEEE_NAME) || bc.plane.is_running(IEEE_NAME) {
            self.record(
                bc,
                "precondition failed: IEEE must be loaded, dormant; stopping",
            );
            bc.command(BridgeCommand::Stop(NAME.into()));
            return;
        }
        // "It then arranges to receive any packets addressed to the All
        // Bridges multicast address."
        bc.plane.register_addr(MacAddr::ALL_BRIDGES, NAME);
        self.record(bc, "monitoring (DEC running, IEEE loaded)");
    }

    fn on_registered_frame(
        &mut self,
        bc: &mut BridgeCtx<'_, '_>,
        _port: PortId,
        frame: &DataFrame<'_>,
    ) {
        let dst = frame.dst();
        match (&self.phase, dst) {
            (Phase::Monitoring, d) if d == MacAddr::ALL_BRIDGES => {
                // "When an 802.1D packet arrives, the control switchlet
                // assumes that the network is transitioning to the new
                // protocol."
                self.begin_transition(bc);
            }
            (Phase::Transition { started }, d) if d == MacAddr::DEC_BRIDGES => {
                let started = *started;
                let elapsed = bc.now().saturating_since(started);
                if elapsed <= bc.cfg.transition.suppress_window {
                    self.dec_suppressed += 1;
                } else {
                    self.fall_back(bc, "DEC packet after initial transition period");
                }
            }
            (Phase::Stable { fallback: true }, d) if d == MacAddr::ALL_BRIDGES => {
                self.ieee_suppressed += 1;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, bc: &mut BridgeCtx<'_, '_>, user: u32) {
        match (user, &self.phase) {
            (TOKEN_SUPPRESS_END, Phase::Transition { .. }) => {
                self.record(bc, "30 seconds: end of DEC suppression window");
            }
            (TOKEN_TEST, Phase::Transition { .. }) => {
                self.perform_tests(bc);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}
