//! The bridge switchlets: the three of Section 5.3 (dumb, learning,
//! spanning tree), the DEC-style variant and control switchlet of
//! Section 5.4, and a bytecode edition of the dumb data path.

pub mod control;
pub mod dumb;
pub mod dumb_vm;
pub mod learning;
pub mod stp;
pub mod trap_vm;

use std::collections::HashMap;

use crate::bridge::{NativeFactory, NativeSwitchlet};
use crate::loader::NetLoader;

/// The native switchlet factories every bridge knows out of the box
/// (its "disk"). Experiments may override entries — e.g. replacing
/// `stp_ieee` with a defect-injected build for the fallback run.
pub fn default_factories() -> HashMap<String, NativeFactory> {
    let mut map: HashMap<String, NativeFactory> = HashMap::new();
    map.insert(
        crate::loader::NAME.into(),
        Box::new(|_| Box::new(NetLoader::default()) as Box<dyn NativeSwitchlet>),
    );
    map.insert(
        dumb::NAME.into(),
        Box::new(|_| Box::new(dumb::DumbBridge::default()) as Box<dyn NativeSwitchlet>),
    );
    map.insert(
        learning::NAME.into(),
        Box::new(|_| Box::new(learning::LearningBridge::default()) as Box<dyn NativeSwitchlet>),
    );
    map.insert(
        stp::IEEE_NAME.into(),
        Box::new(|_| Box::new(stp::StpSwitchlet::ieee()) as Box<dyn NativeSwitchlet>),
    );
    map.insert(
        stp::DEC_NAME.into(),
        Box::new(|_| Box::new(stp::StpSwitchlet::dec()) as Box<dyn NativeSwitchlet>),
    );
    map.insert(
        control::NAME.into(),
        Box::new(|_| Box::new(control::ControlSwitchlet::default()) as Box<dyn NativeSwitchlet>),
    );
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_standard_switchlets_present() {
        let f = default_factories();
        for name in [
            "netloader",
            "bridge_dumb",
            "bridge_learning",
            "stp_ieee",
            "stp_dec",
            "control",
        ] {
            assert!(f.contains_key(name), "missing factory {name}");
        }
    }
}
