//! The dumb-bridge data path, written in switchlet bytecode.
//!
//! This is the reproduction's "real" loadable switchlet: the same flooding
//! behaviour as [`crate::switchlets::dumb::DumbBridge`], but authored with
//! the assembler, shipped as verified byte codes, loaded over TFTP, and
//! executed by the VM per frame. Integration tests check behavioural
//! equivalence against the native implementation, and the VM's measured
//! per-frame instruction cost feeds the interpreted-forwarding discussion
//! in EXPERIMENTS.md (the analogue of the paper's 0.47 ms Caml cost).

use switchlet::{ModuleBuilder, Op, Ty};

use crate::hostmods::handler_ty;

/// The module name the image loads under.
pub const NAME: &str = "vm_dumb";

/// Build the loadable image.
pub fn build_image() -> Vec<u8> {
    let mut mb = ModuleBuilder::new(NAME);
    let oport = Ty::named("oport");
    let i_num = mb.import("unixnet", "num_ports", Ty::func(vec![], Ty::Int));
    let i_bind = mb.import(
        "unixnet",
        "bind_out",
        Ty::func(vec![Ty::Int], oport.clone()),
    );
    let i_send = mb.import(
        "unixnet",
        "send_pkt_out",
        Ty::func(vec![oport.clone(), Ty::Str], Ty::Int),
    );
    let i_reg = mb.import(
        "func",
        "register_handler",
        Ty::func(vec![Ty::Str, handler_ty()], Ty::Unit),
    );
    let i_log = mb.import("log", "msg", Ty::func(vec![Ty::Str], Ty::Unit));

    // handler(frame: str, inport: int) -> unit
    let mut f = mb.func("switching", vec![Ty::Str, Ty::Int], Ty::Unit);
    let n = f.local(Ty::Int);
    let p = f.local(Ty::Int);
    f.op(Op::CallImport(i_num)).op(Op::LocalSet(n));
    f.op(Op::ConstInt(0)).op(Op::LocalSet(p));
    let head = f.new_label();
    let next = f.new_label();
    let exit = f.new_label();
    f.place(head);
    // while p < n
    f.op(Op::LocalGet(p)).op(Op::LocalGet(n)).op(Op::Ge);
    f.br_if(exit);
    // skip the arrival port ("all network interfaces except for the one
    // on which it was received")
    f.op(Op::LocalGet(p)).op(Op::LocalGet(1)).op(Op::Eq);
    f.br_if(next);
    f.op(Op::LocalGet(p)).op(Op::CallImport(i_bind));
    f.op(Op::LocalGet(0));
    f.op(Op::CallImport(i_send)).op(Op::Pop);
    f.place(next);
    f.op(Op::LocalGet(p)).op(Op::ConstInt(1)).op(Op::Add);
    f.op(Op::LocalSet(p));
    f.jump(head);
    f.place(exit);
    f.op(Op::ConstUnit).op(Op::Return);
    let handler_idx = mb.finish(f);
    mb.export("switching", handler_idx);

    // init: log a message, then register the switching function.
    let banner = mb.intern_str(b"vm dumb bridge: flooding installed");
    let key = mb.intern_str(b"switching");
    let mut init = mb.func("init", vec![], Ty::Unit);
    init.op(Op::ConstStr(banner))
        .op(Op::CallImport(i_log))
        .op(Op::Pop);
    init.op(Op::ConstStr(key));
    init.op(Op::FuncConst(handler_idx));
    init.op(Op::CallImport(i_reg));
    init.op(Op::Return);
    let init_idx = mb.finish(init);
    mb.set_init(init_idx);

    mb.build().encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchlet::{verify_module, Module};

    #[test]
    fn image_decodes_and_verifies() {
        let image = build_image();
        let module = Module::decode(&image).expect("well-formed image");
        assert_eq!(module.name, NAME);
        verify_module(&module).expect("statically type-safe");
        assert!(module.init.is_some(), "has registration forms");
    }

    #[test]
    fn image_is_deterministic() {
        assert_eq!(build_image(), build_image());
    }
}
