//! Switchlet 2: the self-learning bridge.
//!
//! Paper Section 5.3: "This switchlet replaces the switching function from
//! the dumb bridge with one that learns the locations of the hosts on the
//! network. For each packet received, the triple (source address, current
//! time, input port) is placed into a hash table keyed by the source
//! address, replacing any previous entry. Next, the hash table is searched
//! for the destination address of the packet. If a match is found and is
//! current, the packet is sent out on the port indicated unless that was
//! the port on which the packet was received. If no match is found ... the
//! packet is sent out on all ports except the one on which it arrived."
//! Footnote 3 gives the group-address rules, implemented here and in
//! [`crate::plane::LearningTable::learn`].

use netsim::{PortId, SimDuration};

use crate::bridge::{BridgeCtx, DataFrame, NativeSwitchlet};
use crate::plane::DataPlaneSel;

/// The switchlet's unit name.
pub const NAME: &str = "bridge_learning";

const SWEEP_TOKEN: u32 = 1;
const SWEEP_EVERY: SimDuration = SimDuration::from_secs(60);

/// The learning switching function.
#[derive(Default)]
pub struct LearningBridge {
    /// Frames sent to a single learned port.
    pub directed: u64,
    /// Frames flooded for want of a (current) table entry.
    pub flooded: u64,
}

impl LearningBridge {
    fn flood(&mut self, bc: &mut BridgeCtx<'_, '_>, port: PortId, frame: &DataFrame<'_>) {
        // One refcounted buffer shared across every output port — the
        // flood path copies nothing.
        let mut sent = false;
        for p in 0..bc.num_ports() {
            if p != port.0 && bc.plane.flags[p].forward {
                bc.send_frame(PortId(p), frame.share());
                sent = true;
            }
        }
        if sent {
            self.flooded += 1;
            bc.plane.stats.flooded += 1;
            bc.plane.stats.bytes_forwarded += frame.len() as u64;
        } else {
            bc.plane.stats.blocked += 1;
        }
    }
}

impl NativeSwitchlet for LearningBridge {
    fn name(&self) -> &'static str {
        NAME
    }

    fn on_install(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        // Replace the switching function (the dumb bridge's part two).
        bc.plane.data_plane = DataPlaneSel::Native(NAME.into());
        bc.schedule(SWEEP_EVERY, SWEEP_TOKEN);
        bc.log("learning bridge installed: replaced switching function");
    }

    fn switch_frame(&mut self, bc: &mut BridgeCtx<'_, '_>, port: PortId, frame: &DataFrame<'_>) {
        if !bc.plane.flags[port.0].forward {
            bc.plane.stats.blocked += 1;
            return;
        }
        let now = bc.now();
        let src = frame.src();
        let dst = frame.dst();
        // Learn (footnote 3: skipped for group sources — enforced by the
        // table — and only on learning-enabled ports).
        if bc.plane.flags[port.0].learn {
            bc.plane.learn.learn(src, port, now);
        }
        // Group destinations always flood (footnote 3).
        if dst.is_multicast() {
            self.flood(bc, port, frame);
            return;
        }
        match bc.plane.learn.lookup(dst, now) {
            Some(out) if out == port => {
                // Destination is on the arrival segment: filter.
                bc.plane.stats.filtered += 1;
            }
            Some(out) if bc.plane.flags[out.0].forward => {
                bc.send_frame(out, frame.share());
                self.directed += 1;
                bc.plane.stats.directed += 1;
                bc.plane.stats.bytes_forwarded += frame.len() as u64;
            }
            // Entry points at a non-forwarding port (stale across a
            // topology change): fall back to flooding.
            Some(_) | None => self.flood(bc, port, frame),
        }
    }

    fn on_timer(&mut self, bc: &mut BridgeCtx<'_, '_>, user: u32) {
        if user == SWEEP_TOKEN {
            let now = bc.now();
            bc.plane.learn.sweep(now);
            bc.schedule(SWEEP_EVERY, SWEEP_TOKEN);
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}
