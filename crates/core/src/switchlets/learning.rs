//! Switchlet 2: the self-learning bridge.
//!
//! Paper Section 5.3: "This switchlet replaces the switching function from
//! the dumb bridge with one that learns the locations of the hosts on the
//! network. For each packet received, the triple (source address, current
//! time, input port) is placed into a hash table keyed by the source
//! address, replacing any previous entry. Next, the hash table is searched
//! for the destination address of the packet. If a match is found and is
//! current, the packet is sent out on the port indicated unless that was
//! the port on which the packet was received. If no match is found ... the
//! packet is sent out on all ports except the one on which it arrived."
//! Footnote 3 gives the group-address rules, implemented here and in
//! [`crate::plane::LearningTable::learn`].

use netsim::{PortId, SimDuration, SimTime};

use crate::bridge::{BridgeCtx, DataFrame, NativeSwitchlet};
use crate::plane::{DataPlaneSel, LearnOutcome, Verdict};

/// The switchlet's unit name.
pub const NAME: &str = "bridge_learning";

const SWEEP_TOKEN: u32 = 1;
const SWEEP_EVERY: SimDuration = SimDuration::from_secs(60);

/// Flight-recorder label for a verdict (static strings: recording a
/// decision allocates nothing).
fn verdict_label(v: Verdict) -> &'static str {
    match v {
        Verdict::Blocked => "blocked",
        Verdict::Filter => "filter",
        Verdict::Direct(_) => "direct",
        Verdict::Flood => "flood",
    }
}

/// The learning switching function.
///
/// Since PR 4 the per-flow verdict is memoized in the plane's
/// [`crate::plane::DecisionCache`]: a repeat unicast `(in-port, src,
/// dst)` under an unchanged decision generation replays the recorded
/// verdict — identical sends, identical counters, identical learn-table
/// refresh — without re-running the lookup pipeline. Any learn-table
/// mapping change, port-flag write, lifecycle transition or timer fire
/// bumps the generation and kills every cached verdict (see `plane.rs`).
#[derive(Default)]
pub struct LearningBridge {
    /// Frames sent to a single learned port.
    pub directed: u64,
    /// Frames flooded for want of a (current) table entry.
    pub flooded: u64,
}

impl LearningBridge {
    fn flood(&mut self, bc: &mut BridgeCtx<'_, '_>, port: PortId, frame: &DataFrame<'_>) {
        // One refcounted buffer shared across every output port — the
        // flood path copies nothing.
        let mut sent = false;
        for p in 0..bc.num_ports() {
            if p != port.0 && bc.plane.port_flags(p).forward {
                bc.send_frame(PortId(p), frame.share());
                sent = true;
            }
        }
        if sent {
            self.flooded += 1;
            bc.plane.stats.flooded += 1;
            bc.plane.stats.bytes_forwarded += frame.len() as u64;
        } else {
            bc.plane.stats.blocked += 1;
        }
    }

    /// Replay a cached verdict. Reproduces the slow path bit for bit:
    /// same learn-table refresh, same sends, same counters — the golden
    /// trace digests cannot tell a hit from a re-execution.
    fn replay(
        &mut self,
        bc: &mut BridgeCtx<'_, '_>,
        port: PortId,
        frame: &DataFrame<'_>,
        verdict: Verdict,
        now: SimTime,
    ) {
        if verdict == Verdict::Blocked {
            // The slow path counts and drops before learning.
            bc.plane.stats.blocked += 1;
            return;
        }
        if bc.plane.port_flags(port.0).learn {
            // Timestamp refresh (the mapping is unchanged while the
            // generation holds, so this cannot bump it).
            bc.plane.learn.learn(frame.src(), port, now);
        }
        match verdict {
            Verdict::Blocked => unreachable!("handled above"),
            Verdict::Filter => bc.plane.stats.filtered += 1,
            Verdict::Direct(out) => {
                bc.send_frame(out, frame.share());
                self.directed += 1;
                bc.plane.stats.directed += 1;
                bc.plane.stats.bytes_forwarded += frame.len() as u64;
            }
            Verdict::Flood => self.flood(bc, port, frame),
        }
    }
}

impl NativeSwitchlet for LearningBridge {
    fn name(&self) -> &'static str {
        NAME
    }

    fn on_install(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        // Replace the switching function (the dumb bridge's part two).
        bc.plane.set_data_plane(DataPlaneSel::Native(NAME.into()));
        bc.schedule(SWEEP_EVERY, SWEEP_TOKEN);
        bc.log("learning bridge installed: replaced switching function");
    }

    fn switch_frame(&mut self, bc: &mut BridgeCtx<'_, '_>, port: PortId, frame: &DataFrame<'_>) {
        let now = bc.now();
        let src = frame.src();
        let dst = frame.dst();

        // Fast path: repeat unicast flow under an unchanged generation.
        // (Group destinations always flood and skip the cache — the flood
        // loop *is* the work, there is nothing to memoize.)
        let unicast = !dst.is_multicast();
        if unicast {
            let gen = bc.plane.generation();
            if let Some(verdict) = bc.plane.fwd_cache.probe(port, src, dst, gen, now) {
                bc.plane.stats.cache_hits += 1;
                bc.sim
                    .probe_decision(port, verdict_label(verdict), true, gen);
                self.replay(bc, port, frame, verdict, now);
                return;
            }
        }

        if !bc.plane.port_flags(port.0).forward {
            bc.plane.stats.blocked += 1;
            if unicast {
                let gen = bc.plane.generation();
                bc.plane.stats.cache_misses += 1;
                bc.sim
                    .probe_decision(port, verdict_label(Verdict::Blocked), false, gen);
                bc.plane
                    .fwd_cache
                    .store(port, src, dst, gen, SimTime::MAX, Verdict::Blocked);
            }
            return;
        }
        // Learn (footnote 3: skipped for group sources — enforced by the
        // table — and only on learning-enabled ports). Under a bounded
        // table the outcome can be an eviction or rejection; both count
        // and probe so the defense is observable on the timeline.
        if bc.plane.port_flags(port.0).learn {
            match bc.plane.learn.learn(src, port, now) {
                LearnOutcome::Evicted(_) => {
                    bc.plane.stats.learn_evictions += 1;
                    bc.sim.probe_learn_evict(port);
                }
                LearnOutcome::Rejected => {
                    bc.plane.stats.learn_rejects += 1;
                    bc.sim.probe_learn_reject(port);
                }
                LearnOutcome::Ignored
                | LearnOutcome::Fresh
                | LearnOutcome::Refreshed
                | LearnOutcome::Moved => {}
            }
            bc.plane.stats.learn_occupancy = bc.plane.learn.len() as u64;
        }
        // Group destinations always flood (footnote 3).
        if dst.is_multicast() {
            let gen = bc.plane.generation();
            bc.sim
                .probe_decision(port, verdict_label(Verdict::Flood), false, gen);
            self.flood(bc, port, frame);
            return;
        }
        // `Direct`/`Filter` verdicts rest on a live table entry: they are
        // replayable until the entry's freshness window closes (mapping
        // changes are caught by the generation instead). `Flood` holds
        // until some learn-table insertion bumps the generation.
        let (verdict, valid_until) = match bc.plane.learn.lookup_entry(dst, now) {
            Some((out, seen)) => {
                let deadline = seen
                    .checked_add(bc.plane.learn.age())
                    .unwrap_or(SimTime::MAX);
                if out == port {
                    // Destination is on the arrival segment: filter.
                    (Verdict::Filter, deadline)
                } else if bc.plane.port_flags(out.0).forward {
                    (Verdict::Direct(out), deadline)
                } else {
                    // Entry points at a non-forwarding port (stale across
                    // a topology change): fall back to flooding.
                    (Verdict::Flood, deadline)
                }
            }
            None => (Verdict::Flood, SimTime::MAX),
        };
        // Record under the post-mutation generation (the learn above may
        // have inserted a mapping), then apply.
        let gen = bc.plane.generation();
        bc.plane.stats.cache_misses += 1;
        bc.sim
            .probe_decision(port, verdict_label(verdict), false, gen);
        bc.plane
            .fwd_cache
            .store(port, src, dst, gen, valid_until, verdict);
        match verdict {
            Verdict::Blocked => unreachable!("blocked handled before learning"),
            Verdict::Filter => bc.plane.stats.filtered += 1,
            Verdict::Direct(out) => {
                bc.send_frame(out, frame.share());
                self.directed += 1;
                bc.plane.stats.directed += 1;
                bc.plane.stats.bytes_forwarded += frame.len() as u64;
            }
            Verdict::Flood => self.flood(bc, port, frame),
        }
    }

    fn on_timer(&mut self, bc: &mut BridgeCtx<'_, '_>, user: u32) {
        if user == SWEEP_TOKEN {
            let now = bc.now();
            bc.plane.learn.sweep(now);
            bc.plane.stats.learn_occupancy = bc.plane.learn.len() as u64;
            bc.schedule(SWEEP_EVERY, SWEEP_TOKEN);
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}
