//! Switchlet 1: the minimal "dumb" bridge — a buffered repeater.
//!
//! Paper Section 5.3: "It has three parts. Part one is a function that
//! reads an input packet from a queue and sends it out through a given
//! network interface. Part two is a function that takes an input packet
//! and queues it to all network interfaces except for the one on which it
//! was received. Part three is a function that reads packets from a
//! network interface and demultiplexes them to the functions from part
//! two." Parts one and three are the bridge's output path and
//! demultiplexer; this switchlet is part two. "It cannot tolerate a
//! network topology with any loops."

use netsim::PortId;

use crate::bridge::{BridgeCtx, DataFrame, NativeSwitchlet};
use crate::plane::DataPlaneSel;

/// The switchlet's unit name.
pub const NAME: &str = "bridge_dumb";

/// The buffered-repeater switching function.
#[derive(Default)]
pub struct DumbBridge {
    /// Frames flooded.
    pub forwarded: u64,
}

impl NativeSwitchlet for DumbBridge {
    fn name(&self) -> &'static str {
        NAME
    }

    fn on_install(&mut self, bc: &mut BridgeCtx<'_, '_>) {
        // Claim every port (first-bind-wins) and install as the
        // switching function.
        for p in 0..bc.num_ports() {
            bc.plane.bind_in(p, NAME);
            bc.plane.bind_out(p, NAME);
        }
        bc.plane.set_data_plane(DataPlaneSel::Native(NAME.into()));
        bc.log("dumb bridge installed: flooding all ports");
    }

    fn switch_frame(&mut self, bc: &mut BridgeCtx<'_, '_>, port: PortId, frame: &DataFrame<'_>) {
        // Even the dumb bridge honors the spanning tree's access points
        // if one happens to be running above it.
        if !bc.plane.port_flags(port.0).forward {
            bc.plane.stats.blocked += 1;
            return;
        }
        // Flooding shares one refcounted buffer across every output port
        // (bridges must not modify frames, so sharing is always safe).
        let mut sent = false;
        for p in 0..bc.num_ports() {
            if p != port.0 && bc.plane.port_flags(p).forward {
                bc.send_frame(PortId(p), frame.share());
                sent = true;
            }
        }
        if sent {
            self.forwarded += 1;
            bc.plane.stats.flooded += 1;
            bc.plane.stats.bytes_forwarded += frame.len() as u64;
        } else {
            bc.plane.stats.blocked += 1;
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
}
