//! A deliberately faulty VM data path, for watchdog exercises.
//!
//! The switching handler traps on every invocation (an unguarded divide
//! by zero — the VM's cheapest deterministic failure). Installing it
//! over a working bridge reproduces the paper's "algorithmic failure"
//! scenario: the bridge must contain the fault, quarantine the module
//! after the configured number of traps, and keep traffic flowing on a
//! degraded tier (last-known-good plane, or dumb flood forwarding).

use switchlet::{ModuleBuilder, Op, Ty};

use crate::hostmods::handler_ty;

/// The module name the image loads under.
pub const NAME: &str = "vm_trap";

/// Build the loadable image.
pub fn build_image() -> Vec<u8> {
    let mut mb = ModuleBuilder::new(NAME);
    let i_reg = mb.import(
        "func",
        "register_handler",
        Ty::func(vec![Ty::Str, handler_ty()], Ty::Unit),
    );
    let i_log = mb.import("log", "msg", Ty::func(vec![Ty::Str], Ty::Unit));

    // handler(frame: str, inport: int) -> unit: trap immediately.
    let mut f = mb.func("switching", vec![Ty::Str, Ty::Int], Ty::Unit);
    f.op(Op::ConstInt(1)).op(Op::ConstInt(0)).op(Op::Div);
    f.op(Op::Pop);
    f.op(Op::ConstUnit).op(Op::Return);
    let handler_idx = mb.finish(f);
    mb.export("switching", handler_idx);

    // init: log, then register the faulty switching function.
    let banner = mb.intern_str(b"vm trap bridge: faulty data path installed");
    let key = mb.intern_str(b"switching");
    let mut init = mb.func("init", vec![], Ty::Unit);
    init.op(Op::ConstStr(banner))
        .op(Op::CallImport(i_log))
        .op(Op::Pop);
    init.op(Op::ConstStr(key));
    init.op(Op::FuncConst(handler_idx));
    init.op(Op::CallImport(i_reg));
    init.op(Op::Return);
    let init_idx = mb.finish(init);
    mb.set_init(init_idx);

    mb.build().encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchlet::{verify_module, Module};

    #[test]
    fn image_decodes_and_verifies() {
        let image = build_image();
        let module = Module::decode(&image).expect("well-formed image");
        assert_eq!(module.name, NAME);
        verify_module(&module).expect("statically type-safe");
        assert!(module.init.is_some(), "has registration forms");
    }

    #[test]
    fn image_is_deterministic() {
        assert_eq!(build_image(), build_image());
    }
}
