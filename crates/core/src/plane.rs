//! The shared forwarding plane — the state the paper's switchlets reach
//! through "access points in the previous switchlets": per-port
//! forwarding/learning flags (set by the spanning-tree switchlet, honored
//! by the switching function), the learning table, the demultiplexer's
//! address registrations, and the published spanning-tree snapshots the
//! control switchlet monitors.
//!
//! Since PR 4 the plane also carries the **forwarding decision cache** and
//! the **generation counter** that keeps it honest. Every piece of state a
//! switching function's verdict can depend on is mutated through methods
//! that bump a generation: learn-table mapping changes (insertions,
//! moves, evictions, flushes — timestamp refreshes excluded, they cannot
//! flip a verdict), port-flag writes, switchlet lifecycle transitions,
//! data-plane (re)selection and timer deliveries. A cached verdict is
//! replayed only when its recorded generation still matches and its
//! freshness deadline has not passed, so a cache hit can never diverge
//! from re-executing the switching function — the invariant the golden
//! byte-identical-trace tests enforce end to end.

use std::collections::HashMap;

use ether::MacAddr;
use netsim::{FastMap, PortId, SimDuration, SimTime};

use crate::switchlets::stp::engine::StpSnapshot;

/// Per-port permission flags (the spanning tree's access points).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PortFlags {
    /// May data frames be accepted from / emitted to this port?
    pub forward: bool,
    /// May source addresses be learned from this port?
    pub learn: bool,
}

impl Default for PortFlags {
    fn default() -> Self {
        // Before any spanning tree runs, the bridge forwards everywhere
        // (the paper's buffered repeater "cannot tolerate a network
        // topology with any loops").
        PortFlags {
            forward: true,
            learn: true,
        }
    }
}

/// The self-learning table: source address → (port, last-seen time).
/// Paper Section 5.3: "the triple (source address, current time, input
/// port) is placed into a hash table keyed by the source address,
/// replacing any previous entry".
///
/// The table tracks its own mutation generation: any change to the
/// address→port *mapping* (new entry, port move, eviction, flush) bumps
/// it; refreshing the timestamp of an unchanged mapping does not, because
/// no forwarding verdict can change when only a last-seen time advances
/// (staleness is handled by the cache's own freshness deadline).
#[derive(Debug)]
pub struct LearningTable {
    /// Keyed by the fast deterministic hasher: this map is probed and
    /// refreshed once per data frame.
    map: FastMap<MacAddr, (PortId, SimTime)>,
    age: SimDuration,
    gen: u64,
}

impl LearningTable {
    /// Table with the given entry lifetime.
    pub fn new(age: SimDuration) -> LearningTable {
        LearningTable {
            map: FastMap::default(),
            age,
            gen: 0,
        }
    }

    /// Record that `src` was seen on `port`. Group addresses are never
    /// learned (paper footnote 3).
    pub fn learn(&mut self, src: MacAddr, port: PortId, now: SimTime) {
        if src.is_multicast() {
            return;
        }
        match self.map.insert(src, (port, now)) {
            Some((old_port, _)) if old_port == port => {} // timestamp refresh
            _ => self.gen += 1,                           // new entry or port move
        }
    }

    /// Look up a destination; a stale entry counts as absent (and is
    /// dropped).
    pub fn lookup(&mut self, dst: MacAddr, now: SimTime) -> Option<PortId> {
        self.lookup_entry(dst, now).map(|(port, _)| port)
    }

    /// Like [`LearningTable::lookup`], also returning when the entry was
    /// last refreshed (callers derive freshness deadlines from it).
    pub fn lookup_entry(&mut self, dst: MacAddr, now: SimTime) -> Option<(PortId, SimTime)> {
        match self.map.get(&dst) {
            Some(&(port, seen)) if now.saturating_since(seen) <= self.age => Some((port, seen)),
            Some(_) => {
                self.map.remove(&dst);
                self.gen += 1;
                None
            }
            None => None,
        }
    }

    /// Drop every entry older than the age limit.
    pub fn sweep(&mut self, now: SimTime) {
        let age = self.age;
        let before = self.map.len();
        self.map
            .retain(|_, (_, seen)| now.saturating_since(*seen) <= age);
        if self.map.len() != before {
            self.gen += 1;
        }
    }

    /// Forget everything (used on topology change).
    pub fn flush(&mut self) {
        if !self.map.is_empty() {
            self.gen += 1;
        }
        self.map.clear();
    }

    /// The configured entry lifetime.
    pub fn age(&self) -> SimDuration {
        self.age
    }

    /// Pre-size the table for `stations` distinct source addresses, so
    /// steady-state learning at that scale never rehashes.
    pub fn reserve(&mut self, stations: usize) {
        self.map.reserve(stations.saturating_sub(self.map.len()));
    }

    /// Mapping-mutation counter (monotonic).
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate entries (for display/debugging).
    pub fn entries(&self) -> impl Iterator<Item = (&MacAddr, &(PortId, SimTime))> {
        self.map.iter()
    }
}

/// Which switching function is installed.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum DataPlaneSel {
    /// No switching function yet: frames are dropped (the bare loader).
    #[default]
    None,
    /// A native switchlet, by name.
    Native(String),
    /// A VM switchlet handler (registered under "switching").
    Vm(switchlet::FuncVal),
}

/// Lifecycle status of a switchlet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SwitchletStatus {
    /// Dispatching normally.
    Running,
    /// Loaded but not receiving events.
    Suspended,
    /// Halted permanently.
    Stopped,
}

/// Forwarding statistics.
#[derive(Clone, Debug, Default)]
pub struct BridgeStats {
    /// Frames accepted into the input queue.
    pub frames_in: u64,
    /// Frames dropped because the input queue was full.
    pub queue_drops: u64,
    /// Frames flooded to all other ports.
    pub flooded: u64,
    /// Frames forwarded to a single learned port.
    pub directed: u64,
    /// Frames suppressed because the learned port was the arrival port.
    pub filtered: u64,
    /// Frames dropped because a port was not forwarding.
    pub blocked: u64,
    /// Frames delivered to address-registered switchlets (BPDUs etc.).
    pub registered: u64,
    /// Frames consumed by the loader endpoint.
    pub to_loader: u64,
    /// Frames dropped for want of any switching function.
    pub no_plane: u64,
    /// Aggregate octets forwarded (directed + flooded).
    pub bytes_forwarded: u64,
    /// VM instructions retired on the data path.
    pub vm_instructions: u64,
    /// Switchlet images loaded over the network.
    pub images_loaded: u64,
    /// Switchlet images rejected (decode/link/verify failures).
    pub images_rejected: u64,
    /// Forwarding verdicts replayed from the decision cache.
    pub cache_hits: u64,
    /// Unicast verdicts computed by full execution (and then cached).
    pub cache_misses: u64,
}

impl BridgeStats {
    /// Every counter as a stable `(name, value)` list, in declaration
    /// order — the shape structured reports (JSON emitters, tables) want,
    /// so they never fall out of sync with the struct.
    pub fn as_pairs(&self) -> [(&'static str, u64); 16] {
        [
            ("frames_in", self.frames_in),
            ("queue_drops", self.queue_drops),
            ("flooded", self.flooded),
            ("directed", self.directed),
            ("filtered", self.filtered),
            ("blocked", self.blocked),
            ("registered", self.registered),
            ("to_loader", self.to_loader),
            ("no_plane", self.no_plane),
            ("bytes_forwarded", self.bytes_forwarded),
            ("vm_instructions", self.vm_instructions),
            ("images_loaded", self.images_loaded),
            ("images_rejected", self.images_rejected),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("forwarded", self.directed + self.flooded),
        ]
    }
}

/// A memoized forwarding verdict for one `(in-port, src, dst)` unicast
/// flow — the pure decision the learning switchlet would recompute.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Ingress port was not forwarding: count and drop.
    Blocked,
    /// Destination learned on the arrival port: suppress.
    Filter,
    /// Forward to one learned, forwarding port.
    Direct(PortId),
    /// Flood to every other forwarding port (destination unknown).
    Flood,
}

#[derive(Copy, Clone, Debug)]
struct CacheEntry {
    src: MacAddr,
    dst: MacAddr,
    in_port: u16,
    gen: u64,
    /// Entry is replayable only strictly before this instant (derived
    /// from the learning-table entry's freshness window for `Direct` and
    /// `Filter`; unbounded for generation-guarded verdicts).
    valid_until: SimTime,
    verdict: Verdict,
}

/// Direct-mapped forwarding decision cache: fixed storage, no per-frame
/// allocation, O(1) probe and insert.
#[derive(Debug)]
pub struct DecisionCache {
    slots: Vec<Option<CacheEntry>>,
}

/// Slot count (power of two).
const CACHE_SLOTS: usize = 1024;

impl Default for DecisionCache {
    fn default() -> Self {
        DecisionCache {
            slots: vec![None; CACHE_SLOTS],
        }
    }
}

impl DecisionCache {
    fn index(in_port: PortId, src: MacAddr, dst: MacAddr) -> usize {
        // The simulator's shared fast deterministic hasher over the
        // 13-byte flow key.
        use std::hash::Hasher;
        let mut h = netsim::fasthash::FxHasher::default();
        h.write_u8(in_port.0 as u8);
        h.write(&src.octets());
        h.write(&dst.octets());
        (h.finish() as usize) & (CACHE_SLOTS - 1)
    }

    /// Replayable verdict for this flow at `now` under `gen`, if cached.
    #[inline]
    pub fn probe(
        &self,
        in_port: PortId,
        src: MacAddr,
        dst: MacAddr,
        gen: u64,
        now: SimTime,
    ) -> Option<Verdict> {
        let e = self.slots[Self::index(in_port, src, dst)].as_ref()?;
        if e.gen == gen
            && e.in_port == in_port.0 as u16
            && e.src == src
            && e.dst == dst
            && now <= e.valid_until
        {
            Some(e.verdict)
        } else {
            None
        }
    }

    /// Record a verdict computed by full execution.
    #[inline]
    pub fn store(
        &mut self,
        in_port: PortId,
        src: MacAddr,
        dst: MacAddr,
        gen: u64,
        valid_until: SimTime,
        verdict: Verdict,
    ) {
        self.slots[Self::index(in_port, src, dst)] = Some(CacheEntry {
            src,
            dst,
            in_port: in_port.0 as u16,
            gen,
            valid_until,
            verdict,
        });
    }
}

/// The shared plane.
pub struct Plane {
    /// Per-port flags, indexed by port. Written only through the
    /// generation-bumping setters.
    flags: Vec<PortFlags>,
    /// The learning table (shared so the spanning tree can flush it);
    /// tracks its own mapping generation.
    pub learn: LearningTable,
    /// Demultiplexer registrations: destination address → switchlet name.
    addr_handlers: Vec<(MacAddr, String)>,
    /// The installed switching function.
    data_plane: DataPlaneSel,
    /// The switching function installed before the current one — the
    /// watchdog's last-known-good rollback target when the current one
    /// is quarantined.
    prev_data_plane: Option<DataPlaneSel>,
    /// Switchlet lifecycle status mirror (readable by other switchlets —
    /// the control switchlet "checks that the DEC switchlet is operating
    /// and that the 802.1D switchlet is not").
    status: HashMap<String, SwitchletStatus>,
    /// Spanning-tree snapshots published by protocol switchlets.
    pub published: HashMap<String, StpSnapshot>,
    /// Input-port ownership (paper: "the first switchlet to bind to a
    /// given port succeeds and all others fail").
    pub owners_in: Vec<Option<String>>,
    /// Output-port ownership.
    pub owners_out: Vec<Option<String>>,
    /// Counters.
    pub stats: BridgeStats,
    /// The forwarding decision cache (consulted by switching functions).
    pub fwd_cache: DecisionCache,
    /// Decision-relevant mutations outside the learning table.
    gen: u64,
}

impl Plane {
    /// A plane for `n_ports` ports.
    pub fn new(n_ports: usize, learn_age: SimDuration) -> Plane {
        Plane {
            flags: vec![PortFlags::default(); n_ports],
            learn: LearningTable::new(learn_age),
            addr_handlers: Vec::new(),
            data_plane: DataPlaneSel::None,
            prev_data_plane: None,
            status: HashMap::new(),
            published: HashMap::new(),
            owners_in: vec![None; n_ports],
            owners_out: vec![None; n_ports],
            stats: BridgeStats::default(),
            fwd_cache: DecisionCache::default(),
            gen: 0,
        }
    }

    // ------------------------------------------------- generation window

    /// The decision generation: cached verdicts recorded under an older
    /// value are dead. Monotonic (sum of two monotonic counters).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.gen + self.learn.generation()
    }

    /// Invalidate every cached forwarding decision (cheap: the cache is
    /// generation-guarded, nothing is scanned). Called on every event
    /// that could change a switching function's verdict, and available to
    /// embedders that mutate decision inputs out of band.
    #[inline]
    pub fn bump_generation(&mut self) {
        self.gen += 1;
    }

    // ---------------------------------------------------------- flags

    /// All per-port flags.
    pub fn flags(&self) -> &[PortFlags] {
        &self.flags
    }

    /// Flags of one port.
    #[inline]
    pub fn port_flags(&self, port: usize) -> PortFlags {
        self.flags[port]
    }

    /// Number of bridge ports.
    #[inline]
    pub fn num_ports(&self) -> usize {
        self.flags.len()
    }

    /// Set a port's forwarding permission (bumps the generation on real
    /// changes — the spanning tree re-asserting a state is free).
    pub fn set_port_forward(&mut self, port: usize, forward: bool) {
        if self.flags[port].forward != forward {
            self.flags[port].forward = forward;
            self.gen += 1;
        }
    }

    /// Set a port's learning permission.
    pub fn set_port_learn(&mut self, port: usize, learn: bool) {
        if self.flags[port].learn != learn {
            self.flags[port].learn = learn;
            self.gen += 1;
        }
    }

    /// Set both flags of a port.
    pub fn set_port_flags(&mut self, port: usize, flags: PortFlags) {
        if self.flags[port] != flags {
            self.flags[port] = flags;
            self.gen += 1;
        }
    }

    // ------------------------------------------------------ data plane

    /// The installed switching function.
    pub fn data_plane(&self) -> &DataPlaneSel {
        &self.data_plane
    }

    /// Install (or clear) the switching function. Real changes remember
    /// the displaced selection (see [`Plane::prev_data_plane`]) and bump
    /// the generation.
    pub fn set_data_plane(&mut self, sel: DataPlaneSel) {
        if self.data_plane != sel {
            self.prev_data_plane = Some(std::mem::replace(&mut self.data_plane, sel));
            self.gen += 1;
        }
    }

    /// The switching function the current one displaced, if any — the
    /// watchdog rolls back to it when the current one is quarantined.
    pub fn prev_data_plane(&self) -> Option<&DataPlaneSel> {
        self.prev_data_plane.as_ref()
    }

    // ------------------------------------------------------- lifecycle

    /// A switchlet's lifecycle status.
    pub fn status_of(&self, name: &str) -> Option<SwitchletStatus> {
        self.status.get(name).copied()
    }

    /// Record a lifecycle transition (load/suspend/resume/halt) — each
    /// one invalidates cached decisions.
    pub fn set_status(&mut self, name: impl Into<String>, status: SwitchletStatus) {
        self.status.insert(name.into(), status);
        self.gen += 1;
    }

    // -------------------------------------------------------- bindings

    /// Claim an input port for `owner`; `false` if already bound to
    /// someone else (re-binding by the same owner succeeds).
    pub fn bind_in(&mut self, port: usize, owner: &str) -> bool {
        match &self.owners_in[port] {
            Some(existing) => existing == owner,
            None => {
                self.owners_in[port] = Some(owner.to_owned());
                true
            }
        }
    }

    /// Claim an output port for `owner`.
    pub fn bind_out(&mut self, port: usize, owner: &str) -> bool {
        match &self.owners_out[port] {
            Some(existing) => existing == owner,
            None => {
                self.owners_out[port] = Some(owner.to_owned());
                true
            }
        }
    }

    /// Release every port bound by `owner`.
    pub fn unbind_all(&mut self, owner: &str) {
        for slot in self.owners_in.iter_mut().chain(self.owners_out.iter_mut()) {
            if slot.as_deref() == Some(owner) {
                *slot = None;
            }
        }
    }

    // ------------------------------------------------- demultiplexer

    /// Register (or rebind) the handler for a destination address.
    /// Rebinding is how the control switchlet takes over the All Bridges
    /// address and later hands it to the 802.1D switchlet.
    pub fn register_addr(&mut self, addr: MacAddr, switchlet: impl Into<String>) {
        let name = switchlet.into();
        if let Some(slot) = self.addr_handlers.iter_mut().find(|(a, _)| *a == addr) {
            slot.1 = name;
        } else {
            self.addr_handlers.push((addr, name));
        }
        self.gen += 1;
    }

    /// Remove a registration.
    pub fn unregister_addr(&mut self, addr: MacAddr) {
        self.addr_handlers.retain(|(a, _)| *a != addr);
        self.gen += 1;
    }

    /// Who handles frames to `addr`?
    pub fn addr_handler(&self, addr: MacAddr) -> Option<&str> {
        self.addr_handlers
            .iter()
            .find(|(a, _)| *a == addr)
            .map(|(_, n)| n.as_str())
    }

    /// Is a switchlet currently running?
    pub fn is_running(&self, name: &str) -> bool {
        self.status.get(name) == Some(&SwitchletStatus::Running)
    }

    /// Is a switchlet loaded (running or suspended)?
    pub fn is_loaded(&self, name: &str) -> bool {
        matches!(
            self.status.get(name),
            Some(SwitchletStatus::Running | SwitchletStatus::Suspended)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn learning_replaces_and_ages() {
        let mut lt = LearningTable::new(SimDuration::from_secs(300));
        let mac = MacAddr::local(7);
        lt.learn(mac, PortId(0), t(0));
        assert_eq!(lt.lookup(mac, t(10)), Some(PortId(0)));
        // Host moved: new port replaces old.
        lt.learn(mac, PortId(1), t(20));
        assert_eq!(lt.lookup(mac, t(21)), Some(PortId(1)));
        // Stale after 300 s.
        assert_eq!(lt.lookup(mac, t(321)), None);
        assert!(lt.is_empty(), "stale entry evicted on lookup");
    }

    #[test]
    fn group_addresses_never_learned() {
        let mut lt = LearningTable::new(SimDuration::from_secs(300));
        lt.learn(MacAddr::BROADCAST, PortId(0), t(0));
        lt.learn(MacAddr::ALL_BRIDGES, PortId(0), t(0));
        assert!(lt.is_empty());
    }

    #[test]
    fn sweep_evicts_only_stale() {
        let mut lt = LearningTable::new(SimDuration::from_secs(100));
        lt.learn(MacAddr::local(1), PortId(0), t(0));
        lt.learn(MacAddr::local(2), PortId(0), t(90));
        lt.sweep(t(120));
        assert_eq!(lt.len(), 1);
        assert_eq!(lt.lookup(MacAddr::local(2), t(120)), Some(PortId(0)));
    }

    #[test]
    fn learn_generation_tracks_mapping_not_timestamps() {
        let mut lt = LearningTable::new(SimDuration::from_secs(300));
        let g0 = lt.generation();
        lt.learn(MacAddr::local(1), PortId(0), t(0));
        let g1 = lt.generation();
        assert!(g1 > g0, "new entry bumps");
        // Same mapping, fresher timestamp: no bump.
        lt.learn(MacAddr::local(1), PortId(0), t(5));
        assert_eq!(lt.generation(), g1, "timestamp refresh must not bump");
        // Port move bumps.
        lt.learn(MacAddr::local(1), PortId(1), t(6));
        assert!(lt.generation() > g1);
        // Stale eviction through lookup bumps.
        let g2 = lt.generation();
        assert_eq!(lt.lookup(MacAddr::local(1), t(1000)), None);
        assert!(lt.generation() > g2);
        // Flush of an empty table is free; of a non-empty one bumps.
        let g3 = lt.generation();
        lt.flush();
        assert_eq!(lt.generation(), g3);
        lt.learn(MacAddr::local(2), PortId(0), t(1000));
        let g4 = lt.generation();
        lt.flush();
        assert!(lt.generation() > g4);
    }

    #[test]
    fn addr_registration_rebinds() {
        let mut plane = Plane::new(2, SimDuration::from_secs(300));
        plane.register_addr(MacAddr::ALL_BRIDGES, "stp_ieee");
        assert_eq!(plane.addr_handler(MacAddr::ALL_BRIDGES), Some("stp_ieee"));
        // The control switchlet takes it over.
        plane.register_addr(MacAddr::ALL_BRIDGES, "control");
        assert_eq!(plane.addr_handler(MacAddr::ALL_BRIDGES), Some("control"));
        assert_eq!(plane.addr_handlers.len(), 1, "rebound, not duplicated");
        plane.unregister_addr(MacAddr::ALL_BRIDGES);
        assert_eq!(plane.addr_handler(MacAddr::ALL_BRIDGES), None);
    }

    #[test]
    fn first_bind_wins() {
        let mut plane = Plane::new(2, SimDuration::from_secs(300));
        assert!(plane.bind_in(0, "dumb"));
        assert!(!plane.bind_in(0, "other"), "second binder must fail");
        assert!(plane.bind_in(0, "dumb"), "same owner may rebind");
        assert!(plane.bind_out(0, "other"), "output space is separate");
        plane.unbind_all("dumb");
        assert!(plane.bind_in(0, "other"));
    }

    #[test]
    fn status_queries() {
        let mut plane = Plane::new(1, SimDuration::from_secs(300));
        assert!(!plane.is_running("stp_dec"));
        plane.set_status("stp_dec", SwitchletStatus::Running);
        assert!(plane.is_running("stp_dec"));
        assert!(plane.is_loaded("stp_dec"));
        plane.set_status("stp_dec", SwitchletStatus::Suspended);
        assert!(!plane.is_running("stp_dec"));
        assert!(plane.is_loaded("stp_dec"));
        plane.set_status("stp_dec", SwitchletStatus::Stopped);
        assert!(!plane.is_loaded("stp_dec"));
    }

    #[test]
    fn cache_probe_respects_generation_and_freshness() {
        let mut cache = DecisionCache::default();
        let (src, dst) = (MacAddr::local(1), MacAddr::local(2));
        cache.store(PortId(0), src, dst, 7, t(100), Verdict::Direct(PortId(1)));
        assert_eq!(
            cache.probe(PortId(0), src, dst, 7, t(50)),
            Some(Verdict::Direct(PortId(1)))
        );
        // Stale generation: dead.
        assert_eq!(cache.probe(PortId(0), src, dst, 8, t(50)), None);
        // Past the freshness deadline: dead.
        assert_eq!(cache.probe(PortId(0), src, dst, 7, t(101)), None);
        // Different flow key: miss.
        assert_eq!(cache.probe(PortId(1), src, dst, 7, t(50)), None);
        assert_eq!(cache.probe(PortId(0), dst, src, 7, t(50)), None);
    }

    #[test]
    fn plane_mutations_bump_generation() {
        let mut plane = Plane::new(2, SimDuration::from_secs(300));
        let g = plane.generation();
        plane.set_port_forward(0, false);
        assert!(plane.generation() > g, "flag change bumps");
        let g = plane.generation();
        plane.set_port_forward(0, false);
        assert_eq!(plane.generation(), g, "no-op flag write is free");
        plane.set_data_plane(DataPlaneSel::Native("x".into()));
        assert!(plane.generation() > g, "plane selection bumps");
        let g = plane.generation();
        plane.set_status("x", SwitchletStatus::Suspended);
        assert!(plane.generation() > g, "lifecycle bumps");
        let g = plane.generation();
        plane.learn.learn(MacAddr::local(9), PortId(1), t(1));
        assert!(plane.generation() > g, "learn mapping change bumps");
    }
}
