//! The shared forwarding plane — the state the paper's switchlets reach
//! through "access points in the previous switchlets": per-port
//! forwarding/learning flags (set by the spanning-tree switchlet, honored
//! by the switching function), the learning table, the demultiplexer's
//! address registrations, and the published spanning-tree snapshots the
//! control switchlet monitors.

use std::collections::HashMap;

use ether::MacAddr;
use netsim::{PortId, SimDuration, SimTime};

use crate::switchlets::stp::engine::StpSnapshot;

/// Per-port permission flags (the spanning tree's access points).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PortFlags {
    /// May data frames be accepted from / emitted to this port?
    pub forward: bool,
    /// May source addresses be learned from this port?
    pub learn: bool,
}

impl Default for PortFlags {
    fn default() -> Self {
        // Before any spanning tree runs, the bridge forwards everywhere
        // (the paper's buffered repeater "cannot tolerate a network
        // topology with any loops").
        PortFlags {
            forward: true,
            learn: true,
        }
    }
}

/// The self-learning table: source address → (port, last-seen time).
/// Paper Section 5.3: "the triple (source address, current time, input
/// port) is placed into a hash table keyed by the source address,
/// replacing any previous entry".
#[derive(Debug)]
pub struct LearningTable {
    map: HashMap<MacAddr, (PortId, SimTime)>,
    age: SimDuration,
}

impl LearningTable {
    /// Table with the given entry lifetime.
    pub fn new(age: SimDuration) -> LearningTable {
        LearningTable {
            map: HashMap::new(),
            age,
        }
    }

    /// Record that `src` was seen on `port`. Group addresses are never
    /// learned (paper footnote 3).
    pub fn learn(&mut self, src: MacAddr, port: PortId, now: SimTime) {
        if src.is_multicast() {
            return;
        }
        self.map.insert(src, (port, now));
    }

    /// Look up a destination; a stale entry counts as absent (and is
    /// dropped).
    pub fn lookup(&mut self, dst: MacAddr, now: SimTime) -> Option<PortId> {
        match self.map.get(&dst) {
            Some((port, seen)) if now.saturating_since(*seen) <= self.age => Some(*port),
            Some(_) => {
                self.map.remove(&dst);
                None
            }
            None => None,
        }
    }

    /// Drop every entry older than the age limit.
    pub fn sweep(&mut self, now: SimTime) {
        let age = self.age;
        self.map
            .retain(|_, (_, seen)| now.saturating_since(*seen) <= age);
    }

    /// Forget everything (used on topology change).
    pub fn flush(&mut self) {
        self.map.clear();
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate entries (for display/debugging).
    pub fn entries(&self) -> impl Iterator<Item = (&MacAddr, &(PortId, SimTime))> {
        self.map.iter()
    }
}

/// Which switching function is installed.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum DataPlaneSel {
    /// No switching function yet: frames are dropped (the bare loader).
    #[default]
    None,
    /// A native switchlet, by name.
    Native(String),
    /// A VM switchlet handler (registered under "switching").
    Vm(switchlet::FuncVal),
}

/// Lifecycle status of a switchlet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SwitchletStatus {
    /// Dispatching normally.
    Running,
    /// Loaded but not receiving events.
    Suspended,
    /// Halted permanently.
    Stopped,
}

/// Forwarding statistics.
#[derive(Clone, Debug, Default)]
pub struct BridgeStats {
    /// Frames accepted into the input queue.
    pub frames_in: u64,
    /// Frames dropped because the input queue was full.
    pub queue_drops: u64,
    /// Frames flooded to all other ports.
    pub flooded: u64,
    /// Frames forwarded to a single learned port.
    pub directed: u64,
    /// Frames suppressed because the learned port was the arrival port.
    pub filtered: u64,
    /// Frames dropped because a port was not forwarding.
    pub blocked: u64,
    /// Frames delivered to address-registered switchlets (BPDUs etc.).
    pub registered: u64,
    /// Frames consumed by the loader endpoint.
    pub to_loader: u64,
    /// Frames dropped for want of any switching function.
    pub no_plane: u64,
    /// Aggregate octets forwarded (directed + flooded).
    pub bytes_forwarded: u64,
    /// VM instructions retired on the data path.
    pub vm_instructions: u64,
    /// Switchlet images loaded over the network.
    pub images_loaded: u64,
    /// Switchlet images rejected (decode/link/verify failures).
    pub images_rejected: u64,
}

impl BridgeStats {
    /// Every counter as a stable `(name, value)` list, in declaration
    /// order — the shape structured reports (JSON emitters, tables) want,
    /// so they never fall out of sync with the struct.
    pub fn as_pairs(&self) -> [(&'static str, u64); 14] {
        [
            ("frames_in", self.frames_in),
            ("queue_drops", self.queue_drops),
            ("flooded", self.flooded),
            ("directed", self.directed),
            ("filtered", self.filtered),
            ("blocked", self.blocked),
            ("registered", self.registered),
            ("to_loader", self.to_loader),
            ("no_plane", self.no_plane),
            ("bytes_forwarded", self.bytes_forwarded),
            ("vm_instructions", self.vm_instructions),
            ("images_loaded", self.images_loaded),
            ("images_rejected", self.images_rejected),
            ("forwarded", self.directed + self.flooded),
        ]
    }
}

/// The shared plane.
pub struct Plane {
    /// Per-port flags, indexed by port.
    pub flags: Vec<PortFlags>,
    /// The learning table (shared so the spanning tree can flush it).
    pub learn: LearningTable,
    /// Demultiplexer registrations: destination address → switchlet name.
    addr_handlers: Vec<(MacAddr, String)>,
    /// The installed switching function.
    pub data_plane: DataPlaneSel,
    /// Switchlet lifecycle status mirror (readable by other switchlets —
    /// the control switchlet "checks that the DEC switchlet is operating
    /// and that the 802.1D switchlet is not").
    pub status: HashMap<String, SwitchletStatus>,
    /// Spanning-tree snapshots published by protocol switchlets.
    pub published: HashMap<String, StpSnapshot>,
    /// Input-port ownership (paper: "the first switchlet to bind to a
    /// given port succeeds and all others fail").
    pub owners_in: Vec<Option<String>>,
    /// Output-port ownership.
    pub owners_out: Vec<Option<String>>,
    /// Counters.
    pub stats: BridgeStats,
}

impl Plane {
    /// A plane for `n_ports` ports.
    pub fn new(n_ports: usize, learn_age: SimDuration) -> Plane {
        Plane {
            flags: vec![PortFlags::default(); n_ports],
            learn: LearningTable::new(learn_age),
            addr_handlers: Vec::new(),
            data_plane: DataPlaneSel::None,
            status: HashMap::new(),
            published: HashMap::new(),
            owners_in: vec![None; n_ports],
            owners_out: vec![None; n_ports],
            stats: BridgeStats::default(),
        }
    }

    /// Claim an input port for `owner`; `false` if already bound to
    /// someone else (re-binding by the same owner succeeds).
    pub fn bind_in(&mut self, port: usize, owner: &str) -> bool {
        match &self.owners_in[port] {
            Some(existing) => existing == owner,
            None => {
                self.owners_in[port] = Some(owner.to_owned());
                true
            }
        }
    }

    /// Claim an output port for `owner`.
    pub fn bind_out(&mut self, port: usize, owner: &str) -> bool {
        match &self.owners_out[port] {
            Some(existing) => existing == owner,
            None => {
                self.owners_out[port] = Some(owner.to_owned());
                true
            }
        }
    }

    /// Release every port bound by `owner`.
    pub fn unbind_all(&mut self, owner: &str) {
        for slot in self.owners_in.iter_mut().chain(self.owners_out.iter_mut()) {
            if slot.as_deref() == Some(owner) {
                *slot = None;
            }
        }
    }

    /// Register (or rebind) the handler for a destination address.
    /// Rebinding is how the control switchlet takes over the All Bridges
    /// address and later hands it to the 802.1D switchlet.
    pub fn register_addr(&mut self, addr: MacAddr, switchlet: impl Into<String>) {
        let name = switchlet.into();
        if let Some(slot) = self.addr_handlers.iter_mut().find(|(a, _)| *a == addr) {
            slot.1 = name;
        } else {
            self.addr_handlers.push((addr, name));
        }
    }

    /// Remove a registration.
    pub fn unregister_addr(&mut self, addr: MacAddr) {
        self.addr_handlers.retain(|(a, _)| *a != addr);
    }

    /// Who handles frames to `addr`?
    pub fn addr_handler(&self, addr: MacAddr) -> Option<&str> {
        self.addr_handlers
            .iter()
            .find(|(a, _)| *a == addr)
            .map(|(_, n)| n.as_str())
    }

    /// Is a switchlet currently running?
    pub fn is_running(&self, name: &str) -> bool {
        self.status.get(name) == Some(&SwitchletStatus::Running)
    }

    /// Is a switchlet loaded (running or suspended)?
    pub fn is_loaded(&self, name: &str) -> bool {
        matches!(
            self.status.get(name),
            Some(SwitchletStatus::Running | SwitchletStatus::Suspended)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn learning_replaces_and_ages() {
        let mut lt = LearningTable::new(SimDuration::from_secs(300));
        let mac = MacAddr::local(7);
        lt.learn(mac, PortId(0), t(0));
        assert_eq!(lt.lookup(mac, t(10)), Some(PortId(0)));
        // Host moved: new port replaces old.
        lt.learn(mac, PortId(1), t(20));
        assert_eq!(lt.lookup(mac, t(21)), Some(PortId(1)));
        // Stale after 300 s.
        assert_eq!(lt.lookup(mac, t(321)), None);
        assert!(lt.is_empty(), "stale entry evicted on lookup");
    }

    #[test]
    fn group_addresses_never_learned() {
        let mut lt = LearningTable::new(SimDuration::from_secs(300));
        lt.learn(MacAddr::BROADCAST, PortId(0), t(0));
        lt.learn(MacAddr::ALL_BRIDGES, PortId(0), t(0));
        assert!(lt.is_empty());
    }

    #[test]
    fn sweep_evicts_only_stale() {
        let mut lt = LearningTable::new(SimDuration::from_secs(100));
        lt.learn(MacAddr::local(1), PortId(0), t(0));
        lt.learn(MacAddr::local(2), PortId(0), t(90));
        lt.sweep(t(120));
        assert_eq!(lt.len(), 1);
        assert_eq!(lt.lookup(MacAddr::local(2), t(120)), Some(PortId(0)));
    }

    #[test]
    fn addr_registration_rebinds() {
        let mut plane = Plane::new(2, SimDuration::from_secs(300));
        plane.register_addr(MacAddr::ALL_BRIDGES, "stp_ieee");
        assert_eq!(plane.addr_handler(MacAddr::ALL_BRIDGES), Some("stp_ieee"));
        // The control switchlet takes it over.
        plane.register_addr(MacAddr::ALL_BRIDGES, "control");
        assert_eq!(plane.addr_handler(MacAddr::ALL_BRIDGES), Some("control"));
        assert_eq!(plane.addr_handlers.len(), 1, "rebound, not duplicated");
        plane.unregister_addr(MacAddr::ALL_BRIDGES);
        assert_eq!(plane.addr_handler(MacAddr::ALL_BRIDGES), None);
    }

    #[test]
    fn first_bind_wins() {
        let mut plane = Plane::new(2, SimDuration::from_secs(300));
        assert!(plane.bind_in(0, "dumb"));
        assert!(!plane.bind_in(0, "other"), "second binder must fail");
        assert!(plane.bind_in(0, "dumb"), "same owner may rebind");
        assert!(plane.bind_out(0, "other"), "output space is separate");
        plane.unbind_all("dumb");
        assert!(plane.bind_in(0, "other"));
    }

    #[test]
    fn status_queries() {
        let mut plane = Plane::new(1, SimDuration::from_secs(300));
        assert!(!plane.is_running("stp_dec"));
        plane
            .status
            .insert("stp_dec".into(), SwitchletStatus::Running);
        assert!(plane.is_running("stp_dec"));
        assert!(plane.is_loaded("stp_dec"));
        plane
            .status
            .insert("stp_dec".into(), SwitchletStatus::Suspended);
        assert!(!plane.is_running("stp_dec"));
        assert!(plane.is_loaded("stp_dec"));
        plane
            .status
            .insert("stp_dec".into(), SwitchletStatus::Stopped);
        assert!(!plane.is_loaded("stp_dec"));
    }
}
