//! The shared forwarding plane — the state the paper's switchlets reach
//! through "access points in the previous switchlets": per-port
//! forwarding/learning flags (set by the spanning-tree switchlet, honored
//! by the switching function), the learning table, the demultiplexer's
//! address registrations, and the published spanning-tree snapshots the
//! control switchlet monitors.
//!
//! Since PR 4 the plane also carries the **forwarding decision cache** and
//! the **generation counter** that keeps it honest. Every piece of state a
//! switching function's verdict can depend on is mutated through methods
//! that bump a generation: learn-table mapping changes (insertions,
//! moves, evictions, flushes — timestamp refreshes excluded, they cannot
//! flip a verdict), port-flag writes, switchlet lifecycle transitions,
//! data-plane (re)selection and timer deliveries. A cached verdict is
//! replayed only when its recorded generation still matches and its
//! freshness deadline has not passed, so a cache hit can never diverge
//! from re-executing the switching function — the invariant the golden
//! byte-identical-trace tests enforce end to end.

use std::collections::HashMap;

use ether::MacAddr;
use netsim::{FastMap, PortId, SimDuration, SimTime};

use crate::switchlets::stp::engine::StpSnapshot;

/// Per-port permission flags (the spanning tree's access points).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PortFlags {
    /// May data frames be accepted from / emitted to this port?
    pub forward: bool,
    /// May source addresses be learned from this port?
    pub learn: bool,
}

impl Default for PortFlags {
    fn default() -> Self {
        // Before any spanning tree runs, the bridge forwards everywhere
        // (the paper's buffered repeater "cannot tolerate a network
        // topology with any loops").
        PortFlags {
            forward: true,
            learn: true,
        }
    }
}

/// The outcome of one [`LearningTable::learn`] call. Callers surface the
/// bounded-learning outcomes (eviction, rejection) as bridge counters and
/// flight-recorder probe records; the plain outcomes are free to ignore.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LearnOutcome {
    /// Group source: never learned (paper footnote 3).
    Ignored,
    /// A new entry was inserted.
    Fresh,
    /// An existing entry's timestamp was refreshed (mapping unchanged).
    Refreshed,
    /// An existing entry moved to a new port.
    Moved,
    /// A new entry was admitted by evicting the named victim — the
    /// oldest-refreshed entry on the offending port, ties broken by MAC
    /// order, so the choice is replay-stable by construction.
    Evicted(MacAddr),
    /// The new source was rejected: the table is at its hard capacity
    /// and the offending port holds no entry to evict. The mapping (and
    /// its generation) are untouched.
    Rejected,
}

/// The self-learning table: source address → (port, last-seen time).
/// Paper Section 5.3: "the triple (source address, current time, input
/// port) is placed into a hash table keyed by the source address,
/// replacing any previous entry".
///
/// The table tracks its own mutation generation: any change to the
/// address→port *mapping* (new entry, port move, eviction, flush) bumps
/// it; refreshing the timestamp of an unchanged mapping does not, because
/// no forwarding verdict can change when only a last-seen time advances
/// (staleness is handled by the cache's own freshness deadline).
///
/// Since PR 10 the table can be **bounded** ([`LearningTable::set_bounds`]):
/// a hard capacity plus a per-port occupancy quota, with a deterministic
/// victim-selection policy (oldest refresh within the offending port, MAC
/// order as the tiebreak — a total order independent of hash iteration
/// order, so replays evict identically). Both bounds default to 0 =
/// unlimited, the legacy behaviour.
#[derive(Debug)]
pub struct LearningTable {
    /// Keyed by the fast deterministic hasher: this map is probed and
    /// refreshed once per data frame.
    map: FastMap<MacAddr, (PortId, SimTime)>,
    age: SimDuration,
    gen: u64,
    /// Hard entry capacity (0 = unbounded).
    cap: usize,
    /// Per-port occupancy quota (0 = none).
    port_quota: usize,
    /// Live entry count per port, grown on demand.
    occupancy: Vec<u32>,
}

impl LearningTable {
    /// Table with the given entry lifetime.
    pub fn new(age: SimDuration) -> LearningTable {
        LearningTable {
            map: FastMap::default(),
            age,
            gen: 0,
            cap: 0,
            port_quota: 0,
            occupancy: Vec::new(),
        }
    }

    /// Arm the bounded-learning policy: a hard `cap` on total entries
    /// and a per-port occupancy `quota` (either 0 = unlimited, the
    /// legacy default). Bounds gate admissions in
    /// [`LearningTable::learn`]; existing entries are not retroactively
    /// evicted.
    pub fn set_bounds(&mut self, cap: usize, quota: usize) {
        self.cap = cap;
        self.port_quota = quota;
    }

    /// The configured hard capacity (0 = unbounded).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Live entries learned on one port.
    pub fn occupancy_of(&self, port: PortId) -> usize {
        self.occupancy.get(port.0).map_or(0, |&c| c as usize)
    }

    fn occupancy_inc(&mut self, port: PortId) {
        if self.occupancy.len() <= port.0 {
            self.occupancy.resize(port.0 + 1, 0);
        }
        self.occupancy[port.0] += 1;
    }

    fn occupancy_dec(&mut self, port: PortId) {
        if let Some(c) = self.occupancy.get_mut(port.0) {
            *c = c.saturating_sub(1);
        }
    }

    /// The deterministic eviction victim on `port`: oldest refresh first,
    /// MAC order breaking ties — a total order over the entries, so the
    /// answer never depends on hash iteration order.
    fn victim_on(&self, port: PortId) -> Option<MacAddr> {
        self.map
            .iter()
            .filter(|&(_, &(p, _))| p == port)
            .min_by_key(|&(mac, &(_, seen))| (seen, mac.octets()))
            .map(|(mac, _)| *mac)
    }

    /// Record that `src` was seen on `port`. Group addresses are never
    /// learned (paper footnote 3). When bounds are armed, a new source
    /// that would exceed the port quota or the hard capacity evicts the
    /// deterministic victim *on the offending port* — an attacker's
    /// randomized sources cannibalize the attacker's own entries, never a
    /// victim port's — or is rejected outright when that port has
    /// nothing to evict.
    pub fn learn(&mut self, src: MacAddr, port: PortId, now: SimTime) -> LearnOutcome {
        if src.is_multicast() {
            return LearnOutcome::Ignored;
        }
        if let Some(&(old_port, _)) = self.map.get(&src) {
            if old_port == port {
                self.map.insert(src, (port, now));
                return LearnOutcome::Refreshed; // timestamp refresh
            }
            // A port move must honor the destination port's quota too,
            // else an attacker could herd existing sources onto one port
            // past its bound. The victim is chosen on the *destination*
            // port (the one gaining an entry), never the mover itself.
            if self.port_quota > 0 && self.occupancy_of(port) >= self.port_quota {
                let Some(victim) = self.victim_on(port) else {
                    // Quota 0-sized in practice cannot happen (the port
                    // is over quota, so it holds an entry), but stay
                    // total: refuse the move, keep the old mapping.
                    return LearnOutcome::Rejected;
                };
                self.map.remove(&victim);
                self.occupancy_dec(port);
                self.map.insert(src, (port, now));
                self.occupancy_dec(old_port);
                self.occupancy_inc(port);
                self.gen += 1;
                return LearnOutcome::Evicted(victim);
            }
            self.map.insert(src, (port, now));
            self.occupancy_dec(old_port);
            self.occupancy_inc(port);
            self.gen += 1;
            return LearnOutcome::Moved;
        }
        let over_quota = self.port_quota > 0 && self.occupancy_of(port) >= self.port_quota;
        let over_cap = self.cap > 0 && self.map.len() >= self.cap;
        if over_quota || over_cap {
            let Some(victim) = self.victim_on(port) else {
                return LearnOutcome::Rejected;
            };
            self.map.remove(&victim);
            self.occupancy_dec(port);
            self.map.insert(src, (port, now));
            self.occupancy_inc(port);
            self.gen += 1;
            return LearnOutcome::Evicted(victim);
        }
        self.map.insert(src, (port, now));
        self.occupancy_inc(port);
        self.gen += 1;
        LearnOutcome::Fresh
    }

    /// Look up a destination; a stale entry counts as absent (and is
    /// dropped).
    pub fn lookup(&mut self, dst: MacAddr, now: SimTime) -> Option<PortId> {
        self.lookup_entry(dst, now).map(|(port, _)| port)
    }

    /// Like [`LearningTable::lookup`], also returning when the entry was
    /// last refreshed (callers derive freshness deadlines from it).
    pub fn lookup_entry(&mut self, dst: MacAddr, now: SimTime) -> Option<(PortId, SimTime)> {
        match self.map.get(&dst) {
            Some(&(port, seen)) if now.saturating_since(seen) <= self.age => Some((port, seen)),
            Some(&(port, _)) => {
                self.map.remove(&dst);
                self.occupancy_dec(port);
                self.gen += 1;
                None
            }
            None => None,
        }
    }

    /// Non-mutating currency check: is there a live entry for `dst`?
    /// Stale entries count as absent but are left in place (unlike
    /// [`LearningTable::lookup`]), so policers can classify
    /// unknown-unicast traffic without perturbing the table or its
    /// generation.
    pub fn peek(&self, dst: MacAddr, now: SimTime) -> bool {
        matches!(self.map.get(&dst), Some(&(_, seen)) if now.saturating_since(seen) <= self.age)
    }

    /// Drop every entry older than the age limit.
    pub fn sweep(&mut self, now: SimTime) {
        let age = self.age;
        let before = self.map.len();
        let occupancy = &mut self.occupancy;
        self.map.retain(|_, (port, seen)| {
            let keep = now.saturating_since(*seen) <= age;
            if !keep {
                if let Some(c) = occupancy.get_mut(port.0) {
                    *c = c.saturating_sub(1);
                }
            }
            keep
        });
        if self.map.len() != before {
            self.gen += 1;
        }
    }

    /// Forget everything (used on topology change).
    pub fn flush(&mut self) {
        if !self.map.is_empty() {
            self.gen += 1;
        }
        self.map.clear();
        self.occupancy.fill(0);
    }

    /// The configured entry lifetime.
    pub fn age(&self) -> SimDuration {
        self.age
    }

    /// Pre-size the table for `stations` distinct source addresses, so
    /// steady-state learning at that scale never rehashes.
    pub fn reserve(&mut self, stations: usize) {
        self.map.reserve(stations.saturating_sub(self.map.len()));
    }

    /// Mapping-mutation counter (monotonic).
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate entries (for display/debugging).
    pub fn entries(&self) -> impl Iterator<Item = (&MacAddr, &(PortId, SimTime))> {
        self.map.iter()
    }
}

/// Which switching function is installed.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum DataPlaneSel {
    /// No switching function yet: frames are dropped (the bare loader).
    #[default]
    None,
    /// A native switchlet, by name.
    Native(String),
    /// A VM switchlet handler (registered under "switching").
    Vm(switchlet::FuncVal),
}

/// Lifecycle status of a switchlet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SwitchletStatus {
    /// Dispatching normally.
    Running,
    /// Loaded but not receiving events.
    Suspended,
    /// Halted permanently.
    Stopped,
}

/// Forwarding statistics.
#[derive(Clone, Debug, Default)]
pub struct BridgeStats {
    /// Frames accepted into the input queue.
    pub frames_in: u64,
    /// Frames dropped because the input queue was full.
    pub queue_drops: u64,
    /// Frames flooded to all other ports.
    pub flooded: u64,
    /// Frames forwarded to a single learned port.
    pub directed: u64,
    /// Frames suppressed because the learned port was the arrival port.
    pub filtered: u64,
    /// Frames dropped because a port was not forwarding.
    pub blocked: u64,
    /// Frames delivered to address-registered switchlets (BPDUs etc.).
    pub registered: u64,
    /// Frames consumed by the loader endpoint.
    pub to_loader: u64,
    /// Frames dropped for want of any switching function.
    pub no_plane: u64,
    /// Aggregate octets forwarded (directed + flooded).
    pub bytes_forwarded: u64,
    /// VM instructions retired on the data path.
    pub vm_instructions: u64,
    /// Switchlet images loaded over the network.
    pub images_loaded: u64,
    /// Switchlet images rejected (decode/link/verify failures).
    pub images_rejected: u64,
    /// Forwarding verdicts replayed from the decision cache.
    pub cache_hits: u64,
    /// Unicast verdicts computed by full execution (and then cached).
    pub cache_misses: u64,
    /// Learn-table occupancy gauge (live entries at last learn/sweep).
    pub learn_occupancy: u64,
    /// Bounded learning: victims evicted to admit new sources.
    pub learn_evictions: u64,
    /// Bounded learning: new sources rejected (table full, offending
    /// port empty).
    pub learn_rejects: u64,
    /// Storm control: ingress port-classes suppressed for a hold-down.
    pub storm_suppressions: u64,
    /// BPDU guard: guarded ports shut down on BPDU receipt.
    pub bpdu_guard_trips: u64,
}

impl BridgeStats {
    /// The defense-plane counter names (PR 10). Reports for scenarios
    /// that never arm a defense filter these out so pre-existing report
    /// bytes stay pinned.
    pub const SECURITY_KEYS: [&'static str; 5] = [
        "learn_occupancy",
        "learn_evictions",
        "learn_rejects",
        "storm_suppressions",
        "bpdu_guard_trips",
    ];

    /// Every counter as a stable `(name, value)` list, in declaration
    /// order — the shape structured reports (JSON emitters, tables) want,
    /// so they never fall out of sync with the struct.
    pub fn as_pairs(&self) -> [(&'static str, u64); 21] {
        [
            ("frames_in", self.frames_in),
            ("queue_drops", self.queue_drops),
            ("flooded", self.flooded),
            ("directed", self.directed),
            ("filtered", self.filtered),
            ("blocked", self.blocked),
            ("registered", self.registered),
            ("to_loader", self.to_loader),
            ("no_plane", self.no_plane),
            ("bytes_forwarded", self.bytes_forwarded),
            ("vm_instructions", self.vm_instructions),
            ("images_loaded", self.images_loaded),
            ("images_rejected", self.images_rejected),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("learn_occupancy", self.learn_occupancy),
            ("learn_evictions", self.learn_evictions),
            ("learn_rejects", self.learn_rejects),
            ("storm_suppressions", self.storm_suppressions),
            ("bpdu_guard_trips", self.bpdu_guard_trips),
            ("forwarded", self.directed + self.flooded),
        ]
    }
}

/// A memoized forwarding verdict for one `(in-port, src, dst)` unicast
/// flow — the pure decision the learning switchlet would recompute.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Ingress port was not forwarding: count and drop.
    Blocked,
    /// Destination learned on the arrival port: suppress.
    Filter,
    /// Forward to one learned, forwarding port.
    Direct(PortId),
    /// Flood to every other forwarding port (destination unknown).
    Flood,
}

#[derive(Copy, Clone, Debug)]
struct CacheEntry {
    src: MacAddr,
    dst: MacAddr,
    in_port: u16,
    gen: u64,
    /// Entry is replayable only strictly before this instant (derived
    /// from the learning-table entry's freshness window for `Direct` and
    /// `Filter`; unbounded for generation-guarded verdicts).
    valid_until: SimTime,
    verdict: Verdict,
}

/// Direct-mapped forwarding decision cache: fixed storage, no per-frame
/// allocation, O(1) probe and insert.
#[derive(Debug)]
pub struct DecisionCache {
    slots: Vec<Option<CacheEntry>>,
}

/// Slot count (power of two).
const CACHE_SLOTS: usize = 1024;

impl Default for DecisionCache {
    fn default() -> Self {
        DecisionCache {
            slots: vec![None; CACHE_SLOTS],
        }
    }
}

impl DecisionCache {
    fn index(in_port: PortId, src: MacAddr, dst: MacAddr) -> usize {
        // The simulator's shared fast deterministic hasher over the
        // 13-byte flow key.
        use std::hash::Hasher;
        let mut h = netsim::fasthash::FxHasher::default();
        h.write_u8(in_port.0 as u8);
        h.write(&src.octets());
        h.write(&dst.octets());
        (h.finish() as usize) & (CACHE_SLOTS - 1)
    }

    /// Replayable verdict for this flow at `now` under `gen`, if cached.
    #[inline]
    pub fn probe(
        &self,
        in_port: PortId,
        src: MacAddr,
        dst: MacAddr,
        gen: u64,
        now: SimTime,
    ) -> Option<Verdict> {
        let e = self.slots[Self::index(in_port, src, dst)].as_ref()?;
        if e.gen == gen
            && e.in_port == in_port.0 as u16
            && e.src == src
            && e.dst == dst
            && now <= e.valid_until
        {
            Some(e.verdict)
        } else {
            None
        }
    }

    /// Record a verdict computed by full execution.
    #[inline]
    pub fn store(
        &mut self,
        in_port: PortId,
        src: MacAddr,
        dst: MacAddr,
        gen: u64,
        valid_until: SimTime,
        verdict: Verdict,
    ) {
        self.slots[Self::index(in_port, src, dst)] = Some(CacheEntry {
            src,
            dst,
            in_port: in_port.0 as u16,
            gen,
            valid_until,
            verdict,
        });
    }
}

/// The shared plane.
pub struct Plane {
    /// Per-port flags, indexed by port. Written only through the
    /// generation-bumping setters.
    flags: Vec<PortFlags>,
    /// The learning table (shared so the spanning tree can flush it);
    /// tracks its own mapping generation.
    pub learn: LearningTable,
    /// Demultiplexer registrations: destination address → switchlet name.
    addr_handlers: Vec<(MacAddr, String)>,
    /// The installed switching function.
    data_plane: DataPlaneSel,
    /// The switching function installed before the current one — the
    /// watchdog's last-known-good rollback target when the current one
    /// is quarantined.
    prev_data_plane: Option<DataPlaneSel>,
    /// Switchlet lifecycle status mirror (readable by other switchlets —
    /// the control switchlet "checks that the DEC switchlet is operating
    /// and that the 802.1D switchlet is not").
    status: HashMap<String, SwitchletStatus>,
    /// Spanning-tree snapshots published by protocol switchlets.
    pub published: HashMap<String, StpSnapshot>,
    /// Input-port ownership (paper: "the first switchlet to bind to a
    /// given port succeeds and all others fail").
    pub owners_in: Vec<Option<String>>,
    /// Output-port ownership.
    pub owners_out: Vec<Option<String>>,
    /// Counters.
    pub stats: BridgeStats,
    /// The forwarding decision cache (consulted by switching functions).
    pub fwd_cache: DecisionCache,
    /// Decision-relevant mutations outside the learning table.
    gen: u64,
}

impl Plane {
    /// A plane for `n_ports` ports.
    pub fn new(n_ports: usize, learn_age: SimDuration) -> Plane {
        Plane {
            flags: vec![PortFlags::default(); n_ports],
            learn: LearningTable::new(learn_age),
            addr_handlers: Vec::new(),
            data_plane: DataPlaneSel::None,
            prev_data_plane: None,
            status: HashMap::new(),
            published: HashMap::new(),
            owners_in: vec![None; n_ports],
            owners_out: vec![None; n_ports],
            stats: BridgeStats::default(),
            fwd_cache: DecisionCache::default(),
            gen: 0,
        }
    }

    // ------------------------------------------------- generation window

    /// The decision generation: cached verdicts recorded under an older
    /// value are dead. Monotonic (sum of two monotonic counters).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.gen + self.learn.generation()
    }

    /// Invalidate every cached forwarding decision (cheap: the cache is
    /// generation-guarded, nothing is scanned). Called on every event
    /// that could change a switching function's verdict, and available to
    /// embedders that mutate decision inputs out of band.
    #[inline]
    pub fn bump_generation(&mut self) {
        self.gen += 1;
    }

    // ---------------------------------------------------------- flags

    /// All per-port flags.
    pub fn flags(&self) -> &[PortFlags] {
        &self.flags
    }

    /// Flags of one port.
    #[inline]
    pub fn port_flags(&self, port: usize) -> PortFlags {
        self.flags[port]
    }

    /// Number of bridge ports.
    #[inline]
    pub fn num_ports(&self) -> usize {
        self.flags.len()
    }

    /// Set a port's forwarding permission (bumps the generation on real
    /// changes — the spanning tree re-asserting a state is free).
    pub fn set_port_forward(&mut self, port: usize, forward: bool) {
        if self.flags[port].forward != forward {
            self.flags[port].forward = forward;
            self.gen += 1;
        }
    }

    /// Set a port's learning permission.
    pub fn set_port_learn(&mut self, port: usize, learn: bool) {
        if self.flags[port].learn != learn {
            self.flags[port].learn = learn;
            self.gen += 1;
        }
    }

    /// Set both flags of a port.
    pub fn set_port_flags(&mut self, port: usize, flags: PortFlags) {
        if self.flags[port] != flags {
            self.flags[port] = flags;
            self.gen += 1;
        }
    }

    // ------------------------------------------------------ data plane

    /// The installed switching function.
    pub fn data_plane(&self) -> &DataPlaneSel {
        &self.data_plane
    }

    /// Install (or clear) the switching function. Real changes remember
    /// the displaced selection (see [`Plane::prev_data_plane`]) and bump
    /// the generation.
    pub fn set_data_plane(&mut self, sel: DataPlaneSel) {
        if self.data_plane != sel {
            self.prev_data_plane = Some(std::mem::replace(&mut self.data_plane, sel));
            self.gen += 1;
        }
    }

    /// The switching function the current one displaced, if any — the
    /// watchdog rolls back to it when the current one is quarantined.
    pub fn prev_data_plane(&self) -> Option<&DataPlaneSel> {
        self.prev_data_plane.as_ref()
    }

    // ------------------------------------------------------- lifecycle

    /// A switchlet's lifecycle status.
    pub fn status_of(&self, name: &str) -> Option<SwitchletStatus> {
        self.status.get(name).copied()
    }

    /// Record a lifecycle transition (load/suspend/resume/halt) — each
    /// one invalidates cached decisions.
    pub fn set_status(&mut self, name: impl Into<String>, status: SwitchletStatus) {
        self.status.insert(name.into(), status);
        self.gen += 1;
    }

    // -------------------------------------------------------- bindings

    /// Claim an input port for `owner`; `false` if already bound to
    /// someone else (re-binding by the same owner succeeds).
    pub fn bind_in(&mut self, port: usize, owner: &str) -> bool {
        match &self.owners_in[port] {
            Some(existing) => existing == owner,
            None => {
                self.owners_in[port] = Some(owner.to_owned());
                true
            }
        }
    }

    /// Claim an output port for `owner`.
    pub fn bind_out(&mut self, port: usize, owner: &str) -> bool {
        match &self.owners_out[port] {
            Some(existing) => existing == owner,
            None => {
                self.owners_out[port] = Some(owner.to_owned());
                true
            }
        }
    }

    /// Release every port bound by `owner`.
    pub fn unbind_all(&mut self, owner: &str) {
        for slot in self.owners_in.iter_mut().chain(self.owners_out.iter_mut()) {
            if slot.as_deref() == Some(owner) {
                *slot = None;
            }
        }
    }

    // ------------------------------------------------- demultiplexer

    /// Register (or rebind) the handler for a destination address.
    /// Rebinding is how the control switchlet takes over the All Bridges
    /// address and later hands it to the 802.1D switchlet.
    pub fn register_addr(&mut self, addr: MacAddr, switchlet: impl Into<String>) {
        let name = switchlet.into();
        if let Some(slot) = self.addr_handlers.iter_mut().find(|(a, _)| *a == addr) {
            slot.1 = name;
        } else {
            self.addr_handlers.push((addr, name));
        }
        self.gen += 1;
    }

    /// Remove a registration.
    pub fn unregister_addr(&mut self, addr: MacAddr) {
        self.addr_handlers.retain(|(a, _)| *a != addr);
        self.gen += 1;
    }

    /// Who handles frames to `addr`?
    pub fn addr_handler(&self, addr: MacAddr) -> Option<&str> {
        self.addr_handlers
            .iter()
            .find(|(a, _)| *a == addr)
            .map(|(_, n)| n.as_str())
    }

    /// Is a switchlet currently running?
    pub fn is_running(&self, name: &str) -> bool {
        self.status.get(name) == Some(&SwitchletStatus::Running)
    }

    /// Is a switchlet loaded (running or suspended)?
    pub fn is_loaded(&self, name: &str) -> bool {
        matches!(
            self.status.get(name),
            Some(SwitchletStatus::Running | SwitchletStatus::Suspended)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn learning_replaces_and_ages() {
        let mut lt = LearningTable::new(SimDuration::from_secs(300));
        let mac = MacAddr::local(7);
        lt.learn(mac, PortId(0), t(0));
        assert_eq!(lt.lookup(mac, t(10)), Some(PortId(0)));
        // Host moved: new port replaces old.
        lt.learn(mac, PortId(1), t(20));
        assert_eq!(lt.lookup(mac, t(21)), Some(PortId(1)));
        // Stale after 300 s.
        assert_eq!(lt.lookup(mac, t(321)), None);
        assert!(lt.is_empty(), "stale entry evicted on lookup");
    }

    #[test]
    fn group_addresses_never_learned() {
        let mut lt = LearningTable::new(SimDuration::from_secs(300));
        lt.learn(MacAddr::BROADCAST, PortId(0), t(0));
        lt.learn(MacAddr::ALL_BRIDGES, PortId(0), t(0));
        assert!(lt.is_empty());
    }

    #[test]
    fn sweep_evicts_only_stale() {
        let mut lt = LearningTable::new(SimDuration::from_secs(100));
        lt.learn(MacAddr::local(1), PortId(0), t(0));
        lt.learn(MacAddr::local(2), PortId(0), t(90));
        lt.sweep(t(120));
        assert_eq!(lt.len(), 1);
        assert_eq!(lt.lookup(MacAddr::local(2), t(120)), Some(PortId(0)));
    }

    #[test]
    fn learn_generation_tracks_mapping_not_timestamps() {
        let mut lt = LearningTable::new(SimDuration::from_secs(300));
        let g0 = lt.generation();
        lt.learn(MacAddr::local(1), PortId(0), t(0));
        let g1 = lt.generation();
        assert!(g1 > g0, "new entry bumps");
        // Same mapping, fresher timestamp: no bump.
        lt.learn(MacAddr::local(1), PortId(0), t(5));
        assert_eq!(lt.generation(), g1, "timestamp refresh must not bump");
        // Port move bumps.
        lt.learn(MacAddr::local(1), PortId(1), t(6));
        assert!(lt.generation() > g1);
        // Stale eviction through lookup bumps.
        let g2 = lt.generation();
        assert_eq!(lt.lookup(MacAddr::local(1), t(1000)), None);
        assert!(lt.generation() > g2);
        // Flush of an empty table is free; of a non-empty one bumps.
        let g3 = lt.generation();
        lt.flush();
        assert_eq!(lt.generation(), g3);
        lt.learn(MacAddr::local(2), PortId(0), t(1000));
        let g4 = lt.generation();
        lt.flush();
        assert!(lt.generation() > g4);
    }

    #[test]
    fn bounded_learning_enforces_quota_with_deterministic_victims() {
        let mut lt = LearningTable::new(SimDuration::from_secs(300));
        lt.set_bounds(8, 2);
        assert_eq!(
            lt.learn(MacAddr::local(1), PortId(0), t(0)),
            LearnOutcome::Fresh
        );
        assert_eq!(
            lt.learn(MacAddr::local(2), PortId(0), t(1)),
            LearnOutcome::Fresh
        );
        // Quota reached on port 0: the oldest-refreshed entry there is
        // the victim.
        assert_eq!(
            lt.learn(MacAddr::local(3), PortId(0), t(2)),
            LearnOutcome::Evicted(MacAddr::local(1))
        );
        assert_eq!(lt.len(), 2);
        assert_eq!(lt.occupancy_of(PortId(0)), 2);
        // Other ports are untouched by port-0 pressure.
        assert_eq!(
            lt.learn(MacAddr::local(9), PortId(1), t(3)),
            LearnOutcome::Fresh
        );
        assert_eq!(lt.lookup(MacAddr::local(9), t(4)), Some(PortId(1)));
        // Equal refresh times: MAC order breaks the tie.
        let mut lt2 = LearningTable::new(SimDuration::from_secs(300));
        lt2.set_bounds(0, 2);
        lt2.learn(MacAddr::local(5), PortId(0), t(0));
        lt2.learn(MacAddr::local(4), PortId(0), t(0));
        assert_eq!(
            lt2.learn(MacAddr::local(6), PortId(0), t(1)),
            LearnOutcome::Evicted(MacAddr::local(4)),
            "tie on refresh time must fall to the smaller MAC"
        );
    }

    #[test]
    fn bounded_learning_rejects_when_offending_port_has_nothing() {
        let mut lt = LearningTable::new(SimDuration::from_secs(300));
        lt.set_bounds(2, 0);
        lt.learn(MacAddr::local(1), PortId(0), t(0));
        lt.learn(MacAddr::local(2), PortId(0), t(1));
        let gen = lt.generation();
        // Table at capacity, port 1 owns no entries: reject, no bump.
        assert_eq!(
            lt.learn(MacAddr::local(3), PortId(1), t(2)),
            LearnOutcome::Rejected
        );
        assert_eq!(lt.len(), 2);
        assert_eq!(
            lt.generation(),
            gen,
            "a reject must not bump the generation"
        );
        // A refresh of an existing entry is always admitted.
        assert_eq!(
            lt.learn(MacAddr::local(1), PortId(0), t(3)),
            LearnOutcome::Refreshed
        );
        // Cap pressure on a port that has entries evicts within it.
        assert_eq!(
            lt.learn(MacAddr::local(4), PortId(0), t(4)),
            LearnOutcome::Evicted(MacAddr::local(2))
        );
    }

    #[test]
    fn bounded_occupancy_tracks_moves_sweeps_and_flushes() {
        let mut lt = LearningTable::new(SimDuration::from_secs(100));
        lt.set_bounds(8, 4);
        lt.learn(MacAddr::local(1), PortId(0), t(0));
        lt.learn(MacAddr::local(2), PortId(1), t(0));
        assert_eq!(lt.occupancy_of(PortId(0)), 1);
        assert_eq!(lt.occupancy_of(PortId(1)), 1);
        // A port move shifts occupancy between ports.
        assert_eq!(
            lt.learn(MacAddr::local(1), PortId(1), t(1)),
            LearnOutcome::Moved
        );
        assert_eq!(lt.occupancy_of(PortId(0)), 0);
        assert_eq!(lt.occupancy_of(PortId(1)), 2);
        // Stale-entry eviction through lookup releases occupancy.
        assert_eq!(lt.lookup(MacAddr::local(1), t(200)), None);
        assert_eq!(lt.occupancy_of(PortId(1)), 1);
        // Sweep releases occupancy for everything it drops.
        lt.sweep(t(500));
        assert_eq!(lt.occupancy_of(PortId(1)), 0);
        lt.learn(MacAddr::local(3), PortId(0), t(500));
        lt.flush();
        assert_eq!(lt.occupancy_of(PortId(0)), 0);
        assert!(lt.is_empty());
    }

    #[test]
    fn peek_is_non_mutating() {
        let mut lt = LearningTable::new(SimDuration::from_secs(100));
        lt.learn(MacAddr::local(1), PortId(0), t(0));
        let gen = lt.generation();
        assert!(lt.peek(MacAddr::local(1), t(50)));
        assert!(
            !lt.peek(MacAddr::local(1), t(200)),
            "stale counts as absent"
        );
        assert!(!lt.peek(MacAddr::local(2), t(50)));
        assert_eq!(lt.len(), 1, "peek must not drop the stale entry");
        assert_eq!(lt.generation(), gen);
    }

    #[test]
    fn addr_registration_rebinds() {
        let mut plane = Plane::new(2, SimDuration::from_secs(300));
        plane.register_addr(MacAddr::ALL_BRIDGES, "stp_ieee");
        assert_eq!(plane.addr_handler(MacAddr::ALL_BRIDGES), Some("stp_ieee"));
        // The control switchlet takes it over.
        plane.register_addr(MacAddr::ALL_BRIDGES, "control");
        assert_eq!(plane.addr_handler(MacAddr::ALL_BRIDGES), Some("control"));
        assert_eq!(plane.addr_handlers.len(), 1, "rebound, not duplicated");
        plane.unregister_addr(MacAddr::ALL_BRIDGES);
        assert_eq!(plane.addr_handler(MacAddr::ALL_BRIDGES), None);
    }

    #[test]
    fn first_bind_wins() {
        let mut plane = Plane::new(2, SimDuration::from_secs(300));
        assert!(plane.bind_in(0, "dumb"));
        assert!(!plane.bind_in(0, "other"), "second binder must fail");
        assert!(plane.bind_in(0, "dumb"), "same owner may rebind");
        assert!(plane.bind_out(0, "other"), "output space is separate");
        plane.unbind_all("dumb");
        assert!(plane.bind_in(0, "other"));
    }

    #[test]
    fn status_queries() {
        let mut plane = Plane::new(1, SimDuration::from_secs(300));
        assert!(!plane.is_running("stp_dec"));
        plane.set_status("stp_dec", SwitchletStatus::Running);
        assert!(plane.is_running("stp_dec"));
        assert!(plane.is_loaded("stp_dec"));
        plane.set_status("stp_dec", SwitchletStatus::Suspended);
        assert!(!plane.is_running("stp_dec"));
        assert!(plane.is_loaded("stp_dec"));
        plane.set_status("stp_dec", SwitchletStatus::Stopped);
        assert!(!plane.is_loaded("stp_dec"));
    }

    #[test]
    fn cache_probe_respects_generation_and_freshness() {
        let mut cache = DecisionCache::default();
        let (src, dst) = (MacAddr::local(1), MacAddr::local(2));
        cache.store(PortId(0), src, dst, 7, t(100), Verdict::Direct(PortId(1)));
        assert_eq!(
            cache.probe(PortId(0), src, dst, 7, t(50)),
            Some(Verdict::Direct(PortId(1)))
        );
        // Stale generation: dead.
        assert_eq!(cache.probe(PortId(0), src, dst, 8, t(50)), None);
        // Past the freshness deadline: dead.
        assert_eq!(cache.probe(PortId(0), src, dst, 7, t(101)), None);
        // Different flow key: miss.
        assert_eq!(cache.probe(PortId(1), src, dst, 7, t(50)), None);
        assert_eq!(cache.probe(PortId(0), dst, src, 7, t(50)), None);
    }

    #[test]
    fn plane_mutations_bump_generation() {
        let mut plane = Plane::new(2, SimDuration::from_secs(300));
        let g = plane.generation();
        plane.set_port_forward(0, false);
        assert!(plane.generation() > g, "flag change bumps");
        let g = plane.generation();
        plane.set_port_forward(0, false);
        assert_eq!(plane.generation(), g, "no-op flag write is free");
        plane.set_data_plane(DataPlaneSel::Native("x".into()));
        assert!(plane.generation() > g, "plane selection bumps");
        let g = plane.generation();
        plane.set_status("x", SwitchletStatus::Suspended);
        assert!(plane.generation() > g, "lifecycle bumps");
        let g = plane.generation();
        plane.learn.learn(MacAddr::local(9), PortId(1), t(1));
        assert!(plane.generation() > g, "learn mapping change bumps");
    }
}
