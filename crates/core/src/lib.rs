//! # active-bridge — the Active Bridge of Alexander, Shaw, Nettles & Smith
//!
//! A programmable network bridge that is extended *while running* by
//! loadable, statically type-checked modules ("switchlets"):
//!
//! 1. the [`bridge::BridgeNode`] starts as nothing but a loader
//!    ([`loader::NetLoader`]: Ethernet demux → minimal IP → minimal UDP →
//!    write-only TFTP, per paper Section 5.2);
//! 2. the **dumb bridge** switchlet makes it a buffered repeater;
//! 3. the **learning** switchlet replaces the switching function with one
//!    that tracks source addresses;
//! 4. the **spanning tree** switchlet (IEEE 802.1D, or the DEC-style
//!    variant) suppresses redundant paths through per-port access points;
//! 5. the **control** switchlet upgrades the network from the old
//!    spanning-tree protocol to the new one on the fly — validating the
//!    new protocol against captured state and falling back automatically
//!    on failure (paper Table 1).
//!
//! Switchlets come in two kinds behind one loading discipline (image
//! format, MD5 interface digests, verification, lifecycle): **VM
//! switchlets** carrying real bytecode executed by the `switchlet` crate's
//! interpreter, and **native switchlets** (Rust implementations named by
//! their carrier image) for the heavyweight protocol engines — see
//! DESIGN.md §1 for the substitution argument.

pub mod bridge;
pub mod config;
pub mod hostmods;
pub mod loader;
pub mod plane;
#[doc(hidden)]
#[path = "scenario.rs"]
pub mod scenario_impl;
pub mod switchlets;

pub use bridge::{BridgeCommand, BridgeCtx, BridgeNode, DataFrame, NativeInit, NativeSwitchlet};
pub use config::{BridgeConfig, StormConfig, StpTimers, TransitionTimers};
pub use plane::{
    BridgeStats, DataPlaneSel, DecisionCache, LearnOutcome, LearningTable, Plane, PortFlags,
    SwitchletStatus, Verdict,
};
pub use switchlets::control::{ControlSwitchlet, Phase, TransitionEvent};
pub use switchlets::dumb::DumbBridge;
pub use switchlets::learning::LearningBridge;
pub use switchlets::stp::bpdu::{Bpdu, BridgeId, ConfigBpdu, StpVariant};
pub use switchlets::stp::engine::{Defect, PortRole, PortState, StpAction, StpEngine, StpSnapshot};
pub use switchlets::stp::StpSwitchlet;
