//! Flight-recorder integration: arming the probe never changes a run,
//! the exported timeline is byte-stable, and the VM hot-function profile
//! observes a real switchlet data plane end to end.

use ab_scenario::runner::{run_recorded, run_traced, Scenario};
use ab_scenario::topo::TopologyShape;
use ab_scenario::workload::BatteryKind;
use ab_scenario::{run_jobs_local, timeline};
use netsim::{ProbeConfig, ProbeRecord};

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(TopologyShape::Star { arms: 3 }, BatteryKind::Pings, 7),
        Scenario::new(TopologyShape::Ring { bridges: 3 }, BatteryKind::Streams, 11),
        Scenario::new(
            TopologyShape::Random {
                segments: 4,
                extra_links: 1,
            },
            BatteryKind::Contention,
            23,
        ),
    ]
}

/// The recorded run is the traced run: same report, same trace digest.
/// This is the scenario-level face of the non-perturbation invariant
/// (the world-level proof against golden digests is in
/// `tests/determinism.rs`).
#[test]
fn recording_does_not_change_report_or_digest() {
    for sc in scenarios() {
        let (plain_report, plain_digest) = run_traced(&sc);
        let (rec_report, rec_digest, world) = run_recorded(&sc, ProbeConfig::default());
        assert_eq!(
            plain_digest, rec_digest,
            "{}: probe-armed digest diverged",
            sc.name
        );
        assert_eq!(
            plain_report.to_json().render_pretty(),
            rec_report.to_json().render_pretty(),
            "{}: probe-armed report diverged",
            sc.name
        );
        assert!(
            !world.probe().is_empty(),
            "{}: armed run recorded nothing",
            sc.name
        );
    }
}

/// The exported timeline is a pure function of the scenario: repeated
/// runs — and runs performed inside the exec pool at any worker count —
/// render byte-identical JSON.
#[test]
fn timeline_json_is_byte_identical_across_runs_and_jobs() {
    let sc = Scenario::new(TopologyShape::Star { arms: 3 }, BatteryKind::Pings, 7);
    let render = |sc: &Scenario| {
        let (report, _digest, world) = run_recorded(sc, ProbeConfig::default());
        timeline::timeline_json(&world, &report).render_pretty()
    };
    let reference = render(&sc);
    assert!(reference.len() > 2, "timeline rendered an empty document");
    for jobs in [1usize, 2, 4] {
        let outputs = run_jobs_local(
            vec![sc.clone(), sc.clone(), sc.clone()],
            jobs,
            || (),
            |_, sc| render(&sc),
        );
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(
                out.as_bytes(),
                reference.as_bytes(),
                "jobs={jobs} run {i}: timeline bytes diverged"
            );
        }
    }
    // And the document passes its own structural validator.
    let events = timeline::validate_timeline(&reference).expect("exported timeline validates");
    assert!(events > 0, "timeline has no events");
}

/// Ring capacity is respected end to end: a tiny ring retains the newest
/// records and reports the evicted count exactly.
#[test]
fn trace_honors_a_tiny_ring_capacity() {
    let sc = Scenario::new(TopologyShape::Star { arms: 3 }, BatteryKind::Pings, 7);
    let (_report, _digest, world) = run_recorded(&sc, ProbeConfig { capacity: 32 });
    let probe = world.probe();
    assert_eq!(probe.len(), 32);
    assert!(probe.dropped() > 0, "the run should overflow 32 records");
    assert_eq!(probe.appended(), probe.dropped() + probe.len() as u64);
    // Survivors are the newest, in order.
    let seqs: Vec<u64> = probe.records().map(|e| e.seq).collect();
    assert_eq!(seqs.last().copied(), Some(probe.appended() - 1));
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
}

/// The VM hot-function profile and exec records, exercised by a real VM
/// data plane: a bridge booting the `dumb_vm` switchlet image forwards
/// pings, so every frame is a metered VM invocation.
#[test]
fn vm_data_plane_populates_hot_functions_and_exec_records() {
    use ab_scenario::{bridge_ip, bridge_mac, host_ip, host_mac};
    use active_bridge::{BridgeConfig, BridgeNode};
    use hostsim::apps::{App, PingApp};
    use hostsim::{HostConfig, HostCostModel, HostNode};
    use netsim::{PortId, SegmentConfig, SimDuration, SimTime, World};

    let mut world = World::new(3);
    world.probe_mut().arm(ProbeConfig::default());
    let lan0 = world.add_segment(SegmentConfig::named("lan0"));
    let lan1 = world.add_segment(SegmentConfig::named("lan1"));
    let mut node = BridgeNode::new(
        "bridge0",
        bridge_mac(0),
        bridge_ip(0),
        2,
        BridgeConfig::default(),
    );
    node.boot_load_native(active_bridge::loader::NAME);
    node.boot_load(active_bridge::switchlets::dumb_vm::build_image());
    node.enable_vm_profile();
    let b = world.add_node(node);
    world.attach(b, lan0);
    world.attach(b, lan1);
    let host_a = world.add_node(HostNode::new(
        "hostA",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![PingApp::new(
            PortId(0),
            host_ip(2),
            5,
            64,
            SimDuration::from_ms(10),
            1,
        )],
    ));
    world.attach(host_a, lan0);
    let host_b = world.add_node(HostNode::new(
        "hostB",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![],
    ));
    world.attach(host_b, lan1);
    world.run_until(SimTime::from_secs(1));

    let App::Ping(ping) = world.node::<HostNode>(host_a).app(0) else {
        panic!("app 0 is the ping train");
    };
    assert_eq!(ping.received, 5, "pings crossed the VM bridge");

    // The profile saw the forwarding function — named, with inclusive
    // fuel — and the probe holds the matching exec records.
    let hot = world.node::<BridgeNode>(b).hot_functions();
    assert!(!hot.is_empty(), "VM data plane produced no hot functions");
    let total_calls: u64 = hot.iter().map(|(_, _, c)| c.calls).sum();
    let total_fuel: u64 = hot.iter().map(|(_, _, c)| c.fuel).sum();
    assert!(total_calls >= 10, "every frame is at least one VM call");
    assert!(total_fuel > 0, "VM execution burned fuel");

    let execs: Vec<(u64, u64)> = world
        .probe()
        .records()
        .filter_map(|e| match e.record {
            ProbeRecord::ExecEnd {
                fuel, host_calls, ..
            } => Some((fuel, host_calls)),
            _ => None,
        })
        .collect();
    assert!(!execs.is_empty(), "no ExecEnd records for the VM bridge");
    assert!(
        execs.iter().any(|&(fuel, _)| fuel > 0),
        "exec records carry metered fuel"
    );
}
