//! Integration coverage for the quality layer: report schema v2, the
//! all-waived scoring regression, and the offline analyzer's byte
//! stability across worker counts.

use ab_scenario::quality;
use ab_scenario::runner::{self, Scenario, Verdict};
use ab_scenario::sweep::{run_sweep_jobs, SweepSpec};
use ab_scenario::topo::TopologyShape;
use ab_scenario::workload::BatteryKind;
use ab_scenario::Json;
use netsim::SimDuration;

/// A sweep small enough for debug-mode tests that still covers a
/// degradation battery (contention) and a plain one (pings).
fn small_sweep(seed: u64) -> SweepSpec {
    SweepSpec {
        shapes: vec![
            TopologyShape::Line { bridges: 2 },
            TopologyShape::Ring { bridges: 3 },
        ],
        batteries: vec![BatteryKind::Pings, BatteryKind::Contention],
        seed,
        duration: None,
        defended_arms: false,
    }
}

/// Walk a JSON object path, panicking with the path on a miss.
fn get<'j>(mut j: &'j Json, path: &[&str]) -> &'j Json {
    for key in path {
        let Json::Obj(members) = j else {
            panic!("{path:?}: not an object at {key}");
        };
        j = members
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
            .unwrap_or_else(|| panic!("{path:?}: missing {key}"));
    }
    j
}

/// Regression for the `unwrap_or(100)` bug: a run whose invariants were
/// all waived must render `score_percent: null`, not a perfect 100, and
/// still count as passing (no judged invariant failed).
#[test]
fn all_waived_report_has_no_score() {
    let sc = Scenario::new(TopologyShape::Line { bridges: 2 }, BatteryKind::Pings, 5);
    let mut report = runner::run(&sc);
    for inv in &mut report.invariants {
        inv.verdict = Verdict::Waived;
    }
    assert!(report.passed(), "waived invariants must not fail the run");
    let json = report.to_json();
    assert_eq!(
        get(&json, &["summary", "score_percent"]),
        &Json::Null,
        "an all-waived run must not look perfect"
    );
    let rendered = json.render();
    assert!(
        rendered.contains("\"score_percent\":null"),
        "null must survive rendering: {rendered}"
    );
}

/// Every scenario report carries a `quality` section whose subscores
/// round-trip through JSON, and the sweep summary aggregates them.
#[test]
fn sweep_json_carries_quality_sections() {
    let sweep = run_sweep_jobs(&small_sweep(900), 1);
    let json = sweep.to_json();
    let Json::Arr(runs) = get(&json, &["runs"]) else {
        panic!("runs must be an array");
    };
    assert_eq!(runs.len(), 4);
    let mut overalls = Vec::new();
    for run in runs {
        let q = get(run, &["quality"]);
        let parsed = quality::QualityScore::from_json(q).expect("quality section parses");
        assert_eq!(&parsed.to_json().render(), &q.render());
        if let Json::U64(o) = get(q, &["overall"]) {
            overalls.push(*o);
        }
    }
    assert!(!overalls.is_empty(), "scored scenarios must exist");
    let agg = get(&json, &["summary", "quality"]);
    assert_eq!(
        get(agg, &["scenarios_scored"]),
        &Json::U64(overalls.len() as u64)
    );
    assert_eq!(
        get(agg, &["mean"]),
        &Json::U64(overalls.iter().sum::<u64>() / overalls.len() as u64)
    );
    assert_eq!(
        get(agg, &["min"]),
        &Json::U64(*overalls.iter().min().unwrap())
    );
}

/// The contention battery's loaded pings must both survive (strict loss
/// invariants — nothing is scripted) and register a degradation score.
#[test]
fn contention_battery_scores_degradation() {
    let sc = Scenario::new(
        TopologyShape::Ring { bridges: 3 },
        BatteryKind::Contention,
        2109,
    );
    let report = runner::run(&sc);
    assert!(report.passed(), "{}", report.to_json().render_pretty());
    let q = quality::score_report(&report);
    let degr = q.degradation.expect("baseline+loaded pings must pair");
    assert!(degr <= 100);
    assert!(
        q.overall.is_some(),
        "a contention run must produce an overall score"
    );
}

/// The full offline path is byte-stable: render the sweep at 1, 2 and 4
/// workers, parse each document back, and produce scorecards — all
/// byte-identical.
#[test]
fn analyzer_scorecards_are_byte_identical_across_jobs() {
    let spec = small_sweep(3300);
    let reference = run_sweep_jobs(&spec, 1).to_json().render_pretty();
    let mut cards = Vec::new();
    for jobs in [1, 2, 4] {
        let rendered = run_sweep_jobs(&spec, jobs).to_json().render_pretty();
        assert_eq!(rendered, reference, "sweep JSON must not vary with jobs");
        let parsed = Json::parse(&rendered).expect("rendered sweep parses");
        cards.push(quality::sweep_scorecards(&parsed).expect("scorecards render"));
    }
    assert_eq!(cards[0], cards[1]);
    assert_eq!(cards[1], cards[2]);
    assert!(
        cards[0].contains("SCENARIO"),
        "header present:\n{}",
        cards[0]
    );
    assert!(
        quality::sweep_overall(&Json::parse(&reference).unwrap())
            .expect("overall parses")
            .is_some(),
        "the sweep must produce an overall quality score"
    );
}

/// A duration override flows through the sweep spec (sanity that the
/// small sweep used above honors its knobs deterministically).
#[test]
fn sweep_duration_override_is_deterministic() {
    let mut spec = small_sweep(77);
    spec.duration = Some(SimDuration::from_secs(30));
    let a = run_sweep_jobs(&spec, 2).to_json().render();
    let b = run_sweep_jobs(&spec, 2).to_json().render();
    assert_eq!(a, b);
}
