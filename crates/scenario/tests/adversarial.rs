//! Integration coverage for the adversarial battery and the defense
//! plane: the defended arm keeps its victims alive under a MAC flood, an
//! ARP storm and (on shapes with host-facing edge ports) a rogue-root
//! BPDU injection, while the undefended control arm demonstrably
//! degrades — and the whole A/B sweep replays byte-identically at every
//! worker count.
//!
//! Defense-off preservation (every pre-existing battery perturbs
//! nothing) is proven both here — no non-adversarial report renders a
//! `security` section or any security counter — and by the golden world
//! digests and byte-pinned reports in the other test files staying green
//! unchanged.

use ab_scenario::runner::{self, Scenario, SecurityReport, Verdict, DEFENSE_LEARN_CAP};
use ab_scenario::sweep::{run_sweep_jobs, SweepSpec};
use ab_scenario::topo::TopologyShape;
use ab_scenario::workload::BatteryKind;
use active_bridge::{LearnOutcome, LearningTable};
use ether::MacAddr;
use netsim::{PortId, SimDuration, SimTime};
use proptest::prelude::*;

/// Find one judged invariant by name, panicking with the report when it
/// is absent.
fn invariant(report: &runner::Report, name: &str) -> Verdict {
    report
        .invariants
        .iter()
        .find(|i| i.name == name)
        .unwrap_or_else(|| panic!("missing invariant {name}:\n{:#?}", report.invariants))
        .verdict
}

/// The four defense invariants plus the control-arm one, in report order.
const DEFENSE_INVARIANTS: [&str; 4] = [
    "learn_table_bounded",
    "victim_flows_survive",
    "storm_suppressed_and_released",
    "root_stays_stable",
];

fn run_arm(shape: TopologyShape, seed: u64, defended: bool) -> runner::Report {
    let mut sc = Scenario::new(shape, BatteryKind::Adversarial, seed);
    sc.defended = defended;
    runner::run(&sc)
}

fn security(report: &runner::Report) -> &SecurityReport {
    report
        .security
        .as_ref()
        .expect("adversarial runs carry a security section")
}

/// The defended arm under full attack: every defense invariant judged
/// `Pass` (not waived), the table bounded, the storm suppressed and
/// released symmetrically, and the victims' flows intact.
fn check_defended(shape: TopologyShape, seed: u64, expect_guard_trip: bool) {
    let report = run_arm(shape, seed, true);
    assert!(report.passed(), "{}", report.to_json().render_pretty());
    for name in DEFENSE_INVARIANTS {
        assert_eq!(
            invariant(&report, name),
            Verdict::Pass,
            "{name} must be judged (not waived) on the defended arm"
        );
    }
    assert_eq!(
        invariant(&report, "attack_degrades_undefended"),
        Verdict::Waived,
        "the degradation proof belongs to the control arm"
    );
    let sec = security(&report);
    assert!(sec.defended);
    assert!(sec.max_learn_occupancy <= DEFENSE_LEARN_CAP as u64);
    assert!(sec.storm_suppressions > 0, "the flood must trip policing");
    assert_eq!(sec.storm_suppressions, sec.storm_releases);
    assert!(!sec.rogue_root_seen, "BPDU guard must keep the root honest");
    if expect_guard_trip {
        assert!(sec.bpdu_guard_trips > 0, "the rogue BPDU must trip guard");
    } else {
        assert_eq!(sec.bpdu_guard_trips, 0, "no rogue scheduled on this shape");
    }
    // The attack apps themselves fired their full schedules: a defense
    // that silences the attacker's NIC would prove nothing.
    for label in ["mac_flood", "arp_storm"] {
        let a = report
            .apps
            .iter()
            .find(|a| a.label == label)
            .unwrap_or_else(|| panic!("battery must schedule {label}"));
        assert!(a.ok, "{label} must complete its schedule: {:?}", a.detail);
    }
}

/// The undefended control arm: the same offense (same seed) visibly
/// bites — the learning table blows past the defended cap — and the
/// defense invariants are waived, not judged.
fn check_control(shape: TopologyShape, seed: u64, expect_rogue_root: bool) {
    let report = run_arm(shape, seed, false);
    assert!(report.passed(), "{}", report.to_json().render_pretty());
    assert_eq!(
        invariant(&report, "attack_degrades_undefended"),
        Verdict::Pass,
        "the control arm must prove the attacks bite"
    );
    for name in DEFENSE_INVARIANTS {
        assert_eq!(
            invariant(&report, name),
            Verdict::Waived,
            "{name} is meaningless with the defenses off"
        );
    }
    let sec = security(&report);
    assert!(!sec.defended);
    assert!(
        sec.max_learn_occupancy > DEFENSE_LEARN_CAP as u64,
        "the flood must overwhelm an unbounded table: {}",
        sec.max_learn_occupancy
    );
    assert_eq!(sec.storm_suppressions, 0, "no policing configured");
    assert_eq!(sec.bpdu_guard_trips, 0, "no guard configured");
    assert_eq!(sec.rogue_root_seen, expect_rogue_root);
}

/// Line: host-facing edge ports exist, so the rogue-root injection runs
/// (and steals the root when undefended).
#[test]
fn adversarial_line_defended_survives() {
    check_defended(TopologyShape::Line { bridges: 2 }, 42, true);
}

#[test]
fn adversarial_line_control_degrades() {
    check_control(TopologyShape::Line { bridges: 2 }, 42, true);
}

/// Ring: every segment touches two bridges, so no rogue BPDU is
/// scheduled — the flood and the storm still trip the policing on both
/// first-hop bridges.
#[test]
fn adversarial_ring_defended_survives() {
    check_defended(TopologyShape::Ring { bridges: 3 }, 43, false);
}

#[test]
fn adversarial_ring_control_degrades() {
    check_control(TopologyShape::Ring { bridges: 3 }, 43, false);
}

/// One adversarial run is a pure function of its `(scenario, defended)`
/// pair: both arms replay byte-identically.
#[test]
fn adversarial_scenario_replays_byte_identically() {
    for defended in [false, true] {
        let mut sc = Scenario::new(
            TopologyShape::Line { bridges: 2 },
            BatteryKind::Adversarial,
            42,
        );
        sc.defended = defended;
        let a = runner::run(&sc).to_json().render();
        let b = runner::run(&sc).to_json().render();
        assert_eq!(a, b, "defended={defended}");
    }
}

/// The committed adversarial sweep (the CI gate) pairs every cell with a
/// defended arm, passes, and is byte-identical across worker counts.
#[test]
fn adversarial_sweep_is_byte_identical_across_jobs() {
    let spec = SweepSpec::adversarial_sweep(42);
    let scenarios = spec.scenarios();
    assert_eq!(scenarios.len(), 4, "two shapes, each as an A/B pair");
    for pair in scenarios.chunks(2) {
        assert!(!pair[0].defended && pair[1].defended);
        assert_eq!(pair[1].name, format!("{}-defended", pair[0].name));
        assert_eq!(pair[0].seed, pair[1].seed, "both arms replay one offense");
    }
    let reference = run_sweep_jobs(&spec, 1).to_json().render_pretty();
    for jobs in [2, 4] {
        let sweep = run_sweep_jobs(&spec, jobs);
        assert!(sweep.passed(), "adversarial sweep must pass at {jobs} jobs");
        assert_eq!(
            sweep.to_json().render_pretty(),
            reference,
            "adversarial sweep JSON must not vary with jobs"
        );
    }
    assert!(
        reference.contains("\"security\""),
        "adversarial reports must carry the security section"
    );
    assert!(reference.contains("\"defended\": true"));
}

/// Defense-off preservation: no pre-existing battery renders a
/// `security` section, a security invariant, or any security counter —
/// their reports are byte-for-byte what they were before the defense
/// plane existed (the golden digests in the other suites pin the rest).
#[test]
fn non_adversarial_reports_carry_no_security_artifacts() {
    for (shape, battery, seed) in [
        (
            TopologyShape::Line { bridges: 2 },
            BatteryKind::Pings,
            42u64,
        ),
        (TopologyShape::Line { bridges: 2 }, BatteryKind::Chaos, 42),
        (TopologyShape::Line { bridges: 2 }, BatteryKind::Lossy, 42),
    ] {
        let sc = Scenario::new(shape, battery, seed);
        let report = runner::run(&sc);
        assert!(report.security.is_none());
        let rendered = report.to_json().render_pretty();
        for needle in [
            "\"security\"",
            "\"defended\"",
            "learn_occupancy",
            "learn_evictions",
            "learn_rejects",
            "storm_suppressions",
            "bpdu_guard_trips",
            "learn_table_bounded",
            "attack_degrades_undefended",
        ] {
            assert!(
                !rendered.contains(needle),
                "{battery:?} report must not mention {needle}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The bounded learning table never exceeds its hard capacity or a
    /// per-port quota under arbitrary learn/sweep/flush/lookup
    /// interleavings.
    #[test]
    fn learning_table_respects_its_bounds(
        cap in 1usize..24,
        quota in 1usize..24,
        ops in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut t = LearningTable::new(SimDuration::from_secs(300));
        t.set_bounds(cap, quota);
        let mut now = SimTime::ZERO;
        for op in ops {
            // Each op word decodes to (selector, mac index, port).
            let sel = op % 100;
            let mac = ((op / 100) % 64) as u32;
            let port = (op / 6_400) as usize % 4;
            now += SimDuration::from_ms(7);
            match sel {
                0..=79 => {
                    t.learn(MacAddr::local(mac), PortId(port), now);
                }
                80..=89 => t.sweep(now),
                90..=94 => t.flush(),
                _ => {
                    t.lookup(MacAddr::local(mac), now);
                }
            }
            prop_assert!(t.len() <= cap, "len {} over cap {cap}", t.len());
            for p in 0..4 {
                prop_assert!(
                    t.occupancy_of(PortId(p)) <= quota,
                    "port {p} occupancy {} over quota {quota}",
                    t.occupancy_of(PortId(p))
                );
            }
        }
    }

    /// Victim selection is replay-stable: the same op sequence produces
    /// the same outcome sequence — evicted MACs included — every time.
    #[test]
    fn eviction_outcomes_replay_identically(
        cap in 1usize..16,
        quota in 1usize..16,
        ops in proptest::collection::vec(0u64..1_000_000, 1..150),
    ) {
        let run = || {
            let mut t = LearningTable::new(SimDuration::from_secs(300));
            t.set_bounds(cap, quota);
            let mut now = SimTime::ZERO;
            let mut outcomes: Vec<LearnOutcome> = Vec::new();
            for &op in &ops {
                let mac = (op % 48) as u32;
                let port = (op / 48) as usize % 3;
                now += SimDuration::from_ms(3);
                outcomes.push(t.learn(MacAddr::local(mac), PortId(port), now));
            }
            outcomes
        };
        prop_assert_eq!(run(), run());
    }

    /// A full adversarial run — either arm — replays to the same armed
    /// flight-recorder digest and the same report bytes.
    #[test]
    fn adversarial_traced_digests_replay(
        seed in 0u64..1_000,
        defended in any::<bool>(),
    ) {
        let mut sc = Scenario::new(
            TopologyShape::Line { bridges: 2 },
            BatteryKind::Adversarial,
            seed,
        );
        sc.defended = defended;
        let (a, da) = runner::run_traced(&sc);
        let (b, db) = runner::run_traced(&sc);
        prop_assert_eq!(da, db, "armed-probe digest must replay");
        prop_assert_eq!(a.to_json().render(), b.to_json().render());
        prop_assert!(a.security.is_some());
    }
}
