//! Integration coverage for the lossy battery: the four resilience
//! invariants are judged `Pass` (never waived) on both a learning-only
//! line and a spanning-tree ring, the resilience telemetry is consistent
//! with the scripted hostile medium, and the whole lossy sweep — burst
//! losses, mid-transfer bridge crash, poisoned image and all — replays
//! byte-identically at every worker count.
//!
//! Burst-free preservation (a workload without a burst schedule perturbs
//! nothing) is proven separately: every pre-existing battery renders no
//! `resilience` section and no `burst_drops` member, and the golden
//! world digests and byte-pinned reports in the other test files stayed
//! green unchanged.

use ab_scenario::runner::{self, Scenario, Verdict};
use ab_scenario::sweep::{run_sweep_jobs, SweepSpec};
use ab_scenario::topo::{self, TopologyShape};
use ab_scenario::workload::{self, BatteryKind};
use proptest::prelude::*;

/// Find one judged invariant by name, panicking with the report when
/// it is absent.
fn invariant(report: &runner::Report, name: &str) -> Verdict {
    report
        .invariants
        .iter()
        .find(|i| i.name == name)
        .unwrap_or_else(|| panic!("missing invariant {name}:\n{:#?}", report.invariants))
        .verdict
}

/// Run one lossy scenario and check the full hostile-media contract:
/// the run passes, the four resilience invariants are judged `Pass`
/// (not merely waived), and the resilience telemetry shows the medium
/// actually bit — burst drops landed, the transport retried, the
/// mid-transfer crash forced at least one fresh session, and the
/// integrity gate refused the poisoned image.
fn check_lossy_scenario(shape: TopologyShape, seed: u64) {
    let sc = Scenario::new(shape, BatteryKind::Lossy, seed);
    let report = runner::run(&sc);
    assert!(report.passed(), "{}", report.to_json().render_pretty());

    for name in [
        "uploads_complete_under_loss",
        "retries_within_budget",
        "corrupted_image_never_activates",
        "no_livelock",
    ] {
        assert_eq!(
            invariant(&report, name),
            Verdict::Pass,
            "{name} must be judged (not waived) on a lossy run"
        );
    }

    let resilience = report
        .resilience
        .as_ref()
        .expect("a lossy run must carry resilience telemetry");
    let topo = topo::generate(shape, seed);
    let wl = workload::generate(BatteryKind::Lossy, &topo, seed);
    assert!(wl.injects_bursts());
    assert!(wl.injects_downtime(), "the script crashes a bridge");
    assert!(
        resilience.burst_drops > 0,
        "the burst model must have eaten traffic"
    );
    assert!(
        resilience.retries > 0,
        "the adaptive transport must have retransmitted"
    );
    assert!(
        resilience.restarts > 0,
        "the crashed session must have restarted with a fresh WRQ"
    );
    assert!(
        resilience.integrity_rejects > 0,
        "the gate must have refused the poisoned image"
    );
    assert!(
        resilience.max_stall.is_some(),
        "uploads under loss stall and recover"
    );

    // The sealed upload survived the crash mid-transfer: its report
    // shows at least one session restart charged against the budget.
    let sealed = report
        .apps
        .iter()
        .find(|a| a.label == "upload_sealed")
        .expect("the lossy battery schedules a sealed upload");
    assert!(sealed.ok);
    let detail = |key: &str| {
        sealed
            .detail
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |&(_, v)| v)
    };
    assert!(
        detail("restarts") >= 1,
        "the bridge crash lands mid-transfer: {:?}",
        sealed.detail
    );
    assert!(detail("budget_used") <= detail("budget"));

    // The poisoned image parked as a classified integrity reject.
    let corrupt = report
        .apps
        .iter()
        .find(|a| a.label == "upload_corrupt")
        .expect("the lossy battery schedules a corrupt upload");
    assert!(corrupt.ok, "the gate must hold: {:?}", corrupt.detail);
}

/// Hostile media on a cycle-free line (learning bridges).
#[test]
fn lossy_line_completes_uploads_and_holds_the_gate() {
    check_lossy_scenario(TopologyShape::Line { bridges: 2 }, 42);
}

/// Hostile media on a ring (STP boot: the crashed bridge forces
/// re-election while the burst model chews on the access segment).
#[test]
fn lossy_ring_completes_uploads_and_holds_the_gate() {
    check_lossy_scenario(TopologyShape::Ring { bridges: 3 }, 43);
}

/// One lossy run is a pure function of its seed: two runs render
/// byte-identical JSON, bursts, retries and rejects included.
#[test]
fn lossy_scenario_replays_byte_identically() {
    let sc = Scenario::new(TopologyShape::Line { bridges: 2 }, BatteryKind::Lossy, 42);
    let a = runner::run(&sc).to_json().render();
    let b = runner::run(&sc).to_json().render();
    assert_eq!(a, b);
}

/// The committed lossy sweep (the CI hostile-media gate) is
/// byte-identical across worker counts and double runs, and every
/// scenario passes.
#[test]
fn lossy_sweep_is_byte_identical_across_jobs() {
    let spec = SweepSpec::lossy_sweep(42);
    let reference = run_sweep_jobs(&spec, 1).to_json().render_pretty();
    for jobs in [1, 2, 4] {
        let sweep = run_sweep_jobs(&spec, jobs);
        assert!(sweep.passed(), "lossy sweep must pass at {jobs} jobs");
        assert_eq!(
            sweep.to_json().render_pretty(),
            reference,
            "lossy sweep JSON must not vary with jobs"
        );
    }
    assert!(
        reference.contains("\"resilience\""),
        "lossy reports must carry the resilience section"
    );
    assert!(
        reference.contains("\"burst_drops\""),
        "segments under burst must render their drop counter"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated lossy workloads are internally consistent on arbitrary
    /// shapes and seeds: the burst schedule clears before the span ends,
    /// the crash heals, and generation replays exactly.
    #[test]
    fn lossy_workloads_heal_and_replay(
        bridges in 2usize..5,
        ring in any::<bool>(),
        seed in 0u64..100_000,
    ) {
        let shape = if ring {
            TopologyShape::Ring { bridges: bridges + 1 }
        } else {
            TopologyShape::Line { bridges }
        };
        let topo = topo::generate(shape, seed);
        let a = workload::generate(BatteryKind::Lossy, &topo, seed);
        let b = workload::generate(BatteryKind::Lossy, &topo, seed);
        prop_assert_eq!(a.items.clone(), b.items.clone());
        prop_assert_eq!(&a.chaos, &b.chaos);
        prop_assert!(a.injects_bursts());
        prop_assert!(a.injects_drops());
        prop_assert!(a.injects_downtime());
        prop_assert!(a.chaos.last_heal_at().is_some(), "the crash must heal");
        prop_assert!(a.chaos.span() <= a.span(), "the workload span covers the script");
        prop_assert_eq!(a.expected_quarantines, 0);
    }

    /// A full lossy run replays byte-identically on small cycle-free
    /// shapes (rings use 40s STP warm-up — too slow for a proptest —
    /// and are pinned by the fixed-seed tests above).
    #[test]
    fn lossy_runs_replay_on_lines(
        bridges in 2usize..4,
        seed in 0u64..1_000,
    ) {
        let sc = Scenario::new(TopologyShape::Line { bridges }, BatteryKind::Lossy, seed);
        let a = runner::run(&sc);
        prop_assert!(a.passed(), "{}", a.to_json().render_pretty());
        let b = runner::run(&sc);
        prop_assert_eq!(a.to_json().render(), b.to_json().render());
    }
}
