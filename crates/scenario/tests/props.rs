//! Property tests for the scenario substrate: generated topologies obey
//! their shape's size formulas and stay connected; generation and full
//! scenario runs are pure functions of their seeds (byte-identical world
//! traces and JSON reports).

use ab_scenario::runner::{self, Scenario};
use ab_scenario::topo::{self, TopologyShape};
use ab_scenario::workload::{self, BatteryKind};
use active_bridge::BridgeConfig;
use hostsim::{App, BlastApp, HostConfig, HostCostModel, HostNode};
use netsim::{PortId, SimDuration, SimTime, World};
use proptest::prelude::*;

/// Map proptest-drawn indices onto a shape (all seven, sized small).
fn shape(idx: usize, size: usize) -> TopologyShape {
    match idx % 7 {
        0 => TopologyShape::Line { bridges: size },
        1 => TopologyShape::Ring { bridges: size + 1 },
        2 => TopologyShape::Star { arms: size },
        3 => TopologyShape::Tree {
            depth: 1 + size % 2,
            fanout: 2,
        },
        4 => TopologyShape::FullMesh { segments: size + 1 },
        5 => TopologyShape::Metro {
            spines: 1 + size % 2,
            districts: size,
            leaves: 2,
        },
        _ => TopologyShape::Random {
            segments: size + 1,
            extra_links: size % 3,
        },
    }
}

/// The closed-form `(segments, bridges)` a shape must generate.
fn expected_counts(shape: TopologyShape) -> (usize, usize) {
    match shape {
        TopologyShape::Line { bridges } => (bridges + 1, bridges),
        TopologyShape::Ring { bridges } => (bridges, bridges),
        TopologyShape::Star { arms } => (arms + 1, arms),
        TopologyShape::Tree { depth, fanout } => {
            let mut segs = 1;
            let mut level = 1;
            for _ in 0..depth {
                level *= fanout;
                segs += level;
            }
            (segs, segs - 1)
        }
        TopologyShape::FullMesh { segments } => (segments, segments * (segments - 1) / 2),
        TopologyShape::Random {
            segments,
            extra_links,
        } => (segments, segments - 1 + extra_links),
        TopologyShape::Metro {
            spines,
            districts,
            leaves,
        } => {
            // One bridge per non-first spine, one uplink per district,
            // one bridge per non-root leaf: a tree, so segments - 1.
            let segs = spines + districts * leaves;
            (segs, segs - 1)
        }
    }
}

/// Serialize one built-and-run world into comparable bytes: the retained
/// trace plus segment counters.
fn world_trace_bytes(shape: TopologyShape, seed: u64) -> Vec<u8> {
    use ab_scenario::{host_ip, host_mac};
    let topo = topo::generate(shape, seed);
    let mut world = World::new(seed);
    let built = topo::instantiate(
        &mut world,
        &topo,
        &BridgeConfig::default(),
        topo.default_boot(),
    );
    // Blast across the diameter, starting only after loops are pruned.
    let start = if topo.cyclic() {
        SimDuration::from_secs(40)
    } else {
        SimDuration::from_ms(200)
    };
    let (from, to) = topo.far_pair();
    let sink = world.add_node(HostNode::new(
        "sink",
        HostConfig::simple(host_mac(1), host_ip(1), HostCostModel::FREE),
        vec![],
    ));
    world.attach(sink, built.segs[to]);
    let blaster = world.add_node(HostNode::new(
        "blaster",
        HostConfig::simple(host_mac(2), host_ip(2), HostCostModel::FREE),
        vec![App::delayed(
            start,
            BlastApp::new(PortId(0), host_mac(1), 200, 20, SimDuration::from_ms(2)),
        )],
    ));
    world.attach(blaster, built.segs[from]);
    world.run_until(SimTime::ZERO + start + SimDuration::from_secs(2));

    let mut out = Vec::new();
    for e in world.trace().entries() {
        out.extend_from_slice(format!("{:?}\t{:?}\t{}\n", e.at, e.node, e.msg).as_bytes());
    }
    for seg in world.stats().segments {
        out.extend_from_slice(format!("{}\t{:?}\n", seg.name, seg.counters).as_bytes());
    }
    assert!(!out.is_empty(), "run must produce trace entries");
    out
}

// ------------------------------------------------------------------------
// The primitive helpers migrated from `active_bridge::scenario` keep their
// original invariants (these assertions moved here with the code).

#[test]
fn addresses_are_distinct() {
    use ab_scenario::{bridge_ip, bridge_mac, host_ip, host_mac};
    assert_ne!(bridge_mac(1), bridge_mac(2));
    assert_ne!(bridge_mac(1), host_mac(1));
    assert_ne!(bridge_ip(1), host_ip(1));
    assert_ne!(host_ip(1), host_ip(258));
}

#[test]
fn ring_helper_topology_shape() {
    let mut world = World::new(1);
    let (segs, bridges) = ab_scenario::ring(
        &mut world,
        3,
        &BridgeConfig::default(),
        &["bridge_learning"],
    );
    assert_eq!(segs.len(), 3);
    assert_eq!(bridges.len(), 3);
    // Each segment carries exactly two bridge ports.
    for &seg in &segs {
        assert_eq!(world.segment(seg).attachments().len(), 2);
    }
}

#[test]
fn line_helper_topology_shape() {
    let mut world = World::new(1);
    let (segs, bridges) = ab_scenario::line(
        &mut world,
        2,
        &BridgeConfig::default(),
        &["bridge_learning"],
    );
    assert_eq!(segs.len(), 3);
    assert_eq!(bridges.len(), 2);
    assert_eq!(world.segment(segs[0]).attachments().len(), 1);
    assert_eq!(world.segment(segs[1]).attachments().len(), 2);
}

/// The compat helpers and the parametric generators wire identically.
#[test]
fn generators_match_compat_helpers() {
    let topo = topo::generate(TopologyShape::Ring { bridges: 4 }, 0);
    for (i, b) in topo.bridges.iter().enumerate() {
        assert_eq!(b.segments, vec![i, (i + 1) % 4]);
    }
    let topo = topo::generate(TopologyShape::Line { bridges: 3 }, 0);
    for (i, b) in topo.bridges.iter().enumerate() {
        assert_eq!(b.segments, vec![i, i + 1]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated topology matches its shape's closed-form segment
    /// and bridge counts, is connected, and loops exactly when the edge
    /// count says so.
    #[test]
    fn topology_counts_and_connectivity(
        idx in 0usize..7,
        size in 2usize..5,
        seed in 0u64..100_000,
    ) {
        let shape = shape(idx, size);
        let topo = topo::generate(shape, seed);
        let (segs, bridges) = expected_counts(shape);
        prop_assert_eq!(topo.segments.len(), segs);
        prop_assert_eq!(topo.bridges.len(), bridges);
        prop_assert!(topo.is_connected());
        prop_assert_eq!(topo.cyclic(), bridges >= segs);
        // Every bridge port references a real segment.
        for b in &topo.bridges {
            for &s in &b.segments {
                prop_assert!(s < segs);
            }
        }
    }

    /// Topology and workload generation are pure functions of their
    /// seeds — including the chaos battery's fault script and the lossy
    /// battery's burst schedule.
    #[test]
    fn generation_is_deterministic(
        idx in 0usize..7,
        size in 2usize..5,
        seed in 0u64..100_000,
        battery_idx in 0usize..8,
    ) {
        let shape = shape(idx, size);
        let a = topo::generate(shape, seed);
        let b = topo::generate(shape, seed);
        prop_assert_eq!(&a, &b);
        let battery = BatteryKind::ALL[battery_idx];
        let wa = workload::generate(battery, &a, seed);
        let wb = workload::generate(battery, &b, seed);
        prop_assert_eq!(wa.items, wb.items);
        prop_assert_eq!(wa.chaos, wb.chaos);
    }

    /// The Gilbert–Elliott burst model is a pure function of the RNG
    /// seed: the same seed replays the identical drop/corrupt/transition
    /// sequence for any odds, and the fraction of frames spent in the
    /// bad state tracks the configured steady state within tolerance.
    #[test]
    fn burst_model_replays_and_tracks_its_odds(
        enter in 4u64..24,
        exit in 2u64..12,
        seed in 0u64..100_000,
    ) {
        use netsim::fault::FaultOutcome;
        use netsim::{BurstConfig, FaultConfig, FrameBuf, Xoshiro};

        let cfg = FaultConfig {
            burst: Some(BurstConfig {
                enter_one_in: enter,
                exit_one_in: exit,
                bad_drop_one_in: 2,
                ..Default::default()
            }),
            ..Default::default()
        };
        let run = || {
            let mut rng = Xoshiro::seed_from_u64(seed);
            let mut bad = false;
            let mut record = Vec::with_capacity(4096);
            let mut bad_frames = 0u64;
            for _ in 0..4096 {
                let v = cfg.apply_stateful(FrameBuf::from_static(b"payload"), &mut rng, &mut bad);
                bad_frames += u64::from(bad);
                record.push((
                    matches!(v.outcome, FaultOutcome::Drop),
                    v.corrupted,
                    v.burst_dropped,
                    v.flipped,
                ));
            }
            (record, bad_frames)
        };
        let (a, bad_frames) = run();
        let b = run();
        prop_assert_eq!(&a, &b.0, "same seed must replay the same fault sequence");
        // π_bad = enter⁻¹ / (enter⁻¹ + exit⁻¹) = exit / (enter + exit);
        // allow a generous band around it — 4096 frames of a two-state
        // chain with dwell times this short concentrate well inside it.
        let expected_pm = 1000 * exit / (enter + exit);
        let observed_pm = 1000 * bad_frames / 4096;
        prop_assert!(
            observed_pm + 150 > expected_pm && observed_pm < expected_pm + 150,
            "bad-state occupancy {observed_pm}‰ strayed from the configured {expected_pm}‰"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same `(shape, seed)` ⇒ the instantiated world replays a
    /// byte-identical trace.
    #[test]
    fn same_seed_identical_world_trace(
        idx in 0usize..7,
        size in 2usize..4,
        seed in 0u64..100_000,
    ) {
        let shape = shape(idx, size);
        prop_assert_eq!(
            world_trace_bytes(shape, seed),
            world_trace_bytes(shape, seed)
        );
    }

    /// A full scenario run is deterministic down to the JSON bytes, and
    /// every invariant holds on every generated triple.
    #[test]
    fn scenario_reports_pass_and_replay(
        idx in 0usize..7,
        size in 2usize..4,
        battery_idx in 0usize..6,
        seed in 0u64..100_000,
    ) {
        let sc = Scenario::new(shape(idx, size), BatteryKind::ALL[battery_idx], seed);
        let a = runner::run(&sc);
        prop_assert!(a.passed(), "{}", a.to_json().render_pretty());
        let b = runner::run(&sc);
        prop_assert_eq!(a.to_json().render(), b.to_json().render());
    }
}
