//! Integration coverage for the chaos battery: recovery invariants hold
//! on both a learning-only line and a spanning-tree ring, recovery
//! telemetry lands in the report, and the whole chaos sweep — faults,
//! crashes, watchdog quarantine and all — replays byte-identically at
//! every worker count.
//!
//! Transparent-script preservation (a chaos-free workload perturbs
//! nothing) is proven separately: every pre-existing battery now carries
//! `ChaosScript::transparent()`, and the golden world digests and
//! byte-pinned reports in the other test files stayed green unchanged.

use ab_scenario::runner::{self, Scenario, Verdict};
use ab_scenario::sweep::{run_sweep_jobs, SweepSpec};
use ab_scenario::topo::{self, TopologyShape};
use ab_scenario::workload::{self, BatteryKind};
use proptest::prelude::*;

/// Find one judged invariant by name, panicking with the report when
/// it is absent.
fn invariant(report: &runner::Report, name: &str) -> Verdict {
    report
        .invariants
        .iter()
        .find(|i| i.name == name)
        .unwrap_or_else(|| panic!("missing invariant {name}:\n{:#?}", report.invariants))
        .verdict
}

/// Run one chaos scenario and check the full recovery contract: the
/// run passes, the three recovery invariants are judged `Pass` (not
/// merely waived), and the recovery telemetry is consistent with the
/// generated script.
fn check_chaos_scenario(shape: TopologyShape, seed: u64) {
    let sc = Scenario::new(shape, BatteryKind::Chaos, seed);
    let report = runner::run(&sc);
    assert!(report.passed(), "{}", report.to_json().render_pretty());

    for name in [
        "reconverges_after_heal",
        "no_permanent_blackhole",
        "quarantine_engages",
    ] {
        assert_eq!(
            invariant(&report, name),
            Verdict::Pass,
            "{name} must be judged (not waived) on a chaos run"
        );
    }

    let recovery = report
        .recovery
        .as_ref()
        .expect("a chaos run must carry recovery telemetry");
    let topo = topo::generate(shape, seed);
    let wl = workload::generate(BatteryKind::Chaos, &topo, seed);
    assert!(wl.injects_downtime());
    assert_eq!(wl.expected_quarantines, 1);
    assert_eq!(recovery.crashes, wl.chaos.crash_count());
    assert!(recovery.crashes >= 1, "the script crashes a bridge");
    assert!(
        recovery.down_drops > 0,
        "the partition must have eaten traffic"
    );
    assert!(
        recovery.time_to_first_delivery.is_some(),
        "traffic must flow again after the last heal"
    );
    assert_eq!(
        recovery.last_heal,
        report.epoch + wl.chaos.last_heal_at().unwrap()
    );

    // The quarantine count is exact, not merely non-zero: the verdict
    // detail records one engagement for the one scripted trap module.
    let detail = &report
        .invariants
        .iter()
        .find(|i| i.name == "quarantine_engages")
        .unwrap()
        .detail;
    assert!(
        detail.starts_with("1 watchdog quarantines"),
        "exactly one quarantine expected: {detail}"
    );
}

/// Chaos on a cycle-free line (learning bridges, dumb-flood fallback).
#[test]
fn chaos_line_recovers_and_quarantines() {
    check_chaos_scenario(TopologyShape::Line { bridges: 2 }, 42);
}

/// Chaos on a ring (STP boot: crash/restart forces re-election and the
/// reconvergence bound covers max-age plus both forward delays).
#[test]
fn chaos_ring_recovers_and_quarantines() {
    check_chaos_scenario(TopologyShape::Ring { bridges: 3 }, 43);
}

/// One chaos run is a pure function of its seed: two runs render
/// byte-identical JSON, crashes and quarantine included.
#[test]
fn chaos_scenario_replays_byte_identically() {
    let sc = Scenario::new(TopologyShape::Line { bridges: 2 }, BatteryKind::Chaos, 42);
    let a = runner::run(&sc).to_json().render();
    let b = runner::run(&sc).to_json().render();
    assert_eq!(a, b);
}

/// The committed chaos sweep (the CI robustness gate) is byte-identical
/// across worker counts and double runs, and every scenario passes.
#[test]
fn chaos_sweep_is_byte_identical_across_jobs() {
    let spec = SweepSpec::chaos_sweep(42);
    let reference = run_sweep_jobs(&spec, 1).to_json().render_pretty();
    for jobs in [1, 2, 4] {
        let sweep = run_sweep_jobs(&spec, jobs);
        assert!(sweep.passed(), "chaos sweep must pass at {jobs} jobs");
        assert_eq!(
            sweep.to_json().render_pretty(),
            reference,
            "chaos sweep JSON must not vary with jobs"
        );
    }
    assert!(
        reference.contains("\"recovery\""),
        "chaos reports must carry the recovery section"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated chaos scripts are internally consistent on arbitrary
    /// shapes and seeds: every fault heals, the script is scheduled
    /// inside the workload span, and generation replays exactly.
    #[test]
    fn chaos_scripts_heal_and_replay(
        bridges in 2usize..5,
        ring in any::<bool>(),
        seed in 0u64..100_000,
    ) {
        let shape = if ring {
            TopologyShape::Ring { bridges: bridges + 1 }
        } else {
            TopologyShape::Line { bridges }
        };
        let topo = topo::generate(shape, seed);
        let a = workload::generate(BatteryKind::Chaos, &topo, seed);
        let b = workload::generate(BatteryKind::Chaos, &topo, seed);
        prop_assert_eq!(&a.chaos, &b.chaos);
        prop_assert_eq!(a.items.clone(), b.items.clone());
        prop_assert!(!a.chaos.is_transparent());
        prop_assert!(a.chaos.last_heal_at().is_some(), "every fault must heal");
        prop_assert!(a.chaos.last_heal_at().unwrap() <= a.chaos.span());
        prop_assert!(a.chaos.span() <= a.span(), "the workload span covers the script");
        prop_assert!(a.chaos.crash_count() >= 1);
        prop_assert_eq!(a.expected_quarantines, 1);
    }

    /// A full chaos run replays byte-identically on small cycle-free
    /// shapes (rings use 55s reconvergence margins — too slow for a
    /// proptest — and are pinned by the fixed-seed tests above).
    #[test]
    fn chaos_runs_replay_on_lines(
        bridges in 2usize..4,
        seed in 0u64..1_000,
    ) {
        let sc = Scenario::new(TopologyShape::Line { bridges }, BatteryKind::Chaos, seed);
        let a = runner::run(&sc);
        prop_assert!(a.passed(), "{}", a.to_json().render_pretty());
        let b = runner::run(&sc);
        prop_assert_eq!(a.to_json().render(), b.to_json().render());
    }
}
