//! The scenario runner: execute one `(topology, workload, seed)` triple
//! and emit a structured, machine-readable report with invariant
//! verdicts.
//!
//! The runner owns the whole lifecycle: generate the topology and the
//! battery, materialize both into a [`World`], drive the world in fixed
//! slices (applying the fault script and sampling convergence on the
//! way), then measure a quiet tail window and judge the invariants:
//!
//! * **no storm** — once the workload is done, the wires fall silent
//!   apart from a bounded spanning-tree hello budget;
//! * **no loss after convergence** — every expected delivery arrived
//!   (waived for raw blasts while a drop fault is scripted);
//! * **no duplicate delivery** — no receiver saw more than was sent
//!   (waived while a duplicate fault is scripted);
//! * **single root** — on loopy topologies every bridge agrees who the
//!   spanning-tree root is.
//!
//! Reports render to JSON ([`Report::to_json`]) and are byte-identical
//! across runs with the same seed.

use active_bridge::{BridgeConfig, BridgeNode, BridgeStats, StormConfig};
use hostsim::{
    App, ArpStormApp, BlastApp, HostConfig, HostCostModel, HostNode, MacFloodApp, PingApp,
    RogueBpduApp, TtcpRecvApp, TtcpSendApp, UploadApp, UploadConfig,
};
use netsim::{NodeId, PortId, SimDuration, SimTime, World, WorldStats};
use netstack::tcplite::{ReceiverConfig, SenderConfig};
use netstack::FailureClass;

use crate::json::Json;
use crate::quality;
use crate::sketch::Sketch;
use crate::topo::{self, Topology, TopologyShape};
use crate::workload::{self, AppAction, BatteryKind, FaultAction, Phase, Workload};

/// The IEEE spanning-tree switchlet name (what [`Topology::default_boot`]
/// boots on loopy topologies).
const STP_NAME: &str = "stp_ieee";

/// Learning-table hard capacity in the defended arm of adversarial
/// scenarios — comfortably above any honest workload population there,
/// far below what a MAC flood tries to install.
pub const DEFENSE_LEARN_CAP: usize = 64;
/// Per-port occupancy quota in the defended arm: one hostile port can
/// claim at most this many entries before evicting its own.
pub const DEFENSE_PORT_QUOTA: usize = 16;
/// Storm-control budget applied to both the broadcast and the
/// unknown-unicast class in the defended arm. The trip threshold counts
/// *consecutive* over-budget drops, so a port suppresses only when the
/// offered rate stays a multiple of the refill rate — the 1 250–2 000
/// pps attacks trip within ~100 ms while honest ARP/discovery traffic
/// never strikes twice in a row.
pub const DEFENSE_STORM: StormConfig = StormConfig {
    rate_pps: 50,
    burst: 80,
    trip: 20,
    hold_down: SimDuration::from_ms(1_200),
};

/// Everything that defines one run. A scenario is a value: running it
/// twice produces byte-identical reports.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Report name (defaults to `<shape>-<battery>-s<seed>`).
    pub name: String,
    /// Topology shape to generate.
    pub shape: TopologyShape,
    /// Workload battery to generate.
    pub battery: BatteryKind,
    /// The seed for topology, workload and world RNG alike.
    pub seed: u64,
    /// Total simulated length; `None` sizes it from the workload span.
    pub duration: Option<SimDuration>,
    /// Arm the defense plane (bounded learning, storm control, BPDU
    /// guard) on every bridge. Only meaningful for workloads that field
    /// attacks; `false` everywhere else so every pre-existing scenario
    /// replays byte-for-byte.
    pub defended: bool,
}

impl Scenario {
    /// A scenario with the default auto-sized duration.
    pub fn new(shape: TopologyShape, battery: BatteryKind, seed: u64) -> Scenario {
        Scenario {
            name: format!("{}-{}-s{}", shape.label(), battery.label(), seed),
            shape,
            battery,
            seed,
            duration: None,
            defended: false,
        }
    }
}

/// The verdict on one invariant.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Held.
    Pass,
    /// Violated.
    Fail,
    /// Not evaluated because the scenario scripts faults that legitimately
    /// break it.
    Waived,
}

impl Verdict {
    /// Lower-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
            Verdict::Waived => "waived",
        }
    }
}

/// One judged invariant.
#[derive(Clone, Debug)]
pub struct InvariantResult {
    /// Invariant name.
    pub name: &'static str,
    /// The verdict.
    pub verdict: Verdict,
    /// Human-readable evidence.
    pub detail: String,
}

/// Experience metrics for one application flow: a deterministic sample
/// sketch plus a delivery ratio, with an explicit validity flag. A flow
/// that measured nothing (a ping with zero replies) is **invalid** and
/// renders `null` statistics — never a perfect-looking zero.
#[derive(Clone, Debug)]
pub struct AppMetrics {
    /// What the sketch samples are: `rtt` (ping round trips), `jitter`
    /// (ttcp inter-arrival gaps), `timeline` (upload progress gaps) or
    /// `delivery` (no sketch — counts only).
    pub kind: &'static str,
    /// Did the flow produce a usable measurement?
    pub valid: bool,
    /// Delivered fraction in per-mille (1000 = everything arrived).
    /// `None` when nothing was expected.
    pub delivery_pm: Option<u64>,
    /// The sample sketch (nanosecond samples), when the flow records one.
    pub sketch: Option<Sketch>,
}

impl AppMetrics {
    /// A counts-only metric (blasts, crowds): validity and delivery,
    /// no sketch.
    pub fn delivery(valid: bool, delivery_pm: Option<u64>) -> AppMetrics {
        AppMetrics {
            kind: "delivery",
            valid,
            delivery_pm,
            sketch: None,
        }
    }

    /// The flow's p90 sample in nanoseconds, when valid and sketched.
    pub fn p90_ns(&self) -> Option<u64> {
        if !self.valid {
            return None;
        }
        self.sketch.as_ref().and_then(|s| s.percentile(90))
    }

    /// Render as JSON: summary statistics derived from the buckets, the
    /// validity flag, and the sketch itself.
    pub fn to_json(&self) -> Json {
        let stat = |v: Option<u64>| v.map(Json::U64).unwrap_or(Json::Null);
        let s = self.sketch.as_ref().filter(|_| self.valid);
        let mut members = vec![
            ("kind", Json::str(self.kind)),
            ("valid", Json::Bool(self.valid)),
            ("avg_ns", stat(s.and_then(|s| s.avg()))),
            ("p50_ns", stat(s.and_then(|s| s.percentile(50)))),
            ("p90_ns", stat(s.and_then(|s| s.percentile(90)))),
            ("p99_ns", stat(s.and_then(|s| s.percentile(99)))),
            ("delivery_pm", stat(self.delivery_pm)),
        ];
        if let Some(sk) = &self.sketch {
            members.push(("sketch", sk.to_json()));
        }
        Json::obj(members)
    }
}

/// Per-application outcome, in workload order.
#[derive(Clone, Debug)]
pub struct AppReport {
    /// Action label (`ping`, `ttcp`, `blast`, `upload`).
    pub label: &'static str,
    /// Which measurement phase scheduled this flow.
    pub phase: Phase,
    /// Sender's segment index.
    pub from_seg: usize,
    /// Receiver's segment index (the bridge's first segment for uploads).
    pub to_seg: usize,
    /// Did it do what the battery expected?
    pub ok: bool,
    /// `(key, value)` detail counters, stable order.
    pub detail: Vec<(&'static str, u64)>,
    /// Experience metrics (sketch, percentiles, delivery, validity).
    pub metrics: AppMetrics,
}

/// Per-bridge outcome.
#[derive(Clone, Debug)]
pub struct BridgeReport {
    /// Node name.
    pub name: String,
    /// The spanning-tree root this bridge believes in, if it runs STP.
    pub root: Option<String>,
    /// Ports currently not forwarding.
    pub blocked_ports: u64,
    /// Forwarding-plane counters.
    pub counters: Vec<(&'static str, u64)>,
}

/// Recovery telemetry for runs whose workload scripts downtime
/// (chaos-free runs carry none, keeping their reports byte-identical).
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// When the script's last healing step fired.
    pub last_heal: SimTime,
    /// Frames dropped by downed segments across the run.
    pub down_drops: u64,
    /// Bridge crashes the script performed.
    pub crashes: u64,
    /// Delay from the last heal to the first slice boundary at which
    /// new frames had been delivered (sampled on the runner's slice
    /// grid; `None` if nothing was delivered after the heal).
    pub time_to_first_delivery: Option<SimDuration>,
}

/// Hostile-media telemetry for runs whose workload scripts bursty loss
/// (burst-free runs carry none, keeping their reports byte-identical).
#[derive(Clone, Debug)]
pub struct ResilienceReport {
    /// Retransmissions performed across all uploads.
    pub retries: u64,
    /// Fresh-WRQ session restarts after classified server failures.
    pub restarts: u64,
    /// Backoff doublings clamped at the configured RTO ceiling.
    pub rto_ceiling_hits: u64,
    /// Sealed images the integrity gate refused across all bridges.
    pub integrity_rejects: u64,
    /// Frames the burst model dropped while a segment was in its bad
    /// state.
    pub burst_drops: u64,
    /// The longest gap between consecutive upload forward-progress
    /// events — the worst stall the adaptive transport bridged (`None`
    /// if no upload ever progressed twice).
    pub max_stall: Option<SimDuration>,
}

/// Defense-plane telemetry for runs whose workload fields hostile hosts
/// (attack-free runs carry none, keeping their reports byte-identical).
#[derive(Clone, Debug)]
pub struct SecurityReport {
    /// Was the defense plane armed for this run?
    pub defended: bool,
    /// The largest learning-table occupancy any bridge showed on the
    /// runner's slice grid — the CAM-exhaustion evidence (bounded in the
    /// defended arm, four figures in the control arm).
    pub max_learn_occupancy: u64,
    /// Bounded-learning victims evicted across all bridges.
    pub learn_evictions: u64,
    /// Learn attempts refused at the table/port bound across all bridges.
    pub learn_rejects: u64,
    /// Storm-control port suppressions across all bridges.
    pub storm_suppressions: u64,
    /// Hold-down expiries that re-enabled a suppressed port.
    pub storm_releases: u64,
    /// Ports err-disabled by BPDU guard.
    pub bpdu_guard_trips: u64,
    /// Did any bridge ever publish a spanning-tree root that is not a
    /// real bridge of this topology (the rogue-root claim landing)?
    pub rogue_root_seen: bool,
}

/// The full structured result of one scenario run.
#[derive(Clone, Debug)]
pub struct Report {
    /// The scenario that produced this.
    pub scenario: Scenario,
    /// Was the topology loopy (and therefore STP-booted)?
    pub cyclic: bool,
    /// Segment count.
    pub n_segments: usize,
    /// Bridge count.
    pub n_bridges: usize,
    /// When the workload epoch was placed.
    pub epoch: SimTime,
    /// When the run ended (before the quiet window).
    pub end: SimTime,
    /// Last observed change to any bridge's port flags / root choice.
    pub converged_at: Option<SimTime>,
    /// World frame accounting at the end of the run.
    pub world: WorldStats,
    /// Frames serialized during the quiet tail window.
    pub quiet_tx: u64,
    /// The hello budget the quiet window was allowed.
    pub quiet_allowed: u64,
    /// Per-bridge outcomes.
    pub bridges: Vec<BridgeReport>,
    /// Per-application outcomes.
    pub apps: Vec<AppReport>,
    /// VM instructions retired across all bridges.
    pub vm_fuel: u64,
    /// Recovery telemetry (`Some` only when the workload scripts
    /// downtime).
    pub recovery: Option<RecoveryReport>,
    /// Hostile-media telemetry (`Some` only when the workload scripts
    /// bursty loss).
    pub resilience: Option<ResilienceReport>,
    /// Defense-plane telemetry (`Some` only when the workload fields
    /// hostile hosts).
    pub security: Option<SecurityReport>,
    /// The judged invariants.
    pub invariants: Vec<InvariantResult>,
}

impl Report {
    /// Did every invariant hold (waived ones excluded)?
    pub fn passed(&self) -> bool {
        self.invariants.iter().all(|i| i.verdict != Verdict::Fail)
    }

    /// Counts of `(passed, failed, waived)` invariants.
    pub fn verdict_counts(&self) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for i in &self.invariants {
            match i.verdict {
                Verdict::Pass => counts.0 += 1,
                Verdict::Fail => counts.1 += 1,
                Verdict::Waived => counts.2 += 1,
            }
        }
        counts
    }

    /// Render the report as a JSON document. Deterministic: objects are
    /// insertion-ordered and every number is an integer.
    pub fn to_json(&self) -> Json {
        let mut scenario_members = vec![
            ("name", Json::str(&self.scenario.name)),
            ("shape", Json::str(self.scenario.shape.label())),
            ("battery", Json::str(self.scenario.battery.label())),
            ("seed", Json::U64(self.scenario.seed)),
        ];
        // Present only on defended runs: every pre-existing report
        // renders the exact same bytes as before the defense plane.
        if self.scenario.defended {
            scenario_members.push(("defended", Json::Bool(true)));
        }
        scenario_members.extend(vec![
            ("cyclic", Json::Bool(self.cyclic)),
            ("segments", Json::U64(self.n_segments as u64)),
            ("bridges", Json::U64(self.n_bridges as u64)),
            ("epoch_ns", Json::U64(self.epoch.as_ns())),
            ("end_ns", Json::U64(self.end.as_ns())),
        ]);
        let scenario = Json::obj(scenario_members);
        let convergence = Json::obj(vec![
            (
                "converged_at_ns",
                match self.converged_at {
                    Some(t) => Json::U64(t.as_ns()),
                    None => Json::Null,
                },
            ),
            ("stp", Json::Bool(self.cyclic)),
        ]);
        let segments = Json::Arr(
            self.world
                .segments
                .iter()
                .map(|s| {
                    let c = &s.counters;
                    let mut members = vec![
                        ("name", Json::str(&s.name)),
                        ("tx_frames", Json::U64(c.tx_frames)),
                        ("tx_bytes", Json::U64(c.tx_bytes)),
                        ("deliveries", Json::U64(c.deliveries)),
                        ("contended", Json::U64(c.contended)),
                        ("peak_queue", Json::U64(c.peak_queue)),
                        ("queue_drops", Json::U64(c.queue_drops)),
                        ("fault_drops", Json::U64(c.fault_drops)),
                        ("corrupted", Json::U64(c.corrupted)),
                        ("fault_duplicates", Json::U64(c.fault_duplicates)),
                        ("down_drops", Json::U64(c.down_drops)),
                    ];
                    // Present only where the burst model actually fired:
                    // burst-free reports render the exact same bytes as
                    // before the Gilbert–Elliott model existed.
                    if c.burst_drops > 0 {
                        members.push(("burst_drops", Json::U64(c.burst_drops)));
                    }
                    Json::obj(members)
                })
                .collect(),
        );
        let world = Json::obj(vec![
            ("frames_sent", Json::U64(self.world.frames_sent)),
            ("frames_delivered", Json::U64(self.world.frames_delivered)),
            ("segments", segments),
        ]);
        let bridges = Json::Arr(
            self.bridges
                .iter()
                .map(|b| {
                    Json::obj(vec![
                        ("name", Json::str(&b.name)),
                        ("root", b.root.as_ref().map_or(Json::Null, Json::str)),
                        ("blocked_ports", Json::U64(b.blocked_ports)),
                        (
                            "counters",
                            Json::Obj(
                                b.counters
                                    .iter()
                                    .map(|&(k, v)| (k.to_owned(), Json::U64(v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let apps = Json::Arr(
            self.apps
                .iter()
                .map(|a| {
                    let mut members = vec![
                        ("label", Json::str(a.label)),
                        ("phase", Json::str(a.phase.label())),
                        ("from_seg", Json::U64(a.from_seg as u64)),
                        ("to_seg", Json::U64(a.to_seg as u64)),
                        ("ok", Json::Bool(a.ok)),
                    ];
                    for &(k, v) in &a.detail {
                        members.push((k, Json::U64(v)));
                    }
                    members.push(("metrics", a.metrics.to_json()));
                    Json::obj(members)
                })
                .collect(),
        );
        let invariants = Json::Arr(
            self.invariants
                .iter()
                .map(|i| {
                    Json::obj(vec![
                        ("name", Json::str(i.name)),
                        ("verdict", Json::str(i.verdict.label())),
                        ("detail", Json::str(&i.detail)),
                    ])
                })
                .collect(),
        );
        let (passed, failed, waived) = self.verdict_counts();
        let total = passed + failed;
        let summary = Json::obj(vec![
            // `pass` is computed from judged invariants only; waived
            // ones neither pass nor fail it.
            ("pass", Json::Bool(self.passed())),
            ("passed", Json::U64(passed)),
            ("failed", Json::U64(failed)),
            ("waived", Json::U64(waived)),
            (
                // A run whose invariants were *all* waived has no score:
                // rendering 100 here (the old `unwrap_or(100)`) made a
                // fully-waived run look perfect.
                "score_percent",
                match (passed * 100).checked_div(total) {
                    Some(pct) => Json::U64(pct),
                    None => Json::Null,
                },
            ),
        ]);
        let mut members = vec![
            ("scenario", scenario),
            ("convergence", convergence),
            ("world", world),
            ("bridges", bridges),
            ("apps", apps),
            (
                "quiet_window",
                Json::obj(vec![
                    ("tx_frames", Json::U64(self.quiet_tx)),
                    ("allowed", Json::U64(self.quiet_allowed)),
                ]),
            ),
            ("vm_fuel", Json::U64(self.vm_fuel)),
        ];
        // Present only on chaos runs: chaos-free reports render the
        // exact same bytes as before the recovery section existed.
        if let Some(r) = &self.recovery {
            members.push((
                "recovery",
                Json::obj(vec![
                    ("last_heal_ns", Json::U64(r.last_heal.as_ns())),
                    ("down_drops", Json::U64(r.down_drops)),
                    ("crashes", Json::U64(r.crashes)),
                    (
                        "time_to_first_delivery_ns",
                        match r.time_to_first_delivery {
                            Some(d) => Json::U64(d.as_ns()),
                            None => Json::Null,
                        },
                    ),
                ]),
            ));
        }
        // Present only on bursty-loss runs, mirroring `recovery`.
        if let Some(r) = &self.resilience {
            members.push((
                "resilience",
                Json::obj(vec![
                    ("retries", Json::U64(r.retries)),
                    ("restarts", Json::U64(r.restarts)),
                    ("rto_ceiling_hits", Json::U64(r.rto_ceiling_hits)),
                    ("integrity_rejects", Json::U64(r.integrity_rejects)),
                    ("burst_drops", Json::U64(r.burst_drops)),
                    (
                        "max_stall_ns",
                        match r.max_stall {
                            Some(d) => Json::U64(d.as_ns()),
                            None => Json::Null,
                        },
                    ),
                ]),
            ));
        }
        // Present only on adversarial runs, mirroring `resilience`.
        if let Some(s) = &self.security {
            members.push((
                "security",
                Json::obj(vec![
                    ("defended", Json::Bool(s.defended)),
                    ("max_learn_occupancy", Json::U64(s.max_learn_occupancy)),
                    ("learn_evictions", Json::U64(s.learn_evictions)),
                    ("learn_rejects", Json::U64(s.learn_rejects)),
                    ("storm_suppressions", Json::U64(s.storm_suppressions)),
                    ("storm_releases", Json::U64(s.storm_releases)),
                    ("bpdu_guard_trips", Json::U64(s.bpdu_guard_trips)),
                    ("rogue_root_seen", Json::Bool(s.rogue_root_seen)),
                ]),
            ));
        }
        members.push(("invariants", invariants));
        members.push(("quality", quality::score_report(self).to_json()));
        members.push(("summary", summary));
        Json::obj(members)
    }
}

/// One materialized workload item: where its hosts went.
struct Placed {
    action: AppAction,
    phase: Phase,
    sender: NodeId,
    receiver: Option<NodeId>,
    /// The crowd's hosts (empty for every other action).
    crowd: Vec<NodeId>,
}

/// How the runner slices the run (fault script application and
/// convergence sampling happen on this grid).
const SLICE: SimDuration = SimDuration::from_ms(100);
/// The quiet tail window measured for the storm invariant.
const QUIET_WINDOW: SimDuration = SimDuration::from_secs(4);

/// Execute `scenario` and produce its [`Report`].
pub fn run(scenario: &Scenario) -> Report {
    let mut world = World::new(scenario.seed);
    run_in(&mut world, scenario)
}

/// Execute `scenario` inside a caller-supplied [`World`], resetting it
/// first. Behaviorally identical to [`run`] — `World::reset` rewinds
/// every observable — but a worker that runs many scenarios through one
/// world amortizes the event-queue, frame-pool and table allocations
/// across the whole batch (this is what the parallel sweep's workers
/// do).
pub fn run_in(world: &mut World, scenario: &Scenario) -> Report {
    world.reset(scenario.seed);
    world.trace_mut().set_enabled(false);
    run_prepared(world, scenario)
}

/// Execute `scenario` with the world trace left **on** and return the
/// report plus an FNV-1a digest of the full observable record (trace
/// entries, experiment counters, frame totals). Two runs of the same
/// scenario — on any thread, in any pool — must agree on both values;
/// the determinism suite compares digests across worker counts.
pub fn run_traced(scenario: &Scenario) -> (Report, u64) {
    let mut world = World::new(scenario.seed);
    let report = run_prepared(&mut world, scenario);
    let digest = trace_digest(&world);
    (report, digest)
}

/// Execute `scenario` with the flight recorder armed and return the
/// report, the trace digest, and the finished [`World`] (for timeline
/// export — the probe ring, hot-function profiles and segment state are
/// still in it).
///
/// The recorder is records-only: it never schedules, never draws from
/// the RNG, and the returned digest is bit-identical to an unarmed
/// [`run_traced`] of the same scenario (`tests/flight_recorder.rs`
/// pins this).
pub fn run_recorded(scenario: &Scenario, probe: netsim::ProbeConfig) -> (Report, u64, World) {
    let mut world = World::new(scenario.seed);
    world.probe_mut().arm(probe);
    let report = run_prepared(&mut world, scenario);
    let digest = trace_digest(&world);
    (report, digest, world)
}

/// FNV-1a over a world's observable record: every retained trace entry,
/// every experiment counter, and the run-wide frame totals.
pub fn trace_digest(world: &World) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for e in world.trace().entries() {
        eat(format!("{:?}\t{:?}\t{}\n", e.at, e.node, e.msg).as_bytes());
    }
    for (key, value) in world.counters().iter() {
        eat(format!("{key}\t{value}\n").as_bytes());
    }
    eat(format!("{}\t{}\n", world.frames_sent(), world.frames_delivered()).as_bytes());
    h
}

/// The shared body of [`run`]/[`run_in`]/[`run_traced`]: build the
/// topology and workload into the (fresh or freshly-reset) world, drive
/// the run, judge the invariants.
fn run_prepared(world: &mut World, scenario: &Scenario) -> Report {
    let topo = topo::generate(scenario.shape, scenario.seed);
    assert!(topo.is_connected(), "generated topologies are connected");
    let wl = workload::generate(scenario.battery, &topo, scenario.seed);

    // Topology-derived pre-sizing: the world's node/segment tables and
    // every bridge's learning table are sized for the full population up
    // front, so per-frame work at metro scale never grows a table.
    let n_hosts = wl.host_count() as usize;
    world.reserve_topology(topo.bridges.len() + n_hosts, topo.segments.len());
    let hostile = wl.injects_attacks();
    let mut cfg = BridgeConfig {
        expected_stations: n_hosts + topo.bridges.len(),
        ..BridgeConfig::default()
    };
    if scenario.defended {
        cfg.learn_cap = DEFENSE_LEARN_CAP;
        cfg.learn_port_quota = DEFENSE_PORT_QUOTA;
        cfg.storm_broadcast = Some(DEFENSE_STORM);
        cfg.storm_unknown = Some(DEFENSE_STORM);
    }
    // Adversarial batteries always boot the spanning tree (BPDU guard and
    // rogue-root detection need it), even on acyclic shapes.
    let boot: &[&str] = if hostile {
        &["bridge_learning", STP_NAME]
    } else {
        topo.default_boot()
    };
    let built = topo::instantiate(world, &topo, &cfg, boot);

    // A defended bridge err-disables host-facing edge ports (segments
    // that touch exactly one bridge) on any received BPDU: no end system
    // has a legitimate reason to speak spanning tree.
    if scenario.defended {
        for (bi, spec) in topo.bridges.iter().enumerate() {
            let guard: Vec<usize> = spec
                .segments
                .iter()
                .enumerate()
                .filter(|(_, seg)| {
                    topo.bridges
                        .iter()
                        .filter(|b| b.segments.contains(seg))
                        .count()
                        == 1
                })
                .map(|(port, _)| port)
                .collect();
            if !guard.is_empty() {
                world
                    .node_mut::<BridgeNode>(built.bridges[bi])
                    .set_bpdu_guard(guard);
            }
        }
    }

    // Armed flight recorder ⇒ also collect per-function VM hot counters
    // on every bridge (the trace subcommand's hot-function table).
    // Profiling is passive: results, fuel accounting and `ExecStats`
    // are untouched.
    if world.probe().is_armed() {
        for &b in &built.bridges {
            world.node_mut::<BridgeNode>(b).enable_vm_profile();
        }
    }

    // Loopy topologies need the spanning tree fully forwarding (two
    // forward-delay intervals plus margin) before traffic starts; hostile
    // batteries boot STP everywhere, so they wait for it everywhere.
    let epoch = if topo.cyclic() || hostile {
        SimTime::from_secs(40)
    } else {
        SimTime::from_ms(200)
    };
    let epoch_d = SimDuration::from_ns(epoch.as_ns());

    let placed = materialize(world, &built, &topo, &wl, epoch_d);

    // Chaos steps go onto the world event queue up-front (not the slice
    // grid): their order relative to traffic is fixed by `(time, seq)`
    // alone, so a chaotic run replays byte-for-byte at any worker
    // count. A transparent script schedules nothing.
    wl.chaos.schedule(world, epoch, &built.segs, &built.bridges);
    let heal_at = wl.chaos.last_heal_at().map(|d| epoch + d);

    let end = SimTime::ZERO
        + scenario
            .duration
            .unwrap_or(epoch_d + wl.span() + SimDuration::from_secs(2));

    // Drive in slices: apply due fault-script steps, watch convergence.
    let mut faults: Vec<(SimTime, &FaultAction)> =
        wl.faults.iter().map(|(at, f)| (epoch + *at, f)).collect();
    faults.sort_by_key(|(at, _)| *at);
    let mut next_fault = 0;
    let mut signature = convergence_signature(world, &built);
    let mut converged_at: Option<SimTime> = None;
    let mut delivered_at_heal: Option<u64> = None;
    let mut first_delivery_after_heal: Option<SimTime> = None;
    // Security telemetry, sampled on the slice grid during hostile runs:
    // the high-water mark of any learning table, and whether any bridge
    // ever published a spanning-tree root that is not a real bridge.
    let real_macs: Vec<ether::MacAddr> = topo
        .bridges
        .iter()
        .map(|b| active_bridge::scenario_impl::bridge_mac(b.index))
        .collect();
    let mut sec_max_occ = 0u64;
    let mut rogue_root_seen = false;
    let mut now = SimTime::ZERO;
    while now < end {
        now = (now + SLICE).min(end);
        while next_fault < faults.len() && faults[next_fault].0 <= now {
            let (_, action) = faults[next_fault];
            match action {
                FaultAction::Set { seg, fault } => {
                    world.set_segment_fault(built.segs[*seg], fault.clone())
                }
                FaultAction::Clear { seg } => {
                    world.set_segment_fault(built.segs[*seg], netsim::FaultConfig::default())
                }
            }
            next_fault += 1;
        }
        world.run_until(now);
        if hostile {
            for &b in &built.bridges {
                let plane = world.node::<BridgeNode>(b).plane();
                sec_max_occ = sec_max_occ.max(plane.learn.len() as u64);
                if let Some(snap) = plane.published.get(STP_NAME) {
                    rogue_root_seen |= !real_macs.contains(&snap.root_mac);
                }
            }
        }
        let sig = convergence_signature(world, &built);
        if sig != signature {
            signature = sig;
            converged_at = Some(now);
        }
        // Time-to-first-delivery after the script's last heal, sampled
        // on the slice grid: the baseline is the delivery count at the
        // first boundary past the heal, and recovery is the first later
        // boundary where it has grown.
        if let Some(heal) = heal_at {
            if now >= heal && first_delivery_after_heal.is_none() {
                match delivered_at_heal {
                    None => delivered_at_heal = Some(world.frames_delivered()),
                    Some(base) if world.frames_delivered() > base => {
                        first_delivery_after_heal = Some(now);
                    }
                    Some(_) => {}
                }
            }
        }
    }

    // Quiet tail: nothing should be talking except spanning-tree hellos.
    let before = world.stats();
    world.run_until(end + QUIET_WINDOW);
    let after = world.stats();
    let quiet_tx = after.total_tx_frames() - before.total_tx_frames();
    let total_ports: u64 = topo.bridges.iter().map(|b| b.segments.len() as u64).sum();
    let quiet_allowed = if topo.cyclic() || hostile {
        // Per designated port: one hello every 2 s, so ≤ 3 in 4 s, plus
        // slack for ages/boundary effects.
        3 * total_ports + 8
    } else {
        8
    };

    let (apps, upload_count) = judge_apps(world, &placed, &topo);
    let bridges = bridge_reports(world, &built, hostile);
    let vm_fuel = built
        .bridges
        .iter()
        .map(|&b| world.node::<BridgeNode>(b).plane().stats.vm_instructions)
        .sum();
    let recovery = heal_at.map(|heal| RecoveryReport {
        last_heal: heal,
        down_drops: after.segments.iter().map(|s| s.counters.down_drops).sum(),
        crashes: wl.chaos.crash_count(),
        time_to_first_delivery: first_delivery_after_heal.map(|t| t.saturating_since(heal)),
    });
    let resilience = wl
        .injects_bursts()
        .then(|| resilience_report(world, &placed, &after, &bridges));
    let security = hostile.then(|| {
        let mut s = SecurityReport {
            defended: scenario.defended,
            max_learn_occupancy: sec_max_occ,
            learn_evictions: 0,
            learn_rejects: 0,
            storm_suppressions: 0,
            storm_releases: world.counters().get("bridge.storm_releases"),
            bpdu_guard_trips: 0,
            rogue_root_seen,
        };
        for &b in &built.bridges {
            let stats = &world.node::<BridgeNode>(b).plane().stats;
            s.learn_evictions += stats.learn_evictions;
            s.learn_rejects += stats.learn_rejects;
            s.storm_suppressions += stats.storm_suppressions;
            s.bpdu_guard_trips += stats.bpdu_guard_trips;
        }
        s
    });
    let invariants = judge_invariants(
        world,
        &topo,
        &wl,
        &apps,
        upload_count,
        converged_at,
        epoch,
        quiet_tx,
        quiet_allowed,
        &bridges,
        scenario.defended,
        security.as_ref(),
    );

    Report {
        scenario: scenario.clone(),
        cyclic: topo.cyclic(),
        n_segments: topo.segments.len(),
        n_bridges: topo.bridges.len(),
        epoch,
        end,
        converged_at,
        world: after,
        quiet_tx,
        quiet_allowed,
        bridges,
        apps,
        vm_fuel,
        recovery,
        resilience,
        security,
        invariants,
    }
}

/// Aggregate the hostile-media telemetry: every upload's transport
/// counters, the bridges' integrity-gate rejects, and the burst model's
/// drop total.
fn resilience_report(
    world: &World,
    placed: &[Placed],
    after: &WorldStats,
    bridges: &[BridgeReport],
) -> ResilienceReport {
    let mut retries = 0u64;
    let mut restarts = 0u64;
    let mut rto_ceiling_hits = 0u64;
    let mut max_stall_ns = 0u64;
    for p in placed {
        let is_upload = matches!(
            p.action,
            AppAction::Upload { .. }
                | AppAction::UploadTrap { .. }
                | AppAction::UploadSealed { .. }
                | AppAction::UploadCorrupt { .. }
        );
        if !is_upload {
            continue;
        }
        if let App::Upload(a) = world.node::<HostNode>(p.sender).app(0).unwrapped() {
            retries += a.retries as u64;
            restarts += a.restarts as u64;
            rto_ceiling_hits += a.rto_ceiling_hits as u64;
            max_stall_ns = max_stall_ns.max(a.progress_gap_ns.iter().copied().max().unwrap_or(0));
        }
    }
    ResilienceReport {
        retries,
        restarts,
        rto_ceiling_hits,
        integrity_rejects: bridges
            .iter()
            .flat_map(|b| &b.counters)
            .filter(|&&(k, _)| k == "images_rejected")
            .map(|&(_, v)| v)
            .sum(),
        burst_drops: after.segments.iter().map(|s| s.counters.burst_drops).sum(),
        max_stall: (max_stall_ns > 0).then(|| SimDuration::from_ns(max_stall_ns)),
    }
}

/// Add the workload's hosts to the world, apps wrapped in start delays so
/// the whole schedule is declared before the world runs.
fn materialize(
    world: &mut World,
    built: &topo::BuiltTopology,
    topo: &Topology,
    wl: &Workload,
    epoch: SimDuration,
) -> Vec<Placed> {
    use active_bridge::scenario_impl::{bridge_ip, host_ip, host_mac};
    let mut next_host: u32 = 1;
    let mut host = |world: &mut World, seg: usize, apps: Vec<App>| -> (NodeId, u32) {
        let n = next_host;
        next_host += 1;
        let id = world.add_node(HostNode::new(
            format!("host{n}"),
            // Workload endpoints resolve at most a handful of peers.
            HostConfig::simple(host_mac(n), host_ip(n), HostCostModel::FREE).with_arp_hint(4),
            apps,
        ));
        world.attach(id, built.segs[seg]);
        (id, n)
    };
    wl.items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let start = epoch + item.offset;
            let mut crowd = Vec::new();
            let (sender, receiver) = match &item.action {
                AppAction::Ping {
                    from_seg,
                    to_seg,
                    count,
                    payload,
                    interval,
                } => {
                    let (rx, rx_n) = host(world, *to_seg, vec![]);
                    let (tx, _) = host(
                        world,
                        *from_seg,
                        vec![App::delayed(
                            start,
                            PingApp::new(
                                PortId(0),
                                host_ip(rx_n),
                                *count,
                                *payload,
                                *interval,
                                0x5000 + i as u16,
                            ),
                        )],
                    );
                    (tx, Some(rx))
                }
                AppAction::Ttcp {
                    from_seg,
                    to_seg,
                    total_bytes,
                    write_size,
                } => {
                    let port = 5001 + i as u16;
                    let (rx, rx_n) = host(
                        world,
                        *to_seg,
                        vec![TtcpRecvApp::new(port, ReceiverConfig::default())],
                    );
                    let (tx, _) = host(
                        world,
                        *from_seg,
                        vec![App::delayed(
                            start,
                            TtcpSendApp::new(
                                PortId(0),
                                host_ip(rx_n),
                                port,
                                port,
                                *total_bytes,
                                *write_size,
                                SenderConfig::default(),
                            ),
                        )],
                    );
                    (tx, Some(rx))
                }
                AppAction::Blast {
                    from_seg,
                    to_seg,
                    size,
                    count,
                    interval,
                } => {
                    let (rx, rx_n) = host(world, *to_seg, vec![]);
                    let (tx, _) = host(
                        world,
                        *from_seg,
                        vec![App::delayed(
                            start,
                            BlastApp::new(PortId(0), host_mac(rx_n), *size, *count, *interval),
                        )],
                    );
                    (tx, Some(rx))
                }
                AppAction::Upload { from_seg, bridge } => {
                    let image = workload::inert_upload_image(i as u32);
                    let dst = bridge_ip(topo.bridges[*bridge].index);
                    let (tx, _) = host(
                        world,
                        *from_seg,
                        vec![App::delayed(
                            start,
                            UploadApp::new(
                                PortId(0),
                                dst,
                                3000 + i as u16,
                                format!("scn_upload{i}.img"),
                                image,
                            ),
                        )],
                    );
                    (tx, None)
                }
                AppAction::UploadTrap { from_seg, bridge } => {
                    let image = active_bridge::switchlets::trap_vm::build_image();
                    let dst = bridge_ip(topo.bridges[*bridge].index);
                    let (tx, _) = host(
                        world,
                        *from_seg,
                        vec![App::delayed(
                            start,
                            UploadApp::new(
                                PortId(0),
                                dst,
                                3000 + i as u16,
                                format!("vm_trap{i}.img"),
                                image,
                            ),
                        )],
                    );
                    (tx, None)
                }
                AppAction::UploadSealed {
                    from_seg,
                    bridge,
                    pad,
                } => {
                    let image = workload::sealed_upload_image(i as u32, *pad);
                    let dst = bridge_ip(topo.bridges[*bridge].index);
                    let (tx, _) = host(
                        world,
                        *from_seg,
                        vec![App::delayed(
                            start,
                            UploadApp::with_config(
                                PortId(0),
                                dst,
                                3000 + i as u16,
                                format!("scn_upload{i}.swl"),
                                image,
                                UploadConfig::resilient(),
                            ),
                        )],
                    );
                    (tx, None)
                }
                AppAction::UploadCorrupt { from_seg, bridge } => {
                    let image = workload::corrupt_upload_image(i as u32);
                    let dst = bridge_ip(topo.bridges[*bridge].index);
                    let (tx, _) = host(
                        world,
                        *from_seg,
                        vec![App::delayed(
                            start,
                            UploadApp::with_config(
                                PortId(0),
                                dst,
                                3000 + i as u16,
                                format!("scn_corrupt{i}.swl"),
                                image,
                                // The poisoned image can never succeed:
                                // keep its budget small so it parks as a
                                // classified IntegrityReject well before
                                // the evaluation window.
                                UploadConfig {
                                    max_retries: 6,
                                    ..UploadConfig::resilient()
                                },
                            ),
                        )],
                    );
                    (tx, None)
                }
                AppAction::Crowd { seg, hosts } => {
                    assert!(*hosts > 0, "a crowd needs at least one host");
                    crowd = (0..*hosts).map(|_| host(world, *seg, vec![]).0).collect();
                    (crowd[0], None)
                }
                AppAction::MacFlood {
                    from_seg,
                    count,
                    interval,
                    seed,
                } => {
                    let (tx, _) = host(
                        world,
                        *from_seg,
                        vec![App::delayed(
                            start,
                            MacFloodApp::new(PortId(0), *count, *interval, *seed),
                        )],
                    );
                    (tx, None)
                }
                AppAction::ArpStorm {
                    from_seg,
                    count,
                    interval,
                    seed,
                } => {
                    let (tx, _) = host(
                        world,
                        *from_seg,
                        vec![App::delayed(
                            start,
                            ArpStormApp::new(PortId(0), *count, *interval, *seed),
                        )],
                    );
                    (tx, None)
                }
                AppAction::RogueBpdu {
                    from_seg,
                    count,
                    interval,
                } => {
                    let (tx, _) = host(
                        world,
                        *from_seg,
                        vec![App::delayed(
                            start,
                            RogueBpduApp::new(PortId(0), *count, *interval),
                        )],
                    );
                    (tx, None)
                }
            };
            Placed {
                action: item.action.clone(),
                phase: item.phase,
                sender,
                receiver,
                crowd,
            }
        })
        .collect()
}

/// Port flags plus elected root per bridge: when this stops changing, the
/// control plane has converged.
fn convergence_signature(
    world: &World,
    built: &topo::BuiltTopology,
) -> Vec<(Vec<bool>, Option<ether::MacAddr>)> {
    built
        .bridges
        .iter()
        .map(|&b| {
            let plane = world.node::<BridgeNode>(b).plane();
            (
                plane.flags().iter().map(|f| f.forward).collect(),
                plane.published.get(STP_NAME).map(|s| s.root_mac),
            )
        })
        .collect()
}

/// Inspect every placed app and compute its outcome. Returns the reports
/// plus how many uploads the battery scheduled.
fn judge_apps(world: &World, placed: &[Placed], topo: &Topology) -> (Vec<AppReport>, u64) {
    let mut uploads = 0;
    let reports = placed
        .iter()
        .map(|p| {
            // Crowds run no application; judge them on reception alone.
            if let AppAction::Crowd { seg, hosts } = &p.action {
                let mut heard = 0u64;
                let mut frames_rx = 0u64;
                for &h in &p.crowd {
                    let rx = world.node::<HostNode>(h).core.frames_rx;
                    heard += u64::from(rx > 0);
                    frames_rx += rx;
                }
                return AppReport {
                    label: "crowd",
                    phase: p.phase,
                    from_seg: *seg,
                    to_seg: *seg,
                    ok: heard == *hosts as u64,
                    detail: vec![
                        ("hosts", *hosts as u64),
                        ("heard", heard),
                        ("frames_rx", frames_rx),
                    ],
                    metrics: AppMetrics::delivery(
                        *hosts > 0,
                        (*hosts > 0).then(|| heard * 1000 / *hosts as u64),
                    ),
                };
            }
            let app = world.node::<HostNode>(p.sender).app(0).unwrapped();
            match (&p.action, app) {
                (
                    AppAction::Ping {
                        from_seg,
                        to_seg,
                        count,
                        ..
                    },
                    App::Ping(a),
                ) => AppReport {
                    label: "ping",
                    phase: p.phase,
                    from_seg: *from_seg,
                    to_seg: *to_seg,
                    ok: a.received == *count,
                    detail: vec![("sent", a.sent as u64), ("received", a.received as u64)],
                    // A ping that got no replies has no RTT measurement:
                    // the sketch is empty and `valid` is false, so every
                    // derived statistic renders null (the old report
                    // emitted `avg_rtt_ns: 0` here — indistinguishable
                    // from a perfect round trip).
                    metrics: AppMetrics {
                        kind: "rtt",
                        valid: a.received > 0,
                        delivery_pm: (a.sent > 0).then(|| a.received as u64 * 1000 / a.sent as u64),
                        sketch: Some(Sketch::from_samples(a.rtts.iter().map(|d| d.as_ns()))),
                    },
                },
                (
                    AppAction::Ttcp {
                        from_seg,
                        to_seg,
                        total_bytes,
                        ..
                    },
                    App::TtcpSend(a),
                ) => {
                    let (received, jitter) = p
                        .receiver
                        .map(|r| match world.node::<HostNode>(r).app(0).unwrapped() {
                            App::TtcpRecv(rx) => (
                                rx.bytes_received(),
                                Sketch::from_samples(rx.inter_arrival_ns.iter().copied()),
                            ),
                            _ => (0, Sketch::new()),
                        })
                        .unwrap_or_else(|| (0, Sketch::new()));
                    let elapsed = match (a.started_at, a.done_at) {
                        (Some(s), Some(e)) => e.saturating_since(s),
                        _ => SimDuration::ZERO,
                    };
                    let throughput_bps = if elapsed.is_zero() {
                        0
                    } else {
                        total_bytes * 8 * 1_000_000_000 / elapsed.as_ns()
                    };
                    AppReport {
                        label: "ttcp",
                        phase: p.phase,
                        from_seg: *from_seg,
                        to_seg: *to_seg,
                        ok: a.is_done() && received == *total_bytes,
                        detail: vec![
                            ("bytes", received),
                            ("frames", a.frames_sent),
                            ("elapsed_ns", elapsed.as_ns()),
                            ("throughput_bps", throughput_bps),
                        ],
                        metrics: AppMetrics {
                            kind: "jitter",
                            valid: jitter.count() > 0,
                            delivery_pm: (*total_bytes > 0)
                                .then(|| received.min(*total_bytes) * 1000 / total_bytes),
                            sketch: Some(jitter),
                        },
                    }
                }
                (
                    AppAction::Blast {
                        from_seg,
                        to_seg,
                        count,
                        ..
                    },
                    App::Blast(a),
                ) => {
                    let received = p
                        .receiver
                        .map(|r| world.node::<HostNode>(r).core.exp_frames_rx)
                        .unwrap_or(0);
                    AppReport {
                        label: "blast",
                        phase: p.phase,
                        from_seg: *from_seg,
                        to_seg: *to_seg,
                        ok: a.sent == *count && received == *count,
                        detail: vec![("sent", a.sent), ("received", received)],
                        metrics: AppMetrics::delivery(
                            *count > 0,
                            (*count > 0).then(|| received.min(*count) * 1000 / count),
                        ),
                    }
                }
                (AppAction::Upload { from_seg, bridge }, App::Upload(a)) => {
                    uploads += 1;
                    let done = a.is_done() && a.failed.is_none();
                    AppReport {
                        label: "upload",
                        phase: p.phase,
                        from_seg: *from_seg,
                        // Like every other label, to_seg is a segment
                        // index; the target bridge goes in the detail.
                        to_seg: topo.bridges[*bridge].segments[0],
                        ok: done,
                        detail: vec![
                            ("bridge", *bridge as u64),
                            ("done", u64::from(a.is_done())),
                            ("retries", a.retries as u64),
                        ],
                        metrics: AppMetrics {
                            kind: "timeline",
                            valid: done,
                            delivery_pm: Some(if done { 1000 } else { 0 }),
                            sketch: Some(Sketch::from_samples(a.progress_gap_ns.iter().copied())),
                        },
                    }
                }
                (AppAction::UploadTrap { from_seg, bridge }, App::Upload(a)) => {
                    // The transfer itself must succeed — proving the
                    // loader path survived the chaos — but the module
                    // is *designed* to be quarantined afterwards, so it
                    // does not count toward `uploads_alive`.
                    let done = a.is_done() && a.failed.is_none();
                    AppReport {
                        label: "upload_trap",
                        phase: p.phase,
                        from_seg: *from_seg,
                        to_seg: topo.bridges[*bridge].segments[0],
                        ok: done,
                        detail: vec![
                            ("bridge", *bridge as u64),
                            ("done", u64::from(a.is_done())),
                            ("retries", a.retries as u64),
                        ],
                        metrics: AppMetrics {
                            kind: "timeline",
                            valid: done,
                            delivery_pm: Some(if done { 1000 } else { 0 }),
                            sketch: Some(Sketch::from_samples(a.progress_gap_ns.iter().copied())),
                        },
                    }
                }
                (
                    AppAction::UploadSealed {
                        from_seg, bridge, ..
                    },
                    App::Upload(a),
                ) => {
                    // A sealed upload must survive the hostile medium:
                    // it counts toward `uploads_alive` exactly like a
                    // plain one, and its transport counters feed the
                    // resilience invariants.
                    uploads += 1;
                    let done = a.is_done() && a.failed.is_none();
                    AppReport {
                        label: "upload_sealed",
                        phase: p.phase,
                        from_seg: *from_seg,
                        to_seg: topo.bridges[*bridge].segments[0],
                        ok: done,
                        detail: vec![
                            ("bridge", *bridge as u64),
                            ("done", u64::from(a.is_done())),
                            ("parked", u64::from(a.failed.is_some())),
                            ("retries", a.retries as u64),
                            ("restarts", a.restarts as u64),
                            ("rto_ceiling_hits", a.rto_ceiling_hits as u64),
                            ("budget_used", a.budget_used() as u64),
                            ("budget", a.cfg.max_retries as u64),
                        ],
                        metrics: AppMetrics {
                            kind: "timeline",
                            valid: done,
                            delivery_pm: Some(if done { 1000 } else { 0 }),
                            sketch: Some(Sketch::from_samples(a.progress_gap_ns.iter().copied())),
                        },
                    }
                }
                (AppAction::UploadCorrupt { from_seg, bridge }, App::Upload(a)) => {
                    // The poisoned image must *never* complete: success
                    // here is the gate refusing every re-send and the
                    // sender parking with a classified integrity reject
                    // — so it does not count toward `uploads_alive`.
                    let classified = a.failure == Some(FailureClass::IntegrityReject);
                    let ok = !a.is_done() && classified;
                    AppReport {
                        label: "upload_corrupt",
                        phase: p.phase,
                        from_seg: *from_seg,
                        to_seg: topo.bridges[*bridge].segments[0],
                        ok,
                        detail: vec![
                            ("bridge", *bridge as u64),
                            ("done", u64::from(a.is_done())),
                            ("parked", u64::from(a.failed.is_some())),
                            ("classified_integrity", u64::from(classified)),
                            ("retries", a.retries as u64),
                            ("restarts", a.restarts as u64),
                        ],
                        metrics: AppMetrics::delivery(true, Some(if ok { 1000 } else { 0 })),
                    }
                }
                // Attack apps carry no receiver: they are judged only on
                // having fired their full schedule (whether the network
                // absorbed or suppressed them is the invariants' job).
                // Only a `sent` detail key, deliberately no `received`,
                // so `no_duplicate_delivery` skips them.
                (
                    AppAction::MacFlood {
                        from_seg, count, ..
                    },
                    App::MacFlood(a),
                ) => AppReport {
                    label: "mac_flood",
                    phase: p.phase,
                    from_seg: *from_seg,
                    to_seg: *from_seg,
                    ok: a.sent == *count,
                    detail: vec![("sent", a.sent)],
                    metrics: AppMetrics::delivery(
                        *count > 0,
                        (*count > 0).then(|| a.sent.min(*count) * 1000 / count),
                    ),
                },
                (
                    AppAction::ArpStorm {
                        from_seg, count, ..
                    },
                    App::ArpStorm(a),
                ) => AppReport {
                    label: "arp_storm",
                    phase: p.phase,
                    from_seg: *from_seg,
                    to_seg: *from_seg,
                    ok: a.sent == *count,
                    detail: vec![("sent", a.sent)],
                    metrics: AppMetrics::delivery(
                        *count > 0,
                        (*count > 0).then(|| a.sent.min(*count) * 1000 / count),
                    ),
                },
                (
                    AppAction::RogueBpdu {
                        from_seg, count, ..
                    },
                    App::RogueBpdu(a),
                ) => AppReport {
                    label: "rogue_bpdu",
                    phase: p.phase,
                    from_seg: *from_seg,
                    to_seg: *from_seg,
                    ok: a.sent == *count,
                    detail: vec![("sent", a.sent)],
                    metrics: AppMetrics::delivery(
                        *count > 0,
                        (*count > 0).then(|| a.sent.min(*count) * 1000 / count),
                    ),
                },
                (action, _) => unreachable!(
                    "placed app for {} does not match its action",
                    action.label()
                ),
            }
        })
        .collect();
    (reports, uploads)
}

/// Per-bridge counters. The security keys only render on hostile runs so
/// every pre-existing report stays byte-identical.
fn bridge_reports(
    world: &World,
    built: &topo::BuiltTopology,
    include_security: bool,
) -> Vec<BridgeReport> {
    built
        .bridges
        .iter()
        .map(|&b| {
            let node = world.node::<BridgeNode>(b);
            let plane = node.plane();
            let mut counters = plane.stats.as_pairs().to_vec();
            if !include_security {
                counters.retain(|(k, _)| !BridgeStats::SECURITY_KEYS.contains(k));
            }
            BridgeReport {
                name: world.node_name(b).to_owned(),
                root: plane
                    .published
                    .get(STP_NAME)
                    .map(|s| s.root_mac.to_string()),
                blocked_ports: plane.flags().iter().filter(|f| !f.forward).count() as u64,
                counters,
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn judge_invariants(
    world: &World,
    topo: &Topology,
    wl: &Workload,
    apps: &[AppReport],
    uploads: u64,
    converged_at: Option<SimTime>,
    epoch: SimTime,
    quiet_tx: u64,
    quiet_allowed: u64,
    bridges: &[BridgeReport],
    defended: bool,
    security: Option<&SecurityReport>,
) -> Vec<InvariantResult> {
    let hostile = wl.injects_attacks();
    // The control arm runs the attacks with every defense off: it exists
    // to prove the attacks bite, so the usual health invariants are
    // waived there and `attack_degrades_undefended` judges it instead.
    let control_arm = hostile && !defended;
    let mut out = Vec::new();

    out.push(InvariantResult {
        name: "connected",
        verdict: if topo.is_connected() {
            Verdict::Pass
        } else {
            Verdict::Fail
        },
        detail: format!(
            "{} segments reachable through {} bridges",
            topo.segments.len(),
            topo.bridges.len()
        ),
    });

    // Convergence: the control plane must settle before the workload
    // epoch and stay settled to the end. Scripted downtime legitimately
    // moves port states mid-run, so it waives this — the
    // `reconverges_after_heal` invariant below takes over. So do hostile
    // batteries: a rogue BPDU (or the guard err-disabling its port)
    // changes the control-plane signature by design after the epoch.
    let downtime = wl.injects_downtime();
    let settled = converged_at.is_none_or(|t| t <= epoch);
    out.push(InvariantResult {
        name: "converged_before_workload",
        verdict: if settled {
            Verdict::Pass
        } else if downtime || hostile {
            Verdict::Waived
        } else {
            Verdict::Fail
        },
        detail: match converged_at {
            Some(t) => format!(
                "last control-plane change at {} ns (epoch {} ns)",
                t.as_ns(),
                epoch.as_ns()
            ),
            None => "control plane never changed".to_owned(),
        },
    });

    out.push(InvariantResult {
        name: "no_storm",
        verdict: if quiet_tx <= quiet_allowed {
            Verdict::Pass
        } else if control_arm {
            // An undefended rogue root ages out (max-age) inside the
            // quiet window and the real tree re-elects itself there.
            Verdict::Waived
        } else {
            Verdict::Fail
        },
        detail: format!("{quiet_tx} frames in the quiet window (allowed {quiet_allowed})"),
    });

    // Loss: blasts are raw and unacknowledged, so a scripted drop fault
    // or scripted downtime waives them — as are loaded-phase probes,
    // which run *inside* the scripted fault window precisely to measure
    // how much is lost (their losses feed the degradation score, not
    // the invariant). Everything else carries its own recovery and
    // stays strict.
    let drops_scripted = wl.injects_drops() || downtime;
    let mut lost = Vec::new();
    let mut waived_loss = 0u64;
    for a in apps {
        if !a.ok {
            if drops_scripted && (a.label == "blast" || a.phase == Phase::Loaded) {
                waived_loss += 1;
            } else if control_arm {
                // Attacks running without defenses are *expected* to hurt
                // the victims; `attack_degrades_undefended` judges that.
                waived_loss += 1;
            } else {
                lost.push(format!("{} {}→{}", a.label, a.from_seg, a.to_seg));
            }
        }
    }
    out.push(InvariantResult {
        name: "no_loss_after_convergence",
        verdict: if !lost.is_empty() {
            Verdict::Fail
        } else if waived_loss > 0 {
            Verdict::Waived
        } else {
            Verdict::Pass
        },
        detail: if lost.is_empty() {
            format!(
                "{} workload items delivered ({} waived under scripted faults)",
                apps.len() as u64 - waived_loss,
                waived_loss
            )
        } else {
            format!("undelivered: {}", lost.join(", "))
        },
    });

    // Duplicates: a receiver seeing more than was sent means a forwarding
    // loop (or a scripted duplicate fault, which waives it).
    let mut duplicated = Vec::new();
    for a in apps {
        let sent = a.detail.iter().find(|(k, _)| *k == "sent").map(|&(_, v)| v);
        let received = a
            .detail
            .iter()
            .find(|(k, _)| *k == "received")
            .map(|&(_, v)| v);
        if let (Some(sent), Some(received)) = (sent, received) {
            if received > sent {
                duplicated.push(format!(
                    "{} {}→{} ({received} > {sent})",
                    a.label, a.from_seg, a.to_seg
                ));
            }
        }
    }
    out.push(InvariantResult {
        name: "no_duplicate_delivery",
        verdict: if !duplicated.is_empty() {
            // Scripted duplication waives this, as does scripted
            // downtime: a healing ring can loop transiently while the
            // spanning tree re-blocks a port. The undefended attack arm
            // is waived too — a rogue root can transiently re-open a
            // blocked port.
            if wl.injects_duplicates() || downtime || control_arm {
                Verdict::Waived
            } else {
                Verdict::Fail
            }
        } else {
            Verdict::Pass
        },
        detail: if duplicated.is_empty() {
            "no receiver saw more frames than were sent".to_owned()
        } else {
            format!("duplicated: {}", duplicated.join(", "))
        },
    });

    if topo.cyclic() {
        let roots: std::collections::BTreeSet<&str> =
            bridges.iter().filter_map(|b| b.root.as_deref()).collect();
        out.push(InvariantResult {
            name: "single_root",
            verdict: if roots.len() == 1 {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!("elected roots: {roots:?}"),
        });
    }

    if uploads > 0 {
        let alive = world.counters().get(workload::UPLOAD_ALIVE_COUNTER);
        out.push(InvariantResult {
            name: "uploads_alive",
            verdict: if alive == uploads {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!("{alive} of {uploads} uploaded switchlets ran init"),
        });
    }

    // Recovery invariants: judged only on runs that script downtime.
    if downtime {
        let heal_offset = wl.chaos.last_heal_at().unwrap_or(SimDuration::ZERO);
        let heal = epoch + heal_offset;

        // After the last heal the control plane must settle within a
        // bound: a spanning-tree re-convergence around a restarted
        // bridge (max-age expiry plus two forward-delay intervals) on
        // loopy topologies, a re-flood on learning-only ones.
        let bound = if topo.cyclic() {
            SimDuration::from_secs(55)
        } else {
            SimDuration::from_secs(5)
        };
        let reconverged = converged_at.is_none_or(|t| t <= heal + bound);
        out.push(InvariantResult {
            name: "reconverges_after_heal",
            verdict: if reconverged {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: match converged_at {
                Some(t) => format!(
                    "last control-plane change at {} ns (heal {} ns, bound {} ns)",
                    t.as_ns(),
                    heal.as_ns(),
                    bound.as_ns()
                ),
                None => "control plane never changed".to_owned(),
            },
        });

        // No permanent blackhole: every reliable main-phase flow
        // scheduled at or after the last heal must succeed. Raw blasts
        // are excluded — the watchdog probe intentionally sacrifices a
        // few frames to the trap threshold.
        let mut dead = Vec::new();
        let mut probes = 0u64;
        for (item, a) in wl.items.iter().zip(apps) {
            if item.phase == Phase::Main && item.offset >= heal_offset && a.label != "blast" {
                probes += 1;
                if !a.ok {
                    dead.push(format!("{} {}→{}", a.label, a.from_seg, a.to_seg));
                }
            }
        }
        out.push(InvariantResult {
            name: "no_permanent_blackhole",
            verdict: if !dead.is_empty() {
                Verdict::Fail
            } else if probes > 0 {
                Verdict::Pass
            } else {
                Verdict::Waived
            },
            detail: if dead.is_empty() {
                format!("{probes} post-heal probes delivered")
            } else {
                format!("dead after heal: {}", dead.join(", "))
            },
        });
    }

    // Resilience invariants: judged only on runs that script bursty
    // loss (the lossy battery). They hold the adaptive transport and
    // the integrity gate to account *under* the hostile medium — never
    // waived there.
    if wl.injects_bursts() {
        let detail = |a: &AppReport, key: &str| {
            a.detail
                .iter()
                .find(|(k, _)| *k == key)
                .map_or(0, |&(_, v)| v)
        };
        let sealed: Vec<&AppReport> = apps.iter().filter(|a| a.label == "upload_sealed").collect();
        let corrupt: Vec<&AppReport> = apps
            .iter()
            .filter(|a| a.label == "upload_corrupt")
            .collect();

        // Every sealed upload must complete despite the burst model
        // chewing on its segment (and, in the lossy battery, a bridge
        // crash mid-transfer).
        let incomplete = sealed.iter().filter(|a| !a.ok).count() as u64;
        out.push(InvariantResult {
            name: "uploads_complete_under_loss",
            verdict: if sealed.is_empty() {
                Verdict::Waived
            } else if incomplete == 0 {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!(
                "{} of {} sealed uploads completed under bursty loss",
                sealed.len() as u64 - incomplete,
                sealed.len()
            ),
        });

        // ... and must get there inside its recovery budget: no sealed
        // upload parked, none spent more than `max_retries` actions.
        let mut worst_used = 0u64;
        let mut budget = 0u64;
        let mut blown = 0u64;
        for a in &sealed {
            let used = detail(a, "budget_used");
            worst_used = worst_used.max(used);
            budget = detail(a, "budget");
            if detail(a, "parked") > 0 || used > budget {
                blown += 1;
            }
        }
        out.push(InvariantResult {
            name: "retries_within_budget",
            verdict: if sealed.is_empty() {
                Verdict::Waived
            } else if blown == 0 {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!(
                "worst sealed upload spent {worst_used} of {budget} recovery actions ({blown} exhausted)"
            ),
        });

        // The deliberately poisoned image must be refused at the gate —
        // every re-send rejected, the sender parked with a classified
        // integrity failure, and the payload never evaluated (its init
        // would inflate the `uploads_alive` counter, which that
        // invariant cross-checks).
        let rejects: u64 = bridges
            .iter()
            .flat_map(|b| &b.counters)
            .filter(|&&(k, _)| k == "images_rejected")
            .map(|&(_, v)| v)
            .sum();
        let unparked = corrupt.iter().filter(|a| !a.ok).count() as u64;
        let gate_held = unparked == 0 && rejects >= corrupt.len() as u64;
        out.push(InvariantResult {
            name: "corrupted_image_never_activates",
            verdict: if corrupt.is_empty() {
                Verdict::Waived
            } else if gate_held {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!(
                "{} corrupt uploads, {rejects} gate rejects, {unparked} escaped classification",
                corrupt.len()
            ),
        });

        // Every upload under the hostile medium must reach a terminal
        // state — completed or parked — before the run ends; a transport
        // that retries forever would leave one in limbo.
        let in_limbo = sealed
            .iter()
            .chain(&corrupt)
            .filter(|a| detail(a, "done") == 0 && detail(a, "parked") == 0)
            .count() as u64;
        let judged = (sealed.len() + corrupt.len()) as u64;
        out.push(InvariantResult {
            name: "no_livelock",
            verdict: if judged == 0 {
                Verdict::Waived
            } else if in_limbo == 0 {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!(
                "{} of {judged} uploads reached a terminal state",
                judged - in_limbo
            ),
        });
    }

    // The watchdog must engage exactly as scripted — no more, no fewer.
    if wl.expected_quarantines > 0 {
        let quarantines = world.counters().get("bridge.quarantines");
        out.push(InvariantResult {
            name: "quarantine_engages",
            verdict: if quarantines == wl.expected_quarantines {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!(
                "{quarantines} watchdog quarantines (scripted {})",
                wl.expected_quarantines
            ),
        });
    }

    // Adversarial invariants: the defended arm must shrug the attacks
    // off; the control arm must visibly suffer them (otherwise the
    // defended arm proves nothing).
    if hostile {
        let sec = security.expect("hostile runs always carry a security report");
        let rogue_scheduled = wl
            .items
            .iter()
            .any(|i| matches!(i.action, AppAction::RogueBpdu { .. }));
        let attack_labels = ["mac_flood", "arp_storm", "rogue_bpdu"];

        out.push(InvariantResult {
            name: "learn_table_bounded",
            verdict: if control_arm {
                Verdict::Waived
            } else if sec.max_learn_occupancy <= DEFENSE_LEARN_CAP as u64 {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!(
                "max learning-table occupancy {} (cap {})",
                sec.max_learn_occupancy, DEFENSE_LEARN_CAP
            ),
        });

        let starved: Vec<String> = apps
            .iter()
            .filter(|a| !attack_labels.contains(&a.label) && !a.ok)
            .map(|a| format!("{} {}→{}", a.label, a.from_seg, a.to_seg))
            .collect();
        out.push(InvariantResult {
            name: "victim_flows_survive",
            verdict: if control_arm {
                Verdict::Waived
            } else if starved.is_empty() {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: if starved.is_empty() {
                "every victim flow completed under attack".to_owned()
            } else {
                format!("starved under attack: {}", starved.join(", "))
            },
        });

        out.push(InvariantResult {
            name: "storm_suppressed_and_released",
            verdict: if control_arm {
                Verdict::Waived
            } else if sec.storm_suppressions > 0 && sec.storm_suppressions == sec.storm_releases {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!(
                "{} suppressions, {} releases",
                sec.storm_suppressions, sec.storm_releases
            ),
        });

        out.push(InvariantResult {
            name: "root_stays_stable",
            verdict: if control_arm {
                Verdict::Waived
            } else if !sec.rogue_root_seen && (!rogue_scheduled || sec.bpdu_guard_trips > 0) {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!(
                "rogue root seen: {}, guard trips: {} (rogue scheduled: {})",
                sec.rogue_root_seen, sec.bpdu_guard_trips, rogue_scheduled
            ),
        });

        // The control arm earns its keep by demonstrating degradation:
        // the flood blows past the (defended-arm) cap, and a scheduled
        // rogue BPDU actually steals the root.
        let degraded = sec.max_learn_occupancy > DEFENSE_LEARN_CAP as u64
            && (!rogue_scheduled || sec.rogue_root_seen);
        out.push(InvariantResult {
            name: "attack_degrades_undefended",
            verdict: if !control_arm {
                Verdict::Waived
            } else if degraded {
                Verdict::Pass
            } else {
                Verdict::Fail
            },
            detail: format!(
                "max occupancy {} vs cap {}, rogue root seen: {}",
                sec.max_learn_occupancy, DEFENSE_LEARN_CAP, sec.rogue_root_seen
            ),
        });
    }

    out
}
