//! # ab-scenario — turn "run the bridge in a situation" into data
//!
//! The experiment substrate above the Active Bridging reproduction:
//!
//! * [`topo`] — parametric topology generation: line, ring, star,
//!   balanced tree, full mesh and seeded random graphs, all pure
//!   functions of `(shape, seed)`, with per-edge segment parameters;
//! * [`workload`] — workload batteries: composable, seeded schedules of
//!   the `hostsim` measurement apps (ping, ttcp, blast, TFTP switchlet
//!   upload) plus fault scripts driving `netsim::fault` mid-run;
//! * [`runner`] — the scenario runner: execute one
//!   `(topology, workload, seed)` triple, collect per-segment and
//!   per-bridge counters, and emit a structured JSON [`runner::Report`]
//!   with pass/fail verdicts per invariant (no storm, no loss after
//!   convergence, no duplicate delivery, single spanning-tree root);
//! * [`sweep`] — batteries of scenarios across many shapes and seeds
//!   with one aggregated score, in the spirit of `netmeasure2`;
//! * [`json`] — the deterministic JSON document model reports render to.
//!
//! Everything is a pure function of its seeds: the same `Scenario` value
//! produces a byte-identical JSON report on every run.
//!
//! The low-level world-building primitives (deterministic addresses,
//! `lans`, `bridge`) are re-exported at the crate root; this is their
//! only public path (the deprecated `active_bridge::scenario` shim has
//! been removed).
//!
//! ## Example
//!
//! ```
//! use ab_scenario::runner::{self, Scenario};
//! use ab_scenario::topo::TopologyShape;
//! use ab_scenario::workload::BatteryKind;
//!
//! let scenario = Scenario::new(TopologyShape::Star { arms: 2 }, BatteryKind::Pings, 7);
//! let report = runner::run(&scenario);
//! assert!(report.passed(), "{}", report.to_json().render_pretty());
//! ```

pub mod exec;
pub mod json;
pub mod quality;
pub mod runner;
pub mod sketch;
pub mod sweep;
pub mod timeline;
pub mod topo;
pub mod workload;

// The world-building primitives live in `active_bridge` (they construct
// `BridgeNode`s, and this crate depends on that one); this is their
// canonical public path.
pub use active_bridge::scenario_impl::{
    bridge, bridge_ip, bridge_mac, host_ip, host_mac, lans, line, ring,
};

pub use exec::{
    default_jobs, parse_jobs, run_jobs, run_jobs_local, run_jobs_local_profiled, JobProfile,
    PoolProfile, WorkerProfile,
};
pub use json::Json;
pub use quality::{score_report, QualityScore};
pub use runner::{
    run, run_in, run_recorded, run_traced, InvariantResult, RecoveryReport, Report, Scenario,
    Verdict,
};
pub use sketch::Sketch;
pub use sweep::{run_sweep, run_sweep_jobs, run_sweep_jobs_profiled, SweepReport, SweepSpec};
pub use timeline::{summary_tables, timeline_json, validate_timeline};
pub use topo::{instantiate, BuiltTopology, SegTier, Topology, TopologyShape};
pub use workload::{BatteryKind, Phase, Workload};
