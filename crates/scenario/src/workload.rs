//! Workload batteries: composable, seeded schedules of host applications
//! and fault scripts.
//!
//! A [`Workload`] is pure data, like a topology: [`generate`] maps
//! `(battery kind, topology, seed)` to a list of scheduled
//! [`AppAction`]s (which hosts to create, where, running what, starting
//! when) plus a list of scheduled [`FaultAction`]s driving
//! `netsim::fault` mid-run. The runner materializes both.

use netsim::{BurstConfig, ChaosScript, FaultConfig, SimDuration, Xoshiro};
use switchlet::{ModuleBuilder, Op, Ty};

use crate::topo::Topology;

/// The built-in experiment batteries.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatteryKind {
    /// ICMP echo trains between far-apart and random segment pairs
    /// (exercises ARP, flooding, learning, the echo responder).
    Pings,
    /// A ttcp transfer across the diameter plus background blast pairs
    /// (exercises TcpLite, pacing, queueing).
    Streams,
    /// TFTP switchlet uploads to bridges with background traffic
    /// (exercises the loader path end to end).
    Uploads,
    /// Blasts and a ttcp transfer through a mid-run drop-fault window
    /// (exercises retransmission; loss invariants are waived while the
    /// fault is scripted). Baseline pings before the fault and loaded
    /// pings inside the drop window feed the degradation subscore.
    Churn,
    /// The degradation battery: baseline pings measure the quiet
    /// network, then a background blast sized to ~2/3 of the slowest
    /// element's capacity (wire or bridge software path, whichever
    /// binds) loads the extended LAN while loaded pings measure again.
    /// The quality scorer compares the two phases — graceful
    /// degradation, not just survival.
    Contention,
    /// The population-scale battery: [`CROWD_PER_ACCESS`] silent hosts
    /// on every access segment (≥ 1024 on the large metro), plus
    /// cross-district echo trains, a diameter bulk transfer, and a
    /// flood blast whose sink never speaks — so every blast frame fans
    /// out to the whole population (exercises high-degree `DeliverAll`
    /// batching, learn-table scale, flood forwarding).
    Metro,
    /// The robustness battery: scheduled topology faults — a partition
    /// that heals, a link flap storm, rolling bridge crash/restart
    /// cycles — plus a post-heal upload of a deliberately faulty
    /// switchlet the watchdog must quarantine. Baseline pings measure
    /// the quiet network, loaded pings re-measure inside the outage
    /// window, and a strict post-heal transfer proves the extended LAN
    /// recovered (the `reconverges_after_heal`, `no_permanent_blackhole`
    /// and `quarantine_engages` invariants).
    Chaos,
    /// The hostile-media battery: a Gilbert–Elliott burst-loss window
    /// (≥ 10% steady-state loss) over the upload path, a digest-sealed
    /// switchlet upload riding the adaptive retransmission transport, a
    /// bridge crash mid-transfer the sender must survive with a fresh
    /// session, and a deliberately pre-corrupted image the integrity
    /// gate must reject without evaluation. Judged by the
    /// `uploads_complete_under_loss`, `retries_within_budget`,
    /// `corrupted_image_never_activates` and `no_livelock` invariants.
    Lossy,
    /// The hostile-host battery: a MAC flood with randomized sources
    /// (CAM-table exhaustion), a broadcast ARP storm for addresses
    /// nobody owns, and — where the attacker sits on a single-bridge
    /// access segment — a forged superior-BPDU rogue-root claim, all
    /// launched against victim ping/ttcp flows on other segments. The
    /// runner executes it twice per scenario: an *undefended* control
    /// arm proving the attacks bite (`attack_degrades_undefended`) and
    /// a *defended* arm with bounded learning, storm control and BPDU
    /// guard switched on, judged by `learn_table_bounded`,
    /// `victim_flows_survive`, `storm_suppressed_and_released` and
    /// `root_stays_stable`.
    Adversarial,
}

impl BatteryKind {
    /// Every battery, in a stable order.
    pub const ALL: [BatteryKind; 9] = [
        BatteryKind::Pings,
        BatteryKind::Streams,
        BatteryKind::Uploads,
        BatteryKind::Churn,
        BatteryKind::Metro,
        BatteryKind::Contention,
        BatteryKind::Chaos,
        BatteryKind::Lossy,
        BatteryKind::Adversarial,
    ];

    /// Short label for names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BatteryKind::Pings => "pings",
            BatteryKind::Streams => "streams",
            BatteryKind::Uploads => "uploads",
            BatteryKind::Churn => "churn",
            BatteryKind::Metro => "metro",
            BatteryKind::Contention => "contention",
            BatteryKind::Chaos => "chaos",
            BatteryKind::Lossy => "lossy",
            BatteryKind::Adversarial => "adversarial",
        }
    }

    fn tag(&self) -> u64 {
        match self {
            BatteryKind::Pings => 1,
            BatteryKind::Streams => 2,
            BatteryKind::Uploads => 3,
            BatteryKind::Churn => 4,
            BatteryKind::Metro => 5,
            BatteryKind::Contention => 6,
            BatteryKind::Chaos => 7,
            BatteryKind::Lossy => 8,
            BatteryKind::Adversarial => 9,
        }
    }
}

/// Which measurement phase a scheduled app belongs to. Degradation
/// batteries run the same probe twice — once on the quiet network
/// ([`Phase::Baseline`]) and once under scripted load or faults
/// ([`Phase::Loaded`]) — and the quality scorer pairs the two by report
/// order. Everything else is [`Phase::Main`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Ordinary workload traffic.
    Main,
    /// A quiet-network measurement taken before the disturbance.
    Baseline,
    /// The same measurement repeated under load or scripted faults.
    Loaded,
}

impl Phase {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Main => "main",
            Phase::Baseline => "baseline",
            Phase::Loaded => "loaded",
        }
    }
}

/// One application to run, with its endpoints as segment indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppAction {
    /// An ICMP echo train from a host on `from_seg` to one on `to_seg`.
    Ping {
        /// Pinger's segment.
        from_seg: usize,
        /// Echo responder's segment.
        to_seg: usize,
        /// Requests to send.
        count: u32,
        /// ICMP payload bytes.
        payload: usize,
        /// Inter-request interval.
        interval: SimDuration,
    },
    /// A ttcp transfer from `from_seg` to `to_seg`.
    Ttcp {
        /// Sender's segment.
        from_seg: usize,
        /// Receiver's segment.
        to_seg: usize,
        /// Bytes to move.
        total_bytes: u64,
        /// Application write size.
        write_size: usize,
    },
    /// A raw-frame blast from `from_seg` to a sink host on `to_seg`.
    Blast {
        /// Blaster's segment.
        from_seg: usize,
        /// Sink's segment.
        to_seg: usize,
        /// Frame payload size.
        size: usize,
        /// Frames to send.
        count: u64,
        /// Inter-frame interval.
        interval: SimDuration,
    },
    /// A TFTP switchlet upload from a host on `from_seg` to bridge
    /// `bridge` (the inert telemetry module from
    /// [`inert_upload_image`]).
    Upload {
        /// Uploader's segment.
        from_seg: usize,
        /// Target bridge index.
        bridge: usize,
    },
    /// A TFTP upload of the deliberately faulty `vm_trap` switchlet to
    /// bridge `bridge` — the chaos battery's watchdog probe. The module
    /// installs a data plane that traps on every frame; the bridge must
    /// quarantine it at the configured trap threshold and fall back to
    /// its last-known-good plane (judged exactly by the
    /// `quarantine_engages` invariant).
    UploadTrap {
        /// Uploader's segment.
        from_seg: usize,
        /// Target bridge index.
        bridge: usize,
    },
    /// A digest-sealed switchlet upload (see [`sealed_upload_image`])
    /// on the adaptive retransmission transport
    /// (`UploadConfig::resilient`) — the lossy battery's workhorse,
    /// scheduled to ride out a burst-loss window and a mid-transfer
    /// bridge crash. `pad` inflates the image so the transfer spans
    /// many TFTP blocks (a crash at a fixed offset reliably lands
    /// mid-session).
    UploadSealed {
        /// Uploader's segment.
        from_seg: usize,
        /// Target bridge index.
        bridge: usize,
        /// Extra payload octets interned into the module image.
        pad: usize,
    },
    /// A sealed upload whose payload is corrupted *after* sealing — the
    /// bridge's integrity gate must reject every attempt before decode
    /// or evaluation, the sender sees `IntegrityReject` and parks once
    /// its (deliberately small) retry budget is spent. Judged by the
    /// `corrupted_image_never_activates` invariant.
    UploadCorrupt {
        /// Uploader's segment.
        from_seg: usize,
        /// Target bridge index.
        bridge: usize,
    },
    /// A MAC-flood attacker on `from_seg`: `count` frames with
    /// randomized locally-administered source addresses toward a fixed
    /// never-learned destination — CAM-table exhaustion against an
    /// unbounded learning table (the adversarial battery's first arm).
    MacFlood {
        /// Attacker's segment.
        from_seg: usize,
        /// Frames to send.
        count: u64,
        /// Inter-frame interval.
        interval: SimDuration,
        /// The attacker's private RNG seed (never the world RNG, so
        /// both defense arms replay the identical offense).
        seed: u64,
    },
    /// A broadcast ARP storm on `from_seg`: `count` who-has requests
    /// for addresses in a dark /16 nobody owns — every frame floods the
    /// whole extended LAN until storm control suppresses the port.
    ArpStorm {
        /// Attacker's segment.
        from_seg: usize,
        /// Frames to send.
        count: u64,
        /// Inter-frame interval.
        interval: SimDuration,
        /// The attacker's private RNG seed.
        seed: u64,
    },
    /// A rogue-root attacker on `from_seg`: forged superior (priority
    /// 0x0000) configuration BPDUs claiming the host is the spanning-
    /// tree root. Scheduled only where the attacker's segment touches a
    /// single bridge, so the defended arm can BPDU-guard that port.
    RogueBpdu {
        /// Attacker's segment.
        from_seg: usize,
        /// BPDUs to send.
        count: u64,
        /// Inter-BPDU interval.
        interval: SimDuration,
    },
    /// `hosts` silent listener hosts on `seg` — the metro battery's
    /// district population. They never initiate traffic, but every
    /// broadcast or flood crossing their segment is delivered to each
    /// of them (the high-degree fan-out the metro tier exists to
    /// stress). Judged on every host having heard at least one frame:
    /// ARP broadcasts from the battery's active flows reach every
    /// forwarding segment.
    Crowd {
        /// The crowd's segment.
        seg: usize,
        /// Host count.
        hosts: u32,
    },
}

impl AppAction {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AppAction::Ping { .. } => "ping",
            AppAction::Ttcp { .. } => "ttcp",
            AppAction::Blast { .. } => "blast",
            AppAction::Upload { .. } => "upload",
            AppAction::UploadTrap { .. } => "upload_trap",
            AppAction::UploadSealed { .. } => "upload_sealed",
            AppAction::UploadCorrupt { .. } => "upload_corrupt",
            AppAction::MacFlood { .. } => "mac_flood",
            AppAction::ArpStorm { .. } => "arp_storm",
            AppAction::RogueBpdu { .. } => "rogue_bpdu",
            AppAction::Crowd { .. } => "crowd",
        }
    }

    /// How many hosts materializing this action adds to the world.
    pub fn host_count(&self) -> u64 {
        match self {
            AppAction::Ping { .. } | AppAction::Ttcp { .. } | AppAction::Blast { .. } => 2,
            AppAction::Upload { .. }
            | AppAction::UploadTrap { .. }
            | AppAction::UploadSealed { .. }
            | AppAction::UploadCorrupt { .. }
            | AppAction::MacFlood { .. }
            | AppAction::ArpStorm { .. }
            | AppAction::RogueBpdu { .. } => 1,
            AppAction::Crowd { hosts, .. } => *hosts as u64,
        }
    }

    /// A conservative bound on how long the action takes once started.
    pub fn span(&self) -> SimDuration {
        match self {
            AppAction::Ping {
                count, interval, ..
            } => *interval * (*count as u64) + SimDuration::from_secs(2),
            AppAction::Ttcp { total_bytes, .. } => {
                // Worst case: a 10 Mb/s hop plus retransmission stalls.
                SimDuration::from_secs(15) + SimDuration::from_ms(total_bytes / 500)
            }
            AppAction::Blast {
                count, interval, ..
            } => *interval * *count + SimDuration::from_secs(2),
            AppAction::Upload { .. } | AppAction::UploadTrap { .. } => SimDuration::from_secs(5),
            // Sealed/corrupt uploads ride hostile media: allow for the
            // full backoff ladder and a mid-transfer bridge restart.
            AppAction::UploadSealed { .. } | AppAction::UploadCorrupt { .. } => {
                SimDuration::from_secs(15)
            }
            AppAction::MacFlood {
                count, interval, ..
            }
            | AppAction::ArpStorm {
                count, interval, ..
            }
            | AppAction::RogueBpdu {
                count, interval, ..
            } => *interval * *count + SimDuration::from_secs(2),
            AppAction::Crowd { .. } => SimDuration::ZERO,
        }
    }
}

/// One scheduled application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// Start offset from the workload epoch (which the runner places
    /// after topology convergence).
    pub offset: SimDuration,
    /// Which measurement phase this item belongs to.
    pub phase: Phase,
    /// What to run.
    pub action: AppAction,
}

/// One scheduled fault-script step.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Install a fault configuration on a segment.
    Set {
        /// Target segment index.
        seg: usize,
        /// The configuration to install.
        fault: FaultConfig,
    },
    /// Restore a segment to fault-free operation.
    Clear {
        /// Target segment index.
        seg: usize,
    },
}

/// A generated battery: scheduled apps plus a fault script.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Which battery generated this.
    pub kind: BatteryKind,
    /// Scheduled applications, in generation order.
    pub items: Vec<WorkItem>,
    /// Scheduled fault-script steps (offsets from the workload epoch).
    pub faults: Vec<(SimDuration, FaultAction)>,
    /// Scheduled topology faults (offsets from the workload epoch) —
    /// transparent for every battery except chaos, so existing runs
    /// replay byte-for-byte.
    pub chaos: ChaosScript,
    /// How many watchdog quarantines the script is engineered to
    /// trigger; when non-zero the runner judges the count exactly.
    pub expected_quarantines: u64,
}

impl Workload {
    /// Offset (from the workload epoch) by which everything scheduled —
    /// apps and fault script — should be finished.
    pub fn span(&self) -> SimDuration {
        let apps = self
            .items
            .iter()
            .map(|i| i.offset + i.action.span())
            .max()
            .unwrap_or(SimDuration::ZERO);
        let faults = self
            .faults
            .iter()
            .map(|(at, _)| *at + SimDuration::from_secs(1))
            .max()
            .unwrap_or(SimDuration::ZERO);
        // Transparent scripts contribute nothing (no margin either), so
        // chaos-free batteries keep their exact pre-chaos spans.
        let chaos = if self.chaos.is_transparent() {
            SimDuration::ZERO
        } else {
            self.chaos.span() + SimDuration::from_secs(1)
        };
        apps.max(faults).max(chaos)
    }

    /// Does the script inject frame drops at any point — uniformly
    /// (`drop_one_in`) or through a Gilbert–Elliott burst model whose
    /// states can drop?
    pub fn injects_drops(&self) -> bool {
        self.faults.iter().any(|(_, f)| {
            matches!(f, FaultAction::Set { fault, .. }
                if fault.drop_one_in > 0
                    || fault.burst.is_some_and(|b| b.good_drop_one_in > 0 || b.bad_drop_one_in > 0))
        })
    }

    /// Does the script install a Gilbert–Elliott burst model at any
    /// point? When it does, the runner judges the four resilience
    /// invariants and renders the `resilience` report section.
    pub fn injects_bursts(&self) -> bool {
        self.faults
            .iter()
            .any(|(_, f)| matches!(f, FaultAction::Set { fault, .. } if fault.burst.is_some()))
    }

    /// Does the script take links down or crash bridges at any point?
    /// While scripted downtime is in play the convergence, loss and
    /// duplicate invariants are judged leniently and the recovery
    /// invariants take over.
    pub fn injects_downtime(&self) -> bool {
        !self.chaos.is_transparent()
    }

    /// Does the workload field hostile hosts (MAC flood, ARP storm,
    /// rogue BPDUs)? When it does, the runner executes defended and
    /// undefended arms, samples security telemetry on the slice grid,
    /// judges the adversarial invariants and renders the `security`
    /// report section.
    pub fn injects_attacks(&self) -> bool {
        self.items.iter().any(|i| {
            matches!(
                i.action,
                AppAction::MacFlood { .. }
                    | AppAction::ArpStorm { .. }
                    | AppAction::RogueBpdu { .. }
            )
        })
    }

    /// Does the script inject frame duplication at any point?
    pub fn injects_duplicates(&self) -> bool {
        self.faults
            .iter()
            .any(|(_, f)| matches!(f, FaultAction::Set { fault, .. } if fault.duplicate_one_in > 0))
    }

    /// Total hosts materializing this workload adds to the world (the
    /// runner pre-sizes the world and the bridges' tables from it).
    pub fn host_count(&self) -> u64 {
        self.items.iter().map(|i| i.action.host_count()).sum()
    }
}

/// A distinct `(from, to)` pair of **access** segments: the far pair
/// first (snapped onto access segments — the metro backbone is
/// host-free), then seeded random distinct pairs. On non-metro shapes
/// every segment is access-tier, so this draws over all of them with
/// the same RNG consumption as before the metro tier existed.
fn pick_pair(topo: &Topology, rng: &mut Xoshiro, nth: usize) -> (usize, usize) {
    let access = topo.access_segments();
    if nth == 0 {
        let (a, b) = topo.far_pair();
        let snap = |s: usize, fallback: usize| {
            if topo.segments[s].tier == crate::topo::SegTier::Access {
                s
            } else {
                fallback
            }
        };
        let (a, b) = (snap(a, access[0]), snap(b, access[access.len() - 1]));
        if a == b && access.len() > 1 {
            // Snapping collapsed the pair (tiny metro whose diameter
            // endpoint was a spine): span the access extremes instead so
            // the "far" workload still crosses bridges.
            return (access[0], access[access.len() - 1]);
        }
        return (a, b);
    }
    let n = access.len() as u64;
    let a = rng.range(n) as usize;
    let mut b = rng.range(n) as usize;
    if a == b {
        b = (b + 1) % n as usize;
    }
    (access[a], access[b])
}

/// Generate the battery `kind` for `topo` from `seed`. Pure and
/// deterministic, like topology generation.
pub fn generate(kind: BatteryKind, topo: &Topology, seed: u64) -> Workload {
    let mut rng = Xoshiro::seed_from_u64(seed ^ (0x3A77_E21B_00C0_FFEE ^ kind.tag()));
    let mut items = Vec::new();
    let mut faults = Vec::new();
    let mut chaos = ChaosScript::transparent();
    let mut expected_quarantines = 0u64;
    match kind {
        BatteryKind::Pings => {
            for nth in 0..3 {
                let (from_seg, to_seg) = pick_pair(topo, &mut rng, nth);
                let payload = [64usize, 256, 512, 1024][rng.range(4) as usize];
                items.push(WorkItem {
                    phase: Phase::Main,
                    offset: SimDuration::from_ms(50 * nth as u64),
                    action: AppAction::Ping {
                        from_seg,
                        to_seg,
                        count: 8,
                        payload,
                        interval: SimDuration::from_ms(50),
                    },
                });
            }
        }
        BatteryKind::Streams => {
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 0);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::ZERO,
                action: AppAction::Ttcp {
                    from_seg,
                    to_seg,
                    total_bytes: 200_000,
                    write_size: 4096,
                },
            });
            for nth in 1..3 {
                let (from_seg, to_seg) = pick_pair(topo, &mut rng, nth);
                items.push(WorkItem {
                    phase: Phase::Main,
                    offset: SimDuration::from_ms(100 * nth as u64),
                    action: AppAction::Blast {
                        from_seg,
                        to_seg,
                        size: 256 + rng.range(768) as usize,
                        count: 40 + rng.range(60),
                        interval: SimDuration::from_ms(1 + rng.range(2)),
                    },
                });
            }
        }
        BatteryKind::Uploads => {
            let n_uploads = 1 + rng.range(2) as usize;
            for nth in 0..n_uploads {
                let bridge = rng.range(topo.bridges.len() as u64) as usize;
                // Upload from one of the target bridge's own access
                // segments; a pure-backbone bridge (metro spine) is
                // reached from the first access segment instead — the
                // loader answers from anywhere in the extended LAN. On
                // non-metro shapes every segment is access-tier, so this
                // is `segments[0]` exactly as before.
                let from_seg = topo.bridges[bridge]
                    .segments
                    .iter()
                    .copied()
                    .find(|&s| topo.segments[s].tier == crate::topo::SegTier::Access)
                    .unwrap_or_else(|| topo.access_segments()[0]);
                items.push(WorkItem {
                    phase: Phase::Main,
                    offset: SimDuration::from_ms(200 * nth as u64),
                    action: AppAction::Upload { from_seg, bridge },
                });
            }
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 1);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_ms(50),
                action: AppAction::Blast {
                    from_seg,
                    to_seg,
                    size: 128,
                    count: 50,
                    interval: SimDuration::from_ms(2),
                },
            });
        }
        BatteryKind::Metro => {
            // The district population: a crowd on every access segment.
            // On the large metro preset (64 access segments) this is the
            // ≥ 1024-host tier.
            let access = topo.access_segments();
            assert!(!access.is_empty(), "every topology has access segments");
            for &seg in &access {
                items.push(WorkItem {
                    phase: Phase::Main,
                    offset: SimDuration::ZERO,
                    action: AppAction::Crowd {
                        seg,
                        hosts: CROWD_PER_ACCESS,
                    },
                });
            }
            // Cross-district echo trains (pick_pair keeps every endpoint
            // on an access segment; the backbone is host-free).
            for nth in 0..4 {
                let (from_seg, to_seg) = pick_pair(topo, &mut rng, nth);
                items.push(WorkItem {
                    phase: Phase::Main,
                    offset: SimDuration::from_ms(50 * nth as u64),
                    action: AppAction::Ping {
                        from_seg,
                        to_seg,
                        count: 6,
                        payload: 256,
                        interval: SimDuration::from_ms(40),
                    },
                });
            }
            // A flood blast to a sink that never speaks: no bridge ever
            // learns its address, so every frame floods the entire metro
            // and fans out to the whole crowd population — the
            // high-degree DeliverAll stress.
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 1);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_ms(100),
                action: AppAction::Blast {
                    from_seg,
                    to_seg,
                    size: 512,
                    count: 150,
                    interval: SimDuration::from_ms(2),
                },
            });
            // One bulk transfer across the diameter.
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 0);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_ms(200),
                action: AppAction::Ttcp {
                    from_seg,
                    to_seg,
                    total_bytes: 150_000,
                    write_size: 4096,
                },
            });
        }
        BatteryKind::Contention => {
            // Baseline pings measure the quiet network first: done by
            // 8 × 30 ms = 240 ms, before the blast window opens.
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 0);
            let ping = |phase, offset_ms| WorkItem {
                phase,
                offset: SimDuration::from_ms(offset_ms),
                action: AppAction::Ping {
                    from_seg,
                    to_seg,
                    count: 8,
                    payload: 256,
                    interval: SimDuration::from_ms(30),
                },
            };
            items.push(ping(Phase::Baseline, 0));
            // The background load: a blast whose sink never speaks, so
            // every frame floods the whole extended LAN and contends on
            // every segment and every bridge. The inter-frame interval
            // is sized from the *slowest* element a flooded frame passes
            // through — the slowest segment's serialization time, or the
            // bridges' per-frame software path (which dominates on fast
            // media: a full-size frame costs ~0.56 ms through the
            // calibrated forwarding path, far above its 100 Mb/s wire
            // time) — run at utilization ρ = 2/3: heavy enough to queue
            // probes behind it, light enough that no queue overflows and
            // drops (the loss invariant stays strict here; nothing is
            // scripted).
            let min_bw = topo
                .segments
                .iter()
                .map(|s| s.bandwidth_bps)
                .min()
                .expect("every topology has segments");
            let size = 1400usize;
            let overhead = 24u64; // preamble + IFG + FCS, the segment default
            let wire_ns = ((size as u64 + overhead) * 8 * 1_000_000_000).div_ceil(min_bw);
            let bridge_ns = active_bridge::BridgeConfig::default()
                .cost
                .service_time(size + 14) // payload + Ethernet header
                .as_ns();
            let interval = SimDuration::from_ns(wire_ns.max(bridge_ns) * 3 / 2);
            // The blast opens before the loaded pings and outlives them:
            // loaded pings run 500..740 ms, the blast 400..~900 ms.
            let blast_span_ns = SimDuration::from_ms(500).as_ns();
            let count = blast_span_ns.div_ceil(interval.as_ns()).max(1);
            let (b_from, b_to) = pick_pair(topo, &mut rng, 1);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_ms(400),
                action: AppAction::Blast {
                    from_seg: b_from,
                    to_seg: b_to,
                    size,
                    count,
                    interval,
                },
            });
            // Loaded pings: the same pair, re-measured mid-blast.
            items.push(ping(Phase::Loaded, 500));
        }
        BatteryKind::Churn => {
            // Baseline pings complete before the fault window opens at
            // 500 ms (6 × 50 ms = 300 ms); loaded pings run inside it
            // and are waived from the loss invariant like the blasts.
            let (p_from, p_to) = pick_pair(topo, &mut rng, 3);
            let ping = |phase, offset_ms| WorkItem {
                phase,
                offset: SimDuration::from_ms(offset_ms),
                action: AppAction::Ping {
                    from_seg: p_from,
                    to_seg: p_to,
                    count: 6,
                    payload: 256,
                    interval: SimDuration::from_ms(50),
                },
            };
            items.push(ping(Phase::Baseline, 0));
            items.push(ping(Phase::Loaded, 1_000));
            // Long raw blasts span the whole fault window (their sinks
            // never speak, so the frames flood every segment — the lossy
            // patch always bites them; their loss is waived).
            for nth in 0..2 {
                let (from_seg, to_seg) = pick_pair(topo, &mut rng, nth);
                items.push(WorkItem {
                    phase: Phase::Main,
                    offset: SimDuration::from_ms(100 + 200 * nth as u64),
                    action: AppAction::Blast {
                        from_seg,
                        to_seg,
                        size: 512,
                        count: 1600 + rng.range(200),
                        interval: SimDuration::from_ms(2),
                    },
                });
            }
            // The scripted fault window: a lossy patch in the middle of
            // the run, healed before evaluation.
            let victim = rng.range(topo.segments.len() as u64) as usize;
            faults.push((
                SimDuration::from_ms(500),
                FaultAction::Set {
                    seg: victim,
                    fault: FaultConfig {
                        drop_one_in: 12,
                        ..FaultConfig::default()
                    },
                },
            ));
            faults.push((
                SimDuration::from_secs(4),
                FaultAction::Clear { seg: victim },
            ));
            // After the heal, a reliable transfer must complete strictly:
            // churn is survivable, not just observable.
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 2);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_ms(4_500),
                action: AppAction::Ttcp {
                    from_seg,
                    to_seg,
                    total_bytes: 100_000,
                    write_size: 4096,
                },
            });
        }
        BatteryKind::Chaos => {
            // Baseline pings complete before the first fault at 500 ms
            // (6 × 50 ms = 300 ms); loaded pings run inside the outage
            // window and are waived from the loss invariant (their
            // losses feed the degradation score instead).
            let (p_from, p_to) = pick_pair(topo, &mut rng, 3);
            let ping = |phase, offset_ms| WorkItem {
                phase,
                offset: SimDuration::from_ms(offset_ms),
                action: AppAction::Ping {
                    from_seg: p_from,
                    to_seg: p_to,
                    count: 6,
                    payload: 256,
                    interval: SimDuration::from_ms(50),
                },
            };
            items.push(ping(Phase::Baseline, 0));
            items.push(ping(Phase::Loaded, 1_200));
            // Long raw blasts span the whole outage window (their sinks
            // never speak, so the frames flood every segment — the
            // downed link and the crashed bridges always bite them;
            // their loss is waived under scripted downtime).
            for nth in 0..2 {
                let (from_seg, to_seg) = pick_pair(topo, &mut rng, nth);
                items.push(WorkItem {
                    phase: Phase::Main,
                    offset: SimDuration::from_ms(100 + 200 * nth as u64),
                    action: AppAction::Blast {
                        from_seg,
                        to_seg,
                        size: 512,
                        count: 1_600 + rng.range(200),
                        interval: SimDuration::from_ms(2),
                    },
                });
            }
            // The chaos script itself: which link partitions and flaps,
            // which bridges crash, and when — all decided here from the
            // scenario seed, never from the world RNG, so the schedule
            // is fixed before the world runs (byte-identical replays at
            // any worker count).
            let victim_seg = rng.range(topo.segments.len() as u64) as usize;
            let victim_bridge = rng.range(topo.bridges.len() as u64) as usize;
            chaos.partition(
                victim_seg,
                SimDuration::from_ms(500),
                SimDuration::from_ms(2_500),
            );
            chaos.flap_storm(
                victim_seg,
                SimDuration::from_ms(2_800),
                2,
                SimDuration::from_ms(100),
                SimDuration::from_ms(100),
            );
            chaos.crash_cycle(
                victim_bridge,
                SimDuration::from_ms(1_000),
                SimDuration::from_ms(2_000),
            );
            if topo.bridges.len() > 1 {
                // Roll the crash onto a second bridge, overlapping the
                // flap storm — the last restart is the script's final
                // healing step.
                chaos.crash_cycle(
                    (victim_bridge + 1) % topo.bridges.len(),
                    SimDuration::from_ms(1_400),
                    SimDuration::from_ms(3_400),
                );
            }
            // After the last heal the plane gets a recovery margin: on
            // loopy topologies the spanning tree may need a max-age
            // expiry plus two forward-delay intervals to reopen ports
            // around a restarted bridge; learning-only topologies just
            // re-flood.
            let heal = chaos
                .last_heal_at()
                .expect("the chaos script heals everything it breaks");
            let margin = if topo.cyclic() {
                SimDuration::from_secs(55)
            } else {
                SimDuration::from_secs(5)
            };
            let post = heal + margin;
            // The watchdog probe: upload a deliberately faulty data
            // plane to one bridge, then trigger it with a flood blast
            // (every frame crossing that bridge traps its VM). The
            // bridge must quarantine the module at the trap threshold
            // and roll back — exactly one quarantine, judged by the
            // `quarantine_engages` invariant. The blast loses the few
            // frames eaten before the threshold; that loss is waived.
            let trap_bridge = rng.range(topo.bridges.len() as u64) as usize;
            let trap_from = topo.bridges[trap_bridge]
                .segments
                .iter()
                .copied()
                .find(|&s| topo.segments[s].tier == crate::topo::SegTier::Access)
                .unwrap_or_else(|| topo.access_segments()[0]);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: post,
                action: AppAction::UploadTrap {
                    from_seg: trap_from,
                    bridge: trap_bridge,
                },
            });
            expected_quarantines = 1;
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 1);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: post + SimDuration::from_secs(5),
                action: AppAction::Blast {
                    from_seg,
                    to_seg,
                    size: 256,
                    count: 30,
                    interval: SimDuration::from_ms(2),
                },
            });
            // And the recovery proof: once the watchdog has rolled the
            // plane back, a reliable transfer must complete strictly —
            // chaos is survivable, not just observable (this is what
            // `no_permanent_blackhole` judges).
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 2);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: post + SimDuration::from_secs(6),
                action: AppAction::Ttcp {
                    from_seg,
                    to_seg,
                    total_bytes: 100_000,
                    write_size: 4096,
                },
            });
        }
        BatteryKind::Lossy => {
            // Baseline pings on the quiet network (done by 300 ms);
            // loaded pings re-measure inside the burst window and feed
            // the degradation subscore (their loss is waived — the
            // burst is scripted).
            let (p_from, p_to) = pick_pair(topo, &mut rng, 3);
            let ping = |phase, offset_ms| WorkItem {
                phase,
                offset: SimDuration::from_ms(offset_ms),
                action: AppAction::Ping {
                    from_seg: p_from,
                    to_seg: p_to,
                    count: 6,
                    payload: 256,
                    interval: SimDuration::from_ms(50),
                },
            };
            items.push(ping(Phase::Baseline, 0));
            items.push(ping(Phase::Loaded, 1_200));
            // The upload target and its access segment (same rule as
            // the uploads battery: a pure-backbone bridge is reached
            // from the first access segment).
            let access_of = |bridge: usize| {
                topo.bridges[bridge]
                    .segments
                    .iter()
                    .copied()
                    .find(|&s| topo.segments[s].tier == crate::topo::SegTier::Access)
                    .unwrap_or_else(|| topo.access_segments()[0])
            };
            let bridge = rng.range(topo.bridges.len() as u64) as usize;
            let from_seg = access_of(bridge);
            // The hostile medium: a Gilbert–Elliott burst window over
            // the upload segment. π_bad = (1/20)/(1/20 + 1/5) = 1/5 of
            // frames see the bad state, which drops every 2nd frame —
            // 10% steady-state loss, arriving in correlated trains
            // (plus a trickle of bad-state corruption the integrity
            // layers must absorb).
            let burst = BurstConfig {
                enter_one_in: 20,
                exit_one_in: 5,
                good_drop_one_in: 0,
                good_corrupt_one_in: 0,
                bad_drop_one_in: 2,
                bad_corrupt_one_in: 8,
            };
            debug_assert!(burst.steady_state_drop_pm() >= 100);
            faults.push((
                SimDuration::from_ms(500),
                FaultAction::Set {
                    seg: from_seg,
                    fault: FaultConfig {
                        burst: Some(burst),
                        ..FaultConfig::default()
                    },
                },
            ));
            faults.push((
                SimDuration::from_secs(6),
                FaultAction::Clear { seg: from_seg },
            ));
            // A flood blast spans the window (its sink never speaks, so
            // its frames cross the bursty segment throughout — the
            // burst always bites something; this loss is waived).
            let (b_from, b_to) = pick_pair(topo, &mut rng, 1);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_ms(100),
                action: AppAction::Blast {
                    from_seg: b_from,
                    to_seg: b_to,
                    size: 512,
                    count: 1_600 + rng.range(200),
                    interval: SimDuration::from_ms(2),
                },
            });
            // The sealed upload starts just before its target bridge
            // crashes: the pad stretches the transfer over dozens of
            // TFTP blocks, so the crash at +5 ms reliably lands
            // mid-session. The sender must ride out the burst loss, the
            // two-second outage (backoff ladder), the post-restart
            // "no transfer in progress" error (fresh WRQ) — and still
            // deliver the image intact.
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_ms(995),
                action: AppAction::UploadSealed {
                    from_seg,
                    bridge,
                    pad: 20_000,
                },
            });
            chaos.crash_cycle(
                bridge,
                SimDuration::from_ms(1_000),
                SimDuration::from_ms(2_000),
            );
            // The poisoned image goes to the next bridge over (the same
            // one on single-bridge lines): its envelope is corrupted
            // after sealing, so every delivery attempt must die at the
            // integrity gate without touching decode or the data plane.
            let bad_bridge = (bridge + 1) % topo.bridges.len();
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_ms(700),
                action: AppAction::UploadCorrupt {
                    from_seg: access_of(bad_bridge),
                    bridge: bad_bridge,
                },
            });
            // Recovery proof: after the burst clears and the bridge is
            // back, a strict reliable transfer must complete.
            let (from_seg, to_seg) = pick_pair(topo, &mut rng, 2);
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_secs(8),
                action: AppAction::Ttcp {
                    from_seg,
                    to_seg,
                    total_bytes: 100_000,
                    write_size: 4096,
                },
            });
        }
        BatteryKind::Adversarial => {
            // Placement is deterministic: the attackers share the first
            // access segment (sacrificial — no victim flow terminates
            // there) and the victim pair spans the remaining two, so
            // the victims' path never *requires* the attacker's
            // first-hop bridge.
            let access = topo.access_segments();
            let attacker = access[0];
            let (v_from, v_to) = if access.len() >= 3 {
                (access[1], access[2])
            } else {
                (access[access.len() - 1], access[access.len() / 2])
            };
            // Baseline pings measure the quiet network (done by 1.6 s);
            // loaded pings re-measure with the storm in full swing and
            // feed the degradation subscore.
            let ping = |phase, offset_ms| WorkItem {
                phase,
                offset: SimDuration::from_ms(offset_ms),
                action: AppAction::Ping {
                    from_seg: v_from,
                    to_seg: v_to,
                    count: 8,
                    payload: 256,
                    interval: SimDuration::from_ms(200),
                },
            };
            items.push(ping(Phase::Baseline, 0));
            items.push(ping(Phase::Loaded, 2_200));
            // The offense opens at +2 s: a MAC flood (2 000 pps) and an
            // ARP storm (1 250 pps) — far over the defended arm's
            // 50 pps class budgets, so suppression trips within
            // ~100 ms; both end before the 1.2 s hold-down releases,
            // proving a clean re-enable. Attack RNG seeds come from the
            // battery stream, never the world RNG: the undefended and
            // defended arms replay the identical offense.
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_ms(2_000),
                action: AppAction::MacFlood {
                    from_seg: attacker,
                    count: 2_000,
                    interval: SimDuration::from_us(500),
                    seed: rng.next_u64(),
                },
            });
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_ms(2_000),
                action: AppAction::ArpStorm {
                    from_seg: attacker,
                    count: 1_500,
                    interval: SimDuration::from_us(800),
                    seed: rng.next_u64(),
                },
            });
            // The rogue-root claim needs a guardable port: only fire it
            // where the attacker's segment touches exactly one bridge
            // (a line end, never a ring segment), so the defended arm
            // can err-disable that port at the first forged BPDU.
            let touches = topo
                .bridges
                .iter()
                .filter(|b| b.segments.contains(&attacker))
                .count();
            if touches == 1 {
                items.push(WorkItem {
                    phase: Phase::Main,
                    offset: SimDuration::from_ms(2_000),
                    action: AppAction::RogueBpdu {
                        from_seg: attacker,
                        count: 20,
                        interval: SimDuration::from_ms(100),
                    },
                });
            }
            // Recovery proof: after the attacks die out (and the
            // defended arm's hold-down has released), a strict reliable
            // transfer between the victims must complete.
            items.push(WorkItem {
                phase: Phase::Main,
                offset: SimDuration::from_secs(6),
                action: AppAction::Ttcp {
                    from_seg: v_from,
                    to_seg: v_to,
                    total_bytes: 100_000,
                    write_size: 4096,
                },
            });
        }
    }
    Workload {
        kind,
        items,
        faults,
        chaos,
        expected_quarantines,
    }
}

/// How many silent hosts the metro battery places on each access
/// segment (64 access segments on the large metro preset ⇒ 1024 crowd
/// hosts before the active flows' endpoints are counted).
pub const CROWD_PER_ACCESS: u32 = 16;

/// The world counter bumped by the inert upload module's `init`.
pub const UPLOAD_ALIVE_COUNTER: &str = "scenario.upload.alive";

/// A tiny valid VM switchlet image whose `init` bumps
/// [`UPLOAD_ALIVE_COUNTER`] and exits. It registers no switching
/// function, so uploading it exercises the whole TFTP → verify → link →
/// init path without perturbing the data plane.
pub fn inert_upload_image(tag: u32) -> Vec<u8> {
    padded_upload_image(tag, 0)
}

/// [`inert_upload_image`] plus `pad` octets of deterministic interned
/// ballast — a *valid* module inflated so its TFTP transfer spans many
/// blocks (the lossy battery needs the transfer window wide enough for
/// a scripted crash to land mid-session).
fn padded_upload_image(tag: u32, pad: usize) -> Vec<u8> {
    let mut mb = ModuleBuilder::new(format!("scn_upload{tag}"));
    let i_bump = mb.import(
        "bridgectl",
        "counter_bump",
        Ty::func(vec![Ty::Str, Ty::Int], Ty::Unit),
    );
    let key = mb.intern_str(UPLOAD_ALIVE_COUNTER.as_bytes());
    if pad > 0 {
        let ballast: Vec<u8> = (0..pad)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag as u8))
            .collect();
        mb.intern_str(&ballast);
    }
    let mut init = mb.func("init", vec![], Ty::Unit);
    init.op(Op::ConstStr(key))
        .op(Op::ConstInt(1))
        .op(Op::CallImport(i_bump))
        .op(Op::Return);
    let init_fn = mb.finish(init);
    mb.set_init(init_fn);
    mb.build().encode()
}

/// A digest-sealed upload image: a padded valid module wrapped in the
/// [`switchlet::envelope`] format (magic, version, length, content MD5).
/// The bridge's integrity gate verifies the seal before decode.
pub fn sealed_upload_image(tag: u32, pad: usize) -> Vec<u8> {
    switchlet::seal(&padded_upload_image(tag, pad))
}

/// A sealed image corrupted *after* sealing: one payload bit is flipped
/// under an intact header, exactly what a hostile medium hands the
/// loader. If the integrity gate ever let it through, the module would
/// still decode and its `init` would bump [`UPLOAD_ALIVE_COUNTER`] —
/// which is how `corrupted_image_never_activates` catches a leak.
pub fn corrupt_upload_image(tag: u32) -> Vec<u8> {
    let mut sealed = switchlet::seal(&padded_upload_image(tag, 64));
    let last = sealed.len() - 1;
    sealed[last] ^= 0x01;
    sealed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{generate as gen_topo, TopologyShape};

    #[test]
    fn batteries_are_deterministic() {
        let topo = gen_topo(TopologyShape::Ring { bridges: 4 }, 7);
        for kind in BatteryKind::ALL {
            let a = generate(kind, &topo, 7);
            let b = generate(kind, &topo, 7);
            assert_eq!(a.items, b.items, "{kind:?} items must replay");
            assert_eq!(a.chaos, b.chaos, "{kind:?} chaos script must replay");
            assert!(!a.items.is_empty());
        }
    }

    #[test]
    fn churn_scripts_a_heal_before_span_end() {
        let topo = gen_topo(TopologyShape::Line { bridges: 3 }, 3);
        let wl = generate(BatteryKind::Churn, &topo, 3);
        assert!(wl.injects_drops());
        assert!(!wl.injects_duplicates());
        let clear_at = wl
            .faults
            .iter()
            .find_map(|(at, f)| matches!(f, FaultAction::Clear { .. }).then_some(*at))
            .expect("churn clears its fault");
        assert!(clear_at < wl.span());
    }

    #[test]
    fn every_battery_keeps_hosts_off_the_backbone() {
        use crate::topo::{SegTier, TopologyShape};
        let topo = gen_topo(TopologyShape::metro_large(), 11);
        for kind in BatteryKind::ALL {
            let wl = generate(kind, &topo, 11);
            for item in &wl.items {
                let segs: Vec<usize> = match item.action {
                    AppAction::Crowd { seg, .. } => vec![seg],
                    AppAction::Ping {
                        from_seg, to_seg, ..
                    }
                    | AppAction::Ttcp {
                        from_seg, to_seg, ..
                    }
                    | AppAction::Blast {
                        from_seg, to_seg, ..
                    } => vec![from_seg, to_seg],
                    AppAction::Upload { from_seg, .. }
                    | AppAction::UploadTrap { from_seg, .. }
                    | AppAction::UploadSealed { from_seg, .. }
                    | AppAction::UploadCorrupt { from_seg, .. }
                    | AppAction::MacFlood { from_seg, .. }
                    | AppAction::ArpStorm { from_seg, .. }
                    | AppAction::RogueBpdu { from_seg, .. } => {
                        vec![from_seg]
                    }
                };
                for s in segs {
                    assert_eq!(
                        topo.segments[s].tier,
                        SegTier::Access,
                        "{kind:?} must not place hosts on the backbone"
                    );
                }
            }
        }
    }

    #[test]
    fn metro_battery_reaches_the_thousand_host_tier() {
        use crate::topo::TopologyShape;
        let topo = gen_topo(TopologyShape::metro_large(), 11);
        let wl = generate(BatteryKind::Metro, &topo, 11);
        assert!(
            wl.host_count() >= 1024,
            "metro/large must field ≥ 1024 hosts, got {}",
            wl.host_count()
        );
        // (Backbone placement is covered for every battery by
        // `every_battery_keeps_hosts_off_the_backbone`.)
    }

    #[test]
    fn metro_battery_scales_down_with_the_shape() {
        let topo = gen_topo(TopologyShape::metro_small(), 4);
        let wl = generate(BatteryKind::Metro, &topo, 4);
        // 8 access segments × CROWD_PER_ACCESS crowd hosts + endpoints.
        assert_eq!(wl.host_count(), 8 * CROWD_PER_ACCESS as u64 + 4 * 2 + 2 + 2);
    }

    #[test]
    fn chaos_battery_heals_everything_and_schedules_recovery_probes() {
        use netsim::ChaosAction;
        for shape in [
            TopologyShape::Line { bridges: 2 },
            TopologyShape::Ring { bridges: 3 },
        ] {
            let topo = gen_topo(shape, 5);
            let wl = generate(BatteryKind::Chaos, &topo, 5);
            assert!(wl.injects_downtime());
            assert!(!wl.injects_drops(), "chaos scripts topology, not frames");
            assert_eq!(wl.expected_quarantines, 1);
            // Every down has an up and every crash a restart: the
            // script is self-healing by construction.
            let count = |pred: fn(&ChaosAction) -> bool| {
                wl.chaos.steps.iter().filter(|s| pred(&s.action)).count()
            };
            assert_eq!(
                count(|a| matches!(a, ChaosAction::LinkDown { .. })),
                count(|a| matches!(a, ChaosAction::LinkUp { .. })),
            );
            assert_eq!(
                count(|a| matches!(a, ChaosAction::NodeCrash { .. })),
                count(|a| matches!(a, ChaosAction::NodeRestart { .. })),
            );
            // The recovery probes run strictly after the last heal, and
            // the span covers them.
            let heal = wl.chaos.last_heal_at().expect("script heals");
            assert!(wl
                .items
                .iter()
                .any(|i| matches!(i.action, AppAction::Ttcp { .. }) && i.offset > heal));
            assert!(wl
                .items
                .iter()
                .any(|i| matches!(i.action, AppAction::UploadTrap { .. }) && i.offset > heal));
            assert!(heal < wl.span());
        }
    }

    #[test]
    fn non_chaos_batteries_stay_transparent() {
        let topo = gen_topo(TopologyShape::Ring { bridges: 4 }, 7);
        for kind in BatteryKind::ALL {
            if matches!(kind, BatteryKind::Chaos | BatteryKind::Lossy) {
                continue;
            }
            let wl = generate(kind, &topo, 7);
            assert!(
                wl.chaos.is_transparent() && wl.expected_quarantines == 0,
                "{kind:?} must not script downtime"
            );
            assert!(!wl.injects_bursts(), "{kind:?} must not script burst loss");
        }
    }

    #[test]
    fn upload_image_is_loadable() {
        let image = inert_upload_image(0);
        assert!(switchlet::Module::decode(&image).is_ok());
    }

    #[test]
    fn lossy_battery_scripts_hostile_media_and_heals_it() {
        for shape in [
            TopologyShape::Line { bridges: 2 },
            TopologyShape::Ring { bridges: 3 },
        ] {
            let topo = gen_topo(shape, 5);
            let wl = generate(BatteryKind::Lossy, &topo, 5);
            assert!(wl.injects_bursts());
            assert!(wl.injects_drops(), "burst bad state drops frames");
            assert!(wl.injects_downtime(), "the target bridge crashes");
            assert_eq!(wl.expected_quarantines, 0);
            // The burst model meets the ≥ 10% steady-state loss floor.
            let burst = wl
                .faults
                .iter()
                .find_map(|(_, f)| match f {
                    FaultAction::Set { fault, .. } => fault.burst,
                    FaultAction::Clear { .. } => None,
                })
                .expect("lossy scripts a burst window");
            assert!(
                burst.steady_state_drop_pm() >= 100,
                "per-mille steady loss {} under the 10% floor",
                burst.steady_state_drop_pm()
            );
            // The window heals inside the span, and the crash heals too.
            let clear_at = wl
                .faults
                .iter()
                .find_map(|(at, f)| matches!(f, FaultAction::Clear { .. }).then_some(*at))
                .expect("lossy clears its burst window");
            assert!(clear_at < wl.span());
            let heal = wl.chaos.last_heal_at().expect("the crash restarts");
            assert!(heal < wl.span());
            // Both resilience probes are scheduled, and the sealed
            // upload starts before the crash so the outage lands
            // mid-transfer.
            let sealed_at = wl
                .items
                .iter()
                .find_map(|i| {
                    matches!(i.action, AppAction::UploadSealed { .. }).then_some(i.offset)
                })
                .expect("lossy schedules a sealed upload");
            let crash_at = wl
                .chaos
                .steps
                .iter()
                .find_map(|s| {
                    matches!(s.action, netsim::ChaosAction::NodeCrash { .. }).then_some(s.at)
                })
                .expect("lossy crashes the target bridge");
            assert!(sealed_at < crash_at);
            assert!(wl
                .items
                .iter()
                .any(|i| matches!(i.action, AppAction::UploadCorrupt { .. })));
            // The strict recovery transfer runs after every heal.
            let ttcp_at = wl
                .items
                .iter()
                .find_map(|i| matches!(i.action, AppAction::Ttcp { .. }).then_some(i.offset))
                .expect("lossy schedules a recovery transfer");
            assert!(ttcp_at > heal && ttcp_at > clear_at);
        }
    }

    #[test]
    fn adversarial_battery_separates_attackers_from_victims() {
        for shape in [
            TopologyShape::Line { bridges: 2 },
            TopologyShape::Ring { bridges: 3 },
        ] {
            let topo = gen_topo(shape, 5);
            let wl = generate(BatteryKind::Adversarial, &topo, 5);
            assert!(wl.injects_attacks());
            assert!(
                wl.chaos.is_transparent(),
                "attacks come from hosts, not scripts"
            );
            assert!(wl.faults.is_empty(), "attacks come from hosts, not faults");
            // Both storm attacks are always scheduled; the rogue-root
            // claim only where the attacker's segment touches exactly
            // one bridge (so the defended arm can guard that port):
            // every segment of a ring touches two.
            assert!(wl
                .items
                .iter()
                .any(|i| matches!(i.action, AppAction::MacFlood { .. })));
            assert!(wl
                .items
                .iter()
                .any(|i| matches!(i.action, AppAction::ArpStorm { .. })));
            let rogue = wl
                .items
                .iter()
                .any(|i| matches!(i.action, AppAction::RogueBpdu { .. }));
            match shape {
                TopologyShape::Line { .. } => assert!(rogue, "line ends are guardable"),
                _ => assert!(!rogue, "no single-bridge segment on a ring"),
            }
            // No victim flow terminates on the attacker's segment, and
            // every attack starts after the baseline measurement ends.
            let attacker = wl
                .items
                .iter()
                .find_map(|i| match i.action {
                    AppAction::MacFlood { from_seg, .. } => Some(from_seg),
                    _ => None,
                })
                .unwrap();
            for item in &wl.items {
                match item.action {
                    AppAction::Ping {
                        from_seg, to_seg, ..
                    }
                    | AppAction::Ttcp {
                        from_seg, to_seg, ..
                    } => {
                        assert_ne!(from_seg, attacker);
                        assert_ne!(to_seg, attacker);
                        if item.phase == Phase::Baseline {
                            assert!(item.offset + item.action.span() > SimDuration::ZERO);
                        }
                    }
                    AppAction::MacFlood { .. }
                    | AppAction::ArpStorm { .. }
                    | AppAction::RogueBpdu { .. } => {
                        assert!(item.offset >= SimDuration::from_secs(2));
                    }
                    _ => {}
                }
            }
            // The strict recovery transfer runs after every attack ends.
            let ttcp_at = wl
                .items
                .iter()
                .find_map(|i| matches!(i.action, AppAction::Ttcp { .. }).then_some(i.offset))
                .expect("adversarial schedules a recovery transfer");
            let last_attack_end = wl
                .items
                .iter()
                .filter(|i| {
                    matches!(
                        i.action,
                        AppAction::MacFlood { .. }
                            | AppAction::ArpStorm { .. }
                            | AppAction::RogueBpdu { .. }
                    )
                })
                .map(|i| i.offset + i.action.span() - SimDuration::from_secs(2))
                .max()
                .unwrap();
            assert!(ttcp_at > last_attack_end);
        }
    }

    #[test]
    fn sealed_image_unseals_to_a_loadable_module() {
        let sealed = sealed_upload_image(0, 20_000);
        assert!(switchlet::is_enveloped(&sealed));
        let payload = switchlet::unseal(&sealed).expect("seal verifies");
        assert!(switchlet::Module::decode(payload).is_ok());
        assert!(
            sealed.len() > 20_000,
            "the pad must stretch the transfer over many TFTP blocks"
        );
    }

    #[test]
    fn corrupt_image_fails_the_integrity_gate() {
        let bad = corrupt_upload_image(0);
        assert!(switchlet::is_enveloped(&bad));
        assert!(matches!(
            switchlet::unseal(&bad),
            Err(switchlet::EnvelopeError::DigestMismatch { .. })
        ));
    }
}
